//! One benchmark per paper figure: each measures the cost of regenerating
//! a representative sweep point of that figure (the full sweeps live in
//! `sft-experiments`; run `cargo run --release -p sft-experiments --bin
//! all` to print the actual tables).

use criterion::{criterion_group, criterion_main, Criterion};
use sft_core::ilp::IlpModel;
use sft_experiments::run_heuristics;
use sft_lp::MipConfig;
use sft_topology::{generate, palmetto, workload, Scenario, ScenarioConfig};
use std::hint::black_box;
use std::time::Duration;

fn point(config: ScenarioConfig, seed: u64) -> Scenario {
    generate(&config, seed).unwrap()
}

fn bench_point(c: &mut Criterion, name: &str, scenario: &Scenario) {
    c.bench_function(name, |b| {
        b.iter(|| black_box(run_heuristics(scenario).unwrap()))
    });
}

/// Fig. 8: |V| sweep at ratio 0.1 — representative point |V| = 100.
fn fig08(c: &mut Criterion) {
    let s = point(
        ScenarioConfig {
            network_size: 100,
            dest_ratio: 0.1,
            sfc_len: 5,
            ..ScenarioConfig::default()
        },
        1,
    );
    bench_point(c, "figures/fig08_point_v100_r0.1", &s);
}

/// Fig. 9: |V| sweep at ratio 0.3 — representative point |V| = 100.
fn fig09(c: &mut Criterion) {
    let s = point(
        ScenarioConfig {
            network_size: 100,
            dest_ratio: 0.3,
            sfc_len: 5,
            ..ScenarioConfig::default()
        },
        2,
    );
    bench_point(c, "figures/fig09_point_v100_r0.3", &s);
}

/// Fig. 10: setup cost 1 x l_G — representative point |V| = 100.
fn fig10(c: &mut Criterion) {
    let s = point(
        ScenarioConfig {
            network_size: 100,
            dest_ratio: 0.2,
            deployment_cost_mu: 1.0,
            sfc_len: 5,
            ..ScenarioConfig::default()
        },
        3,
    );
    bench_point(c, "figures/fig10_point_v100_mu1", &s);
}

/// Fig. 11: setup cost 3 x l_G — representative point |V| = 100.
fn fig11(c: &mut Criterion) {
    let s = point(
        ScenarioConfig {
            network_size: 100,
            dest_ratio: 0.2,
            deployment_cost_mu: 3.0,
            sfc_len: 5,
            ..ScenarioConfig::default()
        },
        4,
    );
    bench_point(c, "figures/fig11_point_v100_mu3", &s);
}

/// Fig. 12: SFC-length sweep — representative point k = 15.
fn fig12(c: &mut Criterion) {
    let s = point(
        ScenarioConfig {
            network_size: 100,
            dest_ratio: 0.2,
            deployment_cost_mu: 3.0,
            sfc_len: 15,
            ..ScenarioConfig::default()
        },
        5,
    );
    bench_point(c, "figures/fig12_point_v100_k15", &s);
}

/// Fig. 13 (heuristic panel): Palmetto at |D| = 15, k = 10.
fn fig13(c: &mut Criterion) {
    let config = ScenarioConfig {
        dest_ratio: 15.0 / palmetto::NODE_COUNT as f64,
        sfc_len: 10,
        ..ScenarioConfig::default()
    };
    let s = workload::on_graph(palmetto::graph(), &config, 6).unwrap();
    bench_point(c, "figures/fig13_point_palmetto_d15", &s);
}

/// Fig. 13 (OPT panel): exact ILP on the reduced Palmetto instance.
fn fig13_opt(c: &mut Criterion) {
    let config = ScenarioConfig {
        dest_ratio: 0.2,
        sfc_len: 2,
        ..ScenarioConfig::default()
    };
    let s = workload::on_graph(palmetto::reduced_graph(10), &config, 7).unwrap();
    let model = IlpModel::build(&s.network, &s.task).unwrap();
    let heuristic = sft_core::solve(
        &s.network,
        &s.task,
        sft_core::Strategy::Msa,
        sft_core::StageTwo::Opa,
    )
    .unwrap();
    let mip = MipConfig {
        warm_start: model.warm_start(&s.network, &s.task, &heuristic.embedding),
        max_nodes: 2000,
        time_limit: Some(Duration::from_secs(60)),
        ..MipConfig::default()
    };
    let mut group = c.benchmark_group("figures/fig13_opt_point_reduced");
    group.sample_size(10);
    group.bench_function("ilp_exact", |b| {
        b.iter(|| black_box(model.solve(&s.network, &s.task, &mip).unwrap()))
    });
    group.finish();
}

/// Fig. 14: Palmetto SFC-length sweep — representative point k = 15.
fn fig14(c: &mut Criterion) {
    let config = ScenarioConfig {
        dest_ratio: 15.0 / palmetto::NODE_COUNT as f64,
        sfc_len: 15,
        ..ScenarioConfig::default()
    };
    let s = workload::on_graph(palmetto::graph(), &config, 8).unwrap();
    bench_point(c, "figures/fig14_point_palmetto_k15", &s);
}

criterion_group!(benches, fig08, fig09, fig10, fig11, fig12, fig13, fig13_opt, fig14);
criterion_main!(benches);
