//! Dense tableau vs sparse revised simplex on real ILP relaxations.
//!
//! Three measurements on reduced-Palmetto ILP models (paper model
//! (1a)–(1g), k = 2, |D| = 2):
//!
//! * `relax_p10/{dense,revised}` — one LP-relaxation solve at 10 cities,
//!   where the dense tableau is still comfortable;
//! * `relax_p45/revised` — the full 45-city network, which only the
//!   revised backend solves in reasonable time (the dense tableau there
//!   is a ~4M-cell matrix updated on every pivot);
//! * `mip_p10/{dense,revised}` — a complete branch-and-bound run, which
//!   adds the revised backend's parent→child basis reuse.
//!
//! Writes `BENCH_lp_backends.json` at the workspace root.

use criterion::{criterion_group, Criterion};
use sft_core::ilp::IlpModel;
use sft_lp::{
    solve_mip, BackendChoice, DenseBackend, LpBackend, MipConfig, Problem, RevisedBackend,
    SimplexConfig,
};
use sft_topology::{palmetto, workload, ScenarioConfig};
use std::hint::black_box;
use std::io::Write;

/// The ILP of a reduced-Palmetto scenario (k = 2, two destinations).
fn palmetto_ilp(nodes: usize) -> Problem {
    let config = ScenarioConfig {
        dest_ratio: 2.0 / nodes as f64,
        deployment_cost_mu: 2.0,
        sfc_len: 2,
        ..ScenarioConfig::default()
    };
    let scenario =
        workload::on_graph(palmetto::reduced_graph(nodes), &config, 7).expect("scenario");
    IlpModel::build(&scenario.network, &scenario.task)
        .expect("model builds")
        .problem()
        .clone()
}

fn bench_lp_backends(c: &mut Criterion) {
    let p10 = palmetto_ilp(10).relaxed();
    let p45 = palmetto_ilp(45).relaxed();
    let config = SimplexConfig::default();

    let mut group = c.benchmark_group("lp/relax_p10");
    group.sample_size(10);
    group.bench_function("dense", |b| {
        b.iter(|| black_box(DenseBackend.solve(&p10, &config, None).unwrap()))
    });
    group.bench_function("revised", |b| {
        b.iter(|| black_box(RevisedBackend.solve(&p10, &config, None).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("lp/relax_p45");
    group.sample_size(10);
    group.bench_function("revised", |b| {
        b.iter(|| black_box(RevisedBackend.solve(&p45, &config, None).unwrap()))
    });
    group.finish();

    let mip10 = palmetto_ilp(10);
    let mut group = c.benchmark_group("lp/mip_p10");
    group.sample_size(10);
    for (name, backend) in [
        ("dense", BackendChoice::Dense),
        ("revised", BackendChoice::Revised),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = solve_mip(
                    &mip10,
                    &MipConfig {
                        backend,
                        max_nodes: 20_000,
                        ..MipConfig::default()
                    },
                )
                .unwrap();
                black_box(out)
            })
        });
    }
    group.finish();
}

fn write_report(c: &Criterion) {
    let mut medians = std::collections::BTreeMap::new();
    for s in c.summaries() {
        medians.insert(s.id.clone(), s.median_ns / 1e6);
    }
    let get = |id: &str| medians.get(id).copied();
    let (Some(relax10_dense), Some(relax10_rev), Some(relax45_rev), Some(mip_dense), Some(mip_rev)) = (
        get("lp/relax_p10/dense"),
        get("lp/relax_p10/revised"),
        get("lp/relax_p45/revised"),
        get("lp/mip_p10/dense"),
        get("lp/mip_p10/revised"),
    ) else {
        return; // filtered or test-mode run: nothing measured
    };
    // Work counters are properties of the instance, not the timing run.
    let p45 = palmetto_ilp(45);
    let relaxed = p45.relaxed();
    let report = RevisedBackend
        .solve(&relaxed, &SimplexConfig::default(), None)
        .expect("p45 relaxation solves");
    let json = format!(
        "{{\n  \"bench\": \"lp_backends\",\n  \"instances\": {{ \"p10\": \"reduced Palmetto, 10 cities, k=2, |D|=2\", \"p45\": \"full Palmetto, 45 cities, k=2, |D|=2\" }},\n  \"p45_vars\": {},\n  \"p45_rows\": {},\n  \"relax_p10_dense_median_ms\": {relax10_dense:.3},\n  \"relax_p10_revised_median_ms\": {relax10_rev:.3},\n  \"relax_p45_revised_median_ms\": {relax45_rev:.3},\n  \"relax_p45_stats\": \"{}\",\n  \"mip_p10_dense_median_ms\": {mip_dense:.3},\n  \"mip_p10_revised_median_ms\": {mip_rev:.3},\n  \"mip_speedup_revised_vs_dense\": {:.3},\n  \"note\": \"the dense tableau is not benchmarked on p45 (a ~4M-cell matrix rewritten per pivot); the revised backend certifies the full-network MIP optimum in under a second, see opt_frontier\"\n}}\n",
        p45.var_count(),
        p45.constraint_count(),
        report.stats,
        mip_dense / mip_rev,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_lp_backends.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_lp_backends);

fn main() {
    let mut c = Criterion::from_args();
    benches(&mut c);
    write_report(&c);
    c.final_summary();
}
