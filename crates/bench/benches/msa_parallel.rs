//! Sequential vs parallel MSA stage-1 sweep on the large Table-I
//! workload (|V| = 250, |D|/|V| = 0.1, k = 5).
//!
//! Besides the usual console report this bench writes
//! `BENCH_msa_parallel.json` at the workspace root recording the host
//! core count next to the measured times, so the speedup claim can be
//! judged against the hardware it actually ran on: with a single core
//! the parallel path degenerates to the sequential one and no speedup
//! is possible (or expected).

use criterion::{criterion_group, Criterion};
use sft_core::msa::{self, SteinerMethod};
use sft_graph::Parallelism;
use sft_topology::{generate, Scenario, ScenarioConfig};
use std::hint::black_box;
use std::io::Write;

fn large_scenario() -> Scenario {
    let config = ScenarioConfig {
        network_size: 250,
        dest_ratio: 0.1,
        sfc_len: 5,
        ..ScenarioConfig::default()
    };
    generate(&config, 42).unwrap()
}

fn bench_stage_one_sweep(c: &mut Criterion) {
    let s = large_scenario();
    let auto = Parallelism::auto();
    let mut group = c.benchmark_group("msa_parallel/stage1_250n_k5_d10");
    group.sample_size(10);
    group.bench_function("threads_1", |b| {
        b.iter(|| {
            black_box(
                msa::stage_one_with_options(
                    &s.network,
                    &s.task,
                    SteinerMethod::default(),
                    Parallelism::sequential(),
                )
                .unwrap(),
            )
        })
    });
    group.bench_function(format!("auto_{}", auto.threads()).as_str(), |b| {
        b.iter(|| {
            black_box(
                msa::stage_one_with_options(&s.network, &s.task, SteinerMethod::default(), auto)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn write_report(c: &Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut seq_ms = None;
    let mut par = None;
    for s in c.summaries() {
        if s.id.ends_with("/threads_1") {
            seq_ms = Some(s.median_ns / 1e6);
        } else if let Some((_, t)) = s.id.rsplit_once("/auto_") {
            if let Ok(n) = t.parse::<usize>() {
                par = Some((n, s.median_ns / 1e6));
            }
        }
    }
    let (Some(seq_ms), Some((threads, par_ms))) = (seq_ms, par) else {
        return; // filtered or test-mode run: nothing measured
    };
    let json = format!(
        "{{\n  \"bench\": \"msa_stage1_sweep\",\n  \"workload\": {{ \"network_size\": 250, \"dest_ratio\": 0.1, \"sfc_len\": 5, \"seed\": 42 }},\n  \"host_cores\": {cores},\n  \"sequential_median_ms\": {seq_ms:.3},\n  \"parallel_threads\": {threads},\n  \"parallel_median_ms\": {par_ms:.3},\n  \"speedup\": {:.3},\n  \"note\": \"speedup is bounded by host_cores; on a single-core host the parallel path runs the same sequential sweep inline, so ~1.0x is the expected result there\"\n}}\n",
        seq_ms / par_ms
    );
    // cargo runs benches with cwd = the package dir; anchor the report
    // at the workspace root where readers expect it.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_msa_parallel.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_stage_one_sweep);

fn main() {
    let mut c = Criterion::from_args();
    benches(&mut c);
    write_report(&c);
    c.final_summary();
}
