//! Benchmarks for the paper's pipeline stages: MOD construction, MSA
//! stage 1, OPA stage 2, the baselines, and ILP model building.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_core::ilp::IlpModel;
use sft_core::mod_network::ExpandedMod;
use sft_core::{msa, opa, rsa, sca};
use sft_topology::{generate, palmetto, workload, Scenario, ScenarioConfig};
use std::hint::black_box;

fn medium_scenario() -> Scenario {
    let config = ScenarioConfig {
        network_size: 100,
        dest_ratio: 0.2,
        sfc_len: 5,
        ..ScenarioConfig::default()
    };
    generate(&config, 42).unwrap()
}

fn bench_mod_network(c: &mut Criterion) {
    let s = medium_scenario();
    c.bench_function("pipeline/expanded_mod_build_100n_k5", |b| {
        b.iter(|| black_box(ExpandedMod::build(&s.network, s.task.source(), s.task.sfc()).unwrap()))
    });
}

fn bench_stage_one(c: &mut Criterion) {
    let s = medium_scenario();
    let mut group = c.benchmark_group("pipeline/stage1_100n_k5_d20");
    group.bench_function("msa", |b| {
        b.iter(|| black_box(msa::stage_one(&s.network, &s.task).unwrap()))
    });
    group.bench_function("sca", |b| {
        b.iter(|| black_box(sca::stage_one(&s.network, &s.task).unwrap()))
    });
    group.bench_function("rsa", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(rsa::stage_one(&s.network, &s.task, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn bench_stage_two(c: &mut Criterion) {
    let s = medium_scenario();
    let chain = msa::stage_one(&s.network, &s.task).unwrap();
    c.bench_function("pipeline/opa_100n_k5_d20", |b| {
        b.iter(|| black_box(opa::optimize(&s.network, &s.task, &chain).unwrap()))
    });
}

fn bench_full_solve_palmetto(c: &mut Criterion) {
    let config = ScenarioConfig {
        dest_ratio: 15.0 / palmetto::NODE_COUNT as f64,
        sfc_len: 10,
        ..ScenarioConfig::default()
    };
    let s = workload::on_graph(palmetto::graph(), &config, 7).unwrap();
    c.bench_function("pipeline/two_stage_palmetto_d15_k10", |b| {
        b.iter(|| {
            black_box(
                sft_core::solve(
                    &s.network,
                    &s.task,
                    sft_core::Strategy::Msa,
                    sft_core::StageTwo::Opa,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_ilp_build(c: &mut Criterion) {
    let config = ScenarioConfig {
        dest_ratio: 0.3,
        sfc_len: 2,
        ..ScenarioConfig::default()
    };
    let s = workload::on_graph(palmetto::reduced_graph(10), &config, 3).unwrap();
    c.bench_function("pipeline/ilp_build_reduced_palmetto", |b| {
        b.iter(|| black_box(IlpModel::build(&s.network, &s.task).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_mod_network,
    bench_stage_one,
    bench_stage_two,
    bench_full_solve_palmetto,
    bench_ilp_build
);
criterion_main!(benches);
