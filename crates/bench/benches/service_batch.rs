//! Batch service vs one-shot solving on a shared Palmetto workload.
//!
//! The service amortises two things across a task stream: the APSP
//! matrix (built once with the network instead of once per `Network`
//! construction per task) and the Steiner trees of recurring multicast
//! groups (persistent cache). This bench serves the same 20-task stream
//!
//! * `oneshot`  — a fresh `solve_with_options` per task, no shared cache;
//! * `batch_seq` — `EmbedService` in Independent mode, 1 worker thread;
//! * `batch_auto` — the same with the auto thread count;
//!
//! and writes `BENCH_service.json` at the workspace root with the median
//! times plus the cache hit rate the stream achieved.

use criterion::{criterion_group, Criterion};
use sft_core::{solve_with_options, MulticastTask, Network, SolveOptions, Strategy};
use sft_graph::Parallelism;
use sft_service::{BatchMode, EmbedService};
use sft_topology::{palmetto, workload, ScenarioConfig};
use std::hint::black_box;
use std::io::Write;

const STREAM_LEN: usize = 20;
const DISTINCT_GROUPS: usize = 5;

/// One full-Palmetto network plus a 20-task stream in which five
/// multicast groups recur (the realistic regime the cache targets).
fn shared_workload() -> (Network, Vec<MulticastTask>) {
    let config = ScenarioConfig {
        dest_ratio: 0.2,
        sfc_len: 5,
        ..ScenarioConfig::default()
    };
    let network = workload::on_graph(palmetto::graph(), &config, 0)
        .expect("base scenario")
        .network;
    let distinct: Vec<MulticastTask> = (0..DISTINCT_GROUPS as u64)
        .map(|seed| {
            workload::on_graph(palmetto::graph(), &config, seed)
                .expect("sibling scenario")
                .task
        })
        .collect();
    let tasks = (0..STREAM_LEN)
        .map(|i| distinct[i % DISTINCT_GROUPS].clone())
        .collect();
    (network, tasks)
}

fn bench_service_batch(c: &mut Criterion) {
    let (network, tasks) = shared_workload();
    let mut group = c.benchmark_group("service/palmetto_20tasks_k5");
    group.sample_size(10);
    group.bench_function("oneshot", |b| {
        b.iter(|| {
            for t in &tasks {
                black_box(
                    solve_with_options(
                        &network,
                        t,
                        Strategy::Msa,
                        SolveOptions::default().with_parallelism(Parallelism::sequential()),
                    )
                    .unwrap(),
                );
            }
        })
    });
    group.bench_function("batch_seq", |b| {
        b.iter(|| {
            let mut svc = EmbedService::new(
                network.clone(),
                Strategy::Msa,
                SolveOptions::default().with_parallelism(Parallelism::sequential()),
            )
            .unwrap();
            black_box(svc.submit_batch(&tasks, BatchMode::Independent));
        })
    });
    let auto = Parallelism::auto();
    group.bench_function(format!("batch_auto_{}", auto.threads()).as_str(), |b| {
        b.iter(|| {
            let mut svc = EmbedService::new(
                network.clone(),
                Strategy::Msa,
                SolveOptions::default().with_parallelism(auto),
            )
            .unwrap();
            black_box(svc.submit_batch(&tasks, BatchMode::Independent));
        })
    });
    group.finish();
}

fn write_report(c: &Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (mut oneshot_ms, mut seq_ms, mut auto) = (None, None, None);
    for s in c.summaries() {
        if s.id.ends_with("/oneshot") {
            oneshot_ms = Some(s.median_ns / 1e6);
        } else if s.id.ends_with("/batch_seq") {
            seq_ms = Some(s.median_ns / 1e6);
        } else if let Some((_, t)) = s.id.rsplit_once("/batch_auto_") {
            if let Ok(n) = t.parse::<usize>() {
                auto = Some((n, s.median_ns / 1e6));
            }
        }
    }
    let (Some(oneshot_ms), Some(seq_ms), Some((threads, auto_ms))) = (oneshot_ms, seq_ms, auto)
    else {
        return; // filtered or test-mode run: nothing measured
    };
    // The hit rate is a property of the stream, not of the timing run:
    // measure it once on a fresh service.
    let (network, tasks) = shared_workload();
    let mut svc = EmbedService::new(network, Strategy::Msa, SolveOptions::default()).unwrap();
    svc.submit_batch(&tasks, BatchMode::Independent);
    let stats = svc.stats();
    let json = format!(
        "{{\n  \"bench\": \"service_batch_vs_oneshot\",\n  \"workload\": {{ \"topology\": \"palmetto\", \"stream_len\": {STREAM_LEN}, \"distinct_groups\": {DISTINCT_GROUPS}, \"dest_ratio\": 0.2, \"sfc_len\": 5 }},\n  \"host_cores\": {cores},\n  \"oneshot_median_ms\": {oneshot_ms:.3},\n  \"batch_sequential_median_ms\": {seq_ms:.3},\n  \"batch_parallel_threads\": {threads},\n  \"batch_parallel_median_ms\": {auto_ms:.3},\n  \"speedup_batch_seq_vs_oneshot\": {:.3},\n  \"speedup_batch_parallel_vs_oneshot\": {:.3},\n  \"steiner_cache_hit_rate\": {:.3},\n  \"note\": \"batch results are bit-identical to the one-shot solves; the gain is the shared Steiner cache plus (for the parallel row) task-level fan-out, bounded by host_cores\"\n}}\n",
        oneshot_ms / seq_ms,
        oneshot_ms / auto_ms,
        stats.cache_hit_rate()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_service.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_service_batch);

fn main() {
    let mut c = Criterion::from_args();
    benches(&mut c);
    write_report(&c);
    c.final_summary();
}
