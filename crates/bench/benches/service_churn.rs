//! Sustained throughput under session churn: commit/release pairs racing
//! over the socket, plus the cost of a re-embed/defrag pass.
//!
//! One shared 4-worker server serves repeated *churn waves*: 4 concurrent
//! clients each run a sliding window of live sessions (commit the next
//! arrival, release the oldest once the window is full) and then drain.
//! Every wave returns the network exactly to its seed — the leak-proof
//! lifecycle contract — so waves are independent and a single server can
//! be timed across all criterion samples.
//!
//! * `churn/ring_4conn/wave` — criterion-timed full waves; the median
//!   yields sustained sessions/sec (one session = one commit + one
//!   release round trip);
//! * `churn/ring_4conn_bw/wave` — the same waves on a ring whose links
//!   carry a bandwidth capacity, every session demanding link bandwidth:
//!   the price of per-edge residual tracking, version vectors, and the
//!   occasional bandwidth refusal on the same hot path;
//! * `churn/ring_4conn_delay/wave` — the same waves on a ring whose
//!   links carry a propagation latency, every session carrying a QoS
//!   delay budget: the price of delay accounting and budget repair
//!   (plus the occasional `delay_infeasible` refusal) on the hot path;
//! * a separate pass times [`ServerHandle::defrag`] over a fragmented
//!   set of live sessions.
//!
//! Writes `BENCH_service_churn.json` at the workspace root.

use criterion::{criterion_group, Criterion};
use sft_core::{Network, VnfCatalog};
use sft_graph::{Graph, NodeId};
use sft_service::protocol::{parse_response, EmbedRequest, Request, RequestMode, ResponseBody};
use sft_service::{serve, EmbedService, ServerConfig, ServerHandle, PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

const NODES: usize = 12;
const CLIENTS: usize = 4;
const SESSIONS_PER_CLIENT: usize = 25;
const WINDOW: usize = 6;
const WORKERS: usize = 4;
const CAPACITY: f64 = 3.0;

/// Link bandwidth for the capacitated point: wide enough that most
/// sliding-window sessions admit, tight enough that refusals do occur.
const LINK_BW: f64 = 4.0;

/// Per-hop propagation latency for the delay-constrained point.
const LINK_LAT: f64 = 1.0;

fn ring_network() -> Network {
    ring(None, None)
}

fn ring(link_bw: Option<f64>, latency: Option<f64>) -> Network {
    let mut g = Graph::new(NODES);
    for i in 0..NODES {
        let e = g
            .add_edge_with_capacity(
                NodeId(i),
                NodeId((i + 1) % NODES),
                1.0 + (i % 3) as f64 * 0.2,
                link_bw,
            )
            .unwrap();
        if latency.is_some() {
            g.set_edge_latency(e, latency).unwrap();
        }
    }
    Network::builder(g, VnfCatalog::uniform(3))
        .all_servers(CAPACITY)
        .unwrap()
        .uniform_setup_cost(2.0)
        .unwrap()
        .build()
        .unwrap()
}

fn start_server() -> ServerHandle {
    start_server_on(ring_network())
}

fn start_server_on(network: Network) -> ServerHandle {
    let svc = EmbedService::with_defaults(network);
    let config = ServerConfig {
        workers: WORKERS,
        commit_retries: 8,
        ..ServerConfig::default()
    };
    serve(svc, "127.0.0.1:0", config).unwrap()
}

/// One client's share of a churn wave: sliding-window commit/release,
/// then drain. Session ids are offset per wave so ledger stacks stay
/// unambiguous across criterion samples.
fn churn_client(
    addr: SocketAddr,
    client: usize,
    id_offset: u64,
    with_bandwidth: bool,
    with_budget: bool,
) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut send = move |line: &str| -> ResponseBody {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse_response(response.trim()).unwrap().body
    };
    let mut live = std::collections::VecDeque::new();
    for s in 0..SESSIONS_PER_CLIENT {
        let session = id_offset + (client * SESSIONS_PER_CLIENT + s) as u64 + 1;
        let source = (client * 5 + s * 3) % NODES;
        let dest = (source + 3 + s % 4) % NODES;
        let mut req = EmbedRequest::new(source, vec![dest], vec![s % 3, (s + 1) % 3]);
        req.id = Some(session);
        req.mode = Some(RequestMode::Commit);
        if with_bandwidth {
            // Deterministic per-session demands in [0.25, 1.0].
            req.bandwidth = Some(0.25 + 0.25 * (s % 4) as f64);
        }
        if with_budget {
            // Deterministic per-session budgets in [6, 9] hops' worth of
            // latency: most admit, the longest routes are refused.
            req.delay_budget_ms = Some(LINK_LAT * (6.0 + (s % 4) as f64));
        }
        match send(&req.to_json()) {
            ResponseBody::Ok {
                committed: true, ..
            } => live.push_back(session),
            ResponseBody::Error(_) => {}
            other => panic!("unexpected commit answer {other:?}"),
        }
        if live.len() > WINDOW {
            release(&mut send, live.pop_front().unwrap());
        }
    }
    while let Some(session) = live.pop_front() {
        release(&mut send, session);
    }
}

fn release(send: &mut dyn FnMut(&str) -> ResponseBody, session: u64) {
    let line = Request::Release {
        v: PROTOCOL_VERSION,
        id: Some(session),
        session,
        deadline_ms: None,
    }
    .to_json();
    match send(&line) {
        ResponseBody::Released { session: s, .. } => assert_eq!(s, session),
        other => panic!("release of {session} answered {other:?}"),
    }
}

/// One full churn wave (4 concurrent clients, drained at the end).
fn wave(addr: SocketAddr, id_offset: u64) {
    wave_with(addr, id_offset, false, false);
}

fn wave_with(addr: SocketAddr, id_offset: u64, with_bandwidth: bool, with_budget: bool) {
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || churn_client(addr, c, id_offset, with_bandwidth, with_budget));
        }
    });
}

fn bench_service_churn(c: &mut Criterion) {
    let mut handle = start_server();
    let addr = handle.local_addr().unwrap();
    let mut offset = 0u64;
    let mut group = c.benchmark_group("churn/ring_4conn");
    group.sample_size(10);
    group.bench_function("wave", |b| {
        b.iter(|| {
            wave(addr, offset);
            offset += (CLIENTS * SESSIONS_PER_CLIENT) as u64;
        });
    });
    group.finish();
    // Every wave drains: the shared server must be back at its seed.
    let seed = ring_network();
    let network = handle.network();
    assert_eq!(network.deployment_refcounts(), seed.deployment_refcounts());
    handle.shutdown();
    handle.join();

    // The bandwidth-constrained point: identical waves on a capacitated
    // ring, every session demanding link bandwidth.
    let mut handle = start_server_on(ring(Some(LINK_BW), None));
    let addr = handle.local_addr().unwrap();
    let mut offset = 0u64;
    let mut group = c.benchmark_group("churn/ring_4conn_bw");
    group.sample_size(10);
    group.bench_function("wave", |b| {
        b.iter(|| {
            wave_with(addr, offset, true, false);
            offset += (CLIENTS * SESSIONS_PER_CLIENT) as u64;
        });
    });
    group.finish();
    // Drained waves also restore every link's bandwidth exactly.
    let network = handle.network();
    assert!(network.edge_usage().is_empty(), "bandwidth leaked");
    for e in network.graph().edge_ids() {
        assert_eq!(network.edge_residual(e), LINK_BW);
    }
    handle.shutdown();
    handle.join();

    // The delay-constrained point: identical waves on a latency-bearing
    // ring, every session carrying a QoS delay budget.
    let mut handle = start_server_on(ring(None, Some(LINK_LAT)));
    let addr = handle.local_addr().unwrap();
    let mut offset = 0u64;
    let mut group = c.benchmark_group("churn/ring_4conn_delay");
    group.sample_size(10);
    group.bench_function("wave", |b| {
        b.iter(|| {
            wave_with(addr, offset, false, true);
            offset += (CLIENTS * SESSIONS_PER_CLIENT) as u64;
        });
    });
    group.finish();
    // Delay refusals release nothing, admits drain fully: back to seed.
    let seed = ring_network();
    let network = handle.network();
    assert_eq!(network.deployment_refcounts(), seed.deployment_refcounts());
    handle.shutdown();
    handle.join();
}

/// Times one defrag pass over a set of live sessions left by a half-drained
/// churn wave; returns (live sessions, pass duration in ns, instances
/// before, instances after).
fn defrag_cost() -> (usize, u64, usize, usize) {
    let handle = start_server();
    let addr = handle.local_addr().unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut send = move |line: &str| -> ResponseBody {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse_response(response.trim()).unwrap().body
    };
    // Commit a spread of sessions, then release every other one so the
    // surviving placements are fragmented across the freed capacity.
    let mut committed = Vec::new();
    for s in 0..16u64 {
        let source = (s as usize * 5) % NODES;
        let dest = (source + 3 + s as usize % 4) % NODES;
        let mut req = EmbedRequest::new(
            source,
            vec![dest],
            vec![s as usize % 3, (s as usize + 1) % 3],
        );
        req.id = Some(s + 1);
        req.mode = Some(RequestMode::Commit);
        if matches!(
            send(&req.to_json()),
            ResponseBody::Ok {
                committed: true,
                ..
            }
        ) {
            committed.push(s + 1);
        }
    }
    for &session in committed.iter().step_by(2) {
        release(&mut send, session);
    }
    let start = Instant::now();
    let report = handle.defrag();
    let elapsed = start.elapsed().as_nanos() as u64;
    let mut handle = handle;
    handle.shutdown();
    handle.join();
    (
        report.sessions,
        elapsed,
        report.instances_before,
        report.instances_after,
    )
}

fn write_report(c: &Criterion) {
    let mut wave_ns = None;
    let mut bw_wave_ns = None;
    let mut delay_wave_ns = None;
    for s in c.summaries() {
        if s.id == "churn/ring_4conn/wave" {
            wave_ns = Some(s.median_ns);
        } else if s.id == "churn/ring_4conn_bw/wave" {
            bw_wave_ns = Some(s.median_ns);
        } else if s.id == "churn/ring_4conn_delay/wave" {
            delay_wave_ns = Some(s.median_ns);
        }
    }
    let Some(wave_ns) = wave_ns else {
        return; // filtered or test-mode run: nothing measured
    };
    let (defrag_sessions, defrag_ns, instances_before, instances_after) = defrag_cost();
    let sessions = (CLIENTS * SESSIONS_PER_CLIENT) as f64;
    let bandwidth_point = match bw_wave_ns {
        Some(ns) => format!(
            "{{ \"link_bw\": {LINK_BW}, \"demand_range\": [0.25, 1.0], \"wave_median_ms\": {:.3}, \"sessions_per_sec\": {:.1} }}",
            ns / 1e6,
            sessions / (ns / 1e9),
        ),
        None => "null".to_string(),
    };
    let delay_point = match delay_wave_ns {
        Some(ns) => format!(
            "{{ \"link_latency\": {LINK_LAT}, \"budget_range\": [{:.1}, {:.1}], \"wave_median_ms\": {:.3}, \"sessions_per_sec\": {:.1} }}",
            6.0 * LINK_LAT,
            9.0 * LINK_LAT,
            ns / 1e6,
            sessions / (ns / 1e9),
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"service_churn\",\n  \"workload\": {{ \"topology\": \"ring12\", \"capacity\": {CAPACITY}, \"clients\": {CLIENTS}, \"sessions_per_client\": {SESSIONS_PER_CLIENT}, \"window\": {WINDOW} }},\n  \"server_workers\": {WORKERS},\n  \"wave_median_ms\": {:.3},\n  \"sessions_per_sec\": {:.1},\n  \"requests_per_sec\": {:.1},\n  \"bandwidth_constrained\": {bandwidth_point},\n  \"delay_constrained\": {delay_point},\n  \"defrag\": {{ \"live_sessions\": {defrag_sessions}, \"pass_ms\": {:.3}, \"instances_before\": {instances_before}, \"instances_after\": {instances_after} }},\n  \"note\": \"one session = one commit + one release over TCP; wave = {CLIENTS} concurrent sliding-window clients, fully drained (network returns to seed every wave); bandwidth_constrained = same waves with per-session link-bandwidth demands on a capacitated ring; delay_constrained = same waves with per-session QoS delay budgets on a latency-bearing ring; defrag = one re-embed pass over a half-drained fragmented set\"\n}}\n",
        wave_ns / 1e6,
        sessions / (wave_ns / 1e9),
        2.0 * sessions / (wave_ns / 1e9),
        defrag_ns as f64 / 1e6,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_service_churn.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_service_churn);

fn main() {
    let mut c = Criterion::from_args();
    benches(&mut c);
    write_report(&c);
    c.final_summary();
}
