//! Throughput and tail latency of the socket front-end under concurrent
//! load.
//!
//! A server with a 4-thread worker pool serves the recurring 20-task
//! Palmetto stream to 8 concurrent TCP connections in quote mode (the
//! bit-deterministic default). Two measurements:
//!
//! * `socket/wave_8conn_20req` — criterion-timed full waves (8 clients ×
//!   20 pipelined requests each); the median yields requests/sec;
//! * a synchronous write→read pass per connection records per-request
//!   round-trip latencies for p50/p99;
//! * commit-mode waves against fresh high-capacity servers at 1 worker
//!   (the serialized single-writer baseline) and 4 workers (parallel
//!   commit workers solving under the read lock, transactional apply
//!   under the write lock) — medians yield commit throughput
//!   before/after.
//!
//! Writes `BENCH_service_socket.json` at the workspace root.

use criterion::{criterion_group, Criterion};
use sft_core::{MulticastTask, Network, SolveOptions, Strategy};
use sft_service::protocol::{EmbedRequest, RequestMode};
use sft_service::{serve, EmbedService, ServerConfig, ServerHandle};
use sft_topology::{palmetto, workload, ScenarioConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

const CONNECTIONS: usize = 8;
const STREAM_LEN: usize = 20;
const DISTINCT_GROUPS: usize = 5;
const WORKERS: usize = 4;
/// Timed commit waves per worker count; the median is reported.
const COMMIT_WAVES: usize = 5;

/// The recurring-groups Palmetto stream used by the batch bench, as wire
/// requests (ids are stream positions).
fn workload_with(
    config: &ScenarioConfig,
    mode: Option<RequestMode>,
) -> (Network, Vec<EmbedRequest>) {
    let network = workload::on_graph(palmetto::graph(), config, 0)
        .expect("base scenario")
        .network;
    let distinct: Vec<MulticastTask> = (0..DISTINCT_GROUPS as u64)
        .map(|seed| {
            workload::on_graph(palmetto::graph(), config, seed)
                .expect("sibling scenario")
                .task
        })
        .collect();
    let requests = (0..STREAM_LEN)
        .map(|i| {
            let task = &distinct[i % DISTINCT_GROUPS];
            let mut req = EmbedRequest::new(
                task.source().index(),
                task.destinations().iter().map(|d| d.index()).collect(),
                task.sfc().stages().iter().map(|f| f.index()).collect(),
            );
            req.id = Some(i as u64 + 1);
            req.mode = mode;
            req
        })
        .collect();
    (network, requests)
}

fn shared_workload() -> (Network, Vec<EmbedRequest>) {
    let config = ScenarioConfig {
        dest_ratio: 0.2,
        sfc_len: 5,
        ..ScenarioConfig::default()
    };
    workload_with(&config, None)
}

/// The same stream in commit mode against a high-capacity network, so the
/// waves measure the transactional commit path rather than
/// `insufficient_capacity` rejections.
fn commit_workload() -> (Network, Vec<EmbedRequest>) {
    let config = ScenarioConfig {
        dest_ratio: 0.2,
        sfc_len: 5,
        capacity_range: (20, 20),
        ..ScenarioConfig::default()
    };
    workload_with(&config, Some(RequestMode::Commit))
}

fn start_server_with(network: Network, workers: usize) -> ServerHandle {
    let svc = EmbedService::new(network, Strategy::Msa, SolveOptions::default()).unwrap();
    // The wave pipelines CONNECTIONS × STREAM_LEN requests at once; the
    // queue bound must clear that or the default backpressure (correctly)
    // sheds part of the load as `overloaded`.
    let mut config = ServerConfig {
        workers,
        commit_retries: 8,
        ..ServerConfig::default()
    };
    config.admission.queue_bound = 4 * CONNECTIONS * STREAM_LEN;
    serve(svc, "127.0.0.1:0", config).unwrap()
}

fn start_server(network: Network) -> ServerHandle {
    start_server_with(network, WORKERS)
}

/// One client replaying the stream pipelined; returns when every response
/// has been read back.
fn pipelined_client(addr: SocketAddr, requests: &[EmbedRequest]) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    for req in requests {
        writeln!(writer, "{}", req.to_json()).unwrap();
    }
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..requests.len() {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"ok\""), "unexpected: {line}");
    }
}

/// One full wave: `CONNECTIONS` concurrent clients, each replaying the
/// whole stream.
fn wave(addr: SocketAddr, requests: &[EmbedRequest]) {
    std::thread::scope(|scope| {
        for _ in 0..CONNECTIONS {
            scope.spawn(|| pipelined_client(addr, requests));
        }
    });
}

/// A pipelined client for commit waves: every response must be a
/// structured line, but rejections (conflict, insufficient capacity) are
/// legitimate outcomes once the network fills up.
fn pipelined_commit_client(addr: SocketAddr, requests: &[EmbedRequest]) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    for req in requests {
        writeln!(writer, "{}", req.to_json()).unwrap();
    }
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..requests.len() {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with('{'), "unstructured response: {line}");
    }
}

/// One timed commit wave (`CONNECTIONS` concurrent clients) against a
/// fresh server with `workers` commit workers; returns the wave's wall
/// time in nanoseconds and the number of commits actually applied.
fn commit_wave(workers: usize, requests: &[EmbedRequest]) -> (u64, u64) {
    let (network, _) = commit_workload();
    let mut handle = start_server_with(network, workers);
    let addr = handle.local_addr().unwrap();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CONNECTIONS {
            scope.spawn(|| pipelined_commit_client(addr, requests));
        }
    });
    let elapsed = start.elapsed().as_nanos() as u64;
    let commits = handle.stats().commits;
    handle.shutdown();
    handle.join();
    (elapsed, commits)
}

/// Median commit throughput (requests/sec) over `COMMIT_WAVES` fresh-server
/// waves, plus the commits applied in the median wave.
fn commit_throughput(workers: usize, requests: &[EmbedRequest]) -> (f64, u64) {
    let mut runs: Vec<(u64, u64)> = (0..COMMIT_WAVES)
        .map(|_| commit_wave(workers, requests))
        .collect();
    runs.sort_unstable();
    let (median_ns, commits) = runs[runs.len() / 2];
    let total_requests = (CONNECTIONS * STREAM_LEN) as f64;
    (total_requests / (median_ns as f64 / 1e9), commits)
}

/// Synchronous write→read round trips, one request at a time per
/// connection; returns every observed per-request latency in nanoseconds.
fn latency_pass(addr: SocketAddr, requests: &[EmbedRequest]) -> Vec<u64> {
    let lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..CONNECTIONS {
            workers.push(scope.spawn(|| {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let mut out = Vec::with_capacity(requests.len());
                for req in requests {
                    let start = Instant::now();
                    writeln!(writer, "{}", req.to_json()).unwrap();
                    writer.flush().unwrap();
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    out.push(start.elapsed().as_nanos() as u64);
                }
                out
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let mut all: Vec<u64> = lat.into_iter().flatten().collect();
    all.sort_unstable();
    all
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)] as f64
}

fn bench_service_socket(c: &mut Criterion) {
    let (network, requests) = shared_workload();
    let mut handle = start_server(network);
    let addr = handle.local_addr().unwrap();
    let mut group = c.benchmark_group("socket/palmetto_8conn_20req");
    group.sample_size(10);
    group.bench_function("wave", |b| b.iter(|| wave(addr, &requests)));
    group.finish();
    handle.shutdown();
    handle.join();
}

fn write_report(c: &Criterion) {
    let mut wave_ns = None;
    for s in c.summaries() {
        if s.id.ends_with("/wave") {
            wave_ns = Some(s.median_ns);
        }
    }
    let Some(wave_ns) = wave_ns else {
        return; // filtered or test-mode run: nothing measured
    };
    // Tail latency is measured outside criterion: synchronous round trips
    // against a fresh server, one request in flight per connection.
    let (network, requests) = shared_workload();
    let mut handle = start_server(network);
    let addr = handle.local_addr().unwrap();
    let lat = latency_pass(addr, &requests);
    let stats = handle.stats();
    handle.shutdown();
    handle.join();

    // Commit throughput: the same stream in commit mode, single-writer
    // baseline (1 worker) vs parallel commit workers. Each wave gets a
    // fresh high-capacity server because commits mutate the network.
    let (_, commit_requests) = commit_workload();
    let (commit_rps_before, _) = commit_throughput(1, &commit_requests);
    let (commit_rps_after, commits_applied) = commit_throughput(WORKERS, &commit_requests);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let total_requests = (CONNECTIONS * STREAM_LEN) as f64;
    let json = format!(
        "{{\n  \"bench\": \"service_socket\",\n  \"workload\": {{ \"topology\": \"palmetto\", \"connections\": {CONNECTIONS}, \"requests_per_connection\": {STREAM_LEN}, \"distinct_groups\": {DISTINCT_GROUPS}, \"sfc_len\": 5, \"mode\": \"quote\" }},\n  \"server_workers\": {WORKERS},\n  \"host_cores\": {cores},\n  \"wave_median_ms\": {:.3},\n  \"requests_per_sec\": {:.1},\n  \"rtt_p50_ms\": {:.3},\n  \"rtt_p99_ms\": {:.3},\n  \"steiner_cache_hit_rate\": {:.3},\n  \"commit\": {{ \"capacity\": 20, \"mode\": \"commit\", \"commits_applied_median_wave\": {commits_applied}, \"rps_1_worker\": {:.1}, \"rps_{WORKERS}_workers\": {:.1}, \"speedup\": {:.2} }},\n  \"note\": \"wave = 8 concurrent pipelined clients; requests_per_sec from the wave median; p50/p99 from synchronous one-in-flight round trips on 8 concurrent connections; commit rps = median of {COMMIT_WAVES} fresh-server commit waves at 1 vs {WORKERS} workers (speedup ~1.0 expected on a 1-core host)\"\n}}\n",
        wave_ns / 1e6,
        total_requests / (wave_ns / 1e9),
        percentile(&lat, 50.0) / 1e6,
        percentile(&lat, 99.0) / 1e6,
        stats.cache_hit_rate(),
        commit_rps_before,
        commit_rps_after,
        commit_rps_after / commit_rps_before
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_service_socket.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_service_socket);

fn main() {
    let mut c = Criterion::from_args();
    benches(&mut c);
    write_report(&c);
    c.final_summary();
}
