//! Distance-layer scaling: quote latency and resident distance rows on
//! Waxman WANs at 1k / 10k / 50k nodes with the lazy CSR provider.
//!
//! The point of the lazy [`sft_core::DistanceProvider`] is that a quote
//! on a 50 000-node substrate touches only the rows the solve actually
//! needs (servers, source, destinations) — a few dozen Dijkstra runs —
//! instead of precomputing an `n x n` matrix that would not even fit in
//! memory. Besides the console report this bench writes
//! `BENCH_scale.json` at the workspace root recording, per size, the
//! median quote latency and the provider's resident/peak row counts and
//! row hit/miss totals, so the "O(rows used), not O(n^2)" claim is tied
//! to measured numbers.

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_core::{
    solve_with_options, DistanceMode, MulticastTask, Network, Sfc, SolveOptions, Strategy,
    VnfCatalog, VnfId,
};
use sft_graph::{generate, NodeId};
use std::hint::black_box;
use std::io::Write;

/// Server nodes per substrate — NFV points-of-presence are a small,
/// fixed-size subset of a WAN, which is exactly what keeps the lazy
/// provider's working set independent of `n`.
const SERVERS: usize = 32;

/// Substrate sizes measured for the committed report. `cargo test` runs
/// this binary with `--test`, where one small size keeps the smoke run
/// cheap.
fn sizes(test_mode: bool) -> &'static [usize] {
    if test_mode {
        &[300]
    } else {
        &[1_000, 10_000, 50_000]
    }
}

/// A Waxman WAN with the same density defaults as the CLI's
/// `waxman:<n>` spec: `beta = 0.4`, `alpha` chosen so the expected
/// degree tracks `2 ln n` — connected before augmentation with
/// O(n log n) edges.
fn waxman_network(n: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(42);
    let beta = 0.4;
    let degree = 2.0 * (n as f64).ln();
    let alpha = (degree / (4.0 * std::f64::consts::PI * beta * n as f64)).sqrt();
    let graph = generate::waxman(n, alpha, beta, 100.0, &mut rng)
        .expect("waxman parameters are valid")
        .graph;
    let stride = n / SERVERS;
    let mut builder =
        Network::builder(graph, VnfCatalog::uniform(3)).distance_mode(DistanceMode::Lazy);
    for i in 0..SERVERS {
        builder = builder
            .server(NodeId(i * stride), 8.0)
            .expect("server ids are in range");
    }
    builder
        .uniform_setup_cost(2.0)
        .expect("setup cost is valid")
        .build()
        .expect("lazy build performs no APSP and cannot fail on a connected graph")
}

fn task_for(n: usize) -> MulticastTask {
    let dests = vec![
        NodeId(n / 3),
        NodeId(n / 2),
        NodeId(2 * n / 3),
        NodeId(n - 1),
    ];
    let sfc = Sfc::new(vec![VnfId(0), VnfId(1), VnfId(2)]).expect("chain is non-empty");
    MulticastTask::new(NodeId(0), dests, sfc).expect("task nodes are distinct and in range")
}

/// One substrate's measured telemetry, captured right after its bench.
struct ScalePoint {
    n: usize,
    edges: usize,
    rows_resident: u64,
    rows_peak: u64,
    row_hits: u64,
    row_misses: u64,
}

fn bench_quote_scaling(c: &mut Criterion) -> Vec<ScalePoint> {
    let test_mode = std::env::args().any(|a| a == "--test" || a == "--quick");
    let mut points = Vec::new();
    let mut group = c.benchmark_group("substrate_scale/quote_waxman_lazy");
    group.sample_size(10);
    for &n in sizes(test_mode) {
        let network = waxman_network(n);
        let task = task_for(n);
        group.bench_function(format!("n_{n}").as_str(), |b| {
            b.iter(|| {
                black_box(
                    solve_with_options(&network, &task, Strategy::Msa, SolveOptions::default())
                        .expect("the quote is feasible"),
                )
            })
        });
        let dist = network.dist();
        points.push(ScalePoint {
            n,
            edges: network.graph().edge_count(),
            rows_resident: dist.rows_materialized(),
            rows_peak: dist.peak_rows(),
            row_hits: dist.row_hits(),
            row_misses: dist.row_misses(),
        });
    }
    group.finish();
    points
}

fn write_report(c: &Criterion, points: &[ScalePoint]) {
    let mut entries = Vec::new();
    for p in points {
        let Some(s) = c
            .summaries()
            .iter()
            .find(|s| s.id.ends_with(&format!("/n_{}", p.n)))
        else {
            continue; // test-mode run: nothing measured
        };
        entries.push(format!(
            "    {{ \"nodes\": {}, \"edges\": {}, \"servers\": {SERVERS}, \"quote_median_ms\": {:.3}, \"rows_resident\": {}, \"rows_peak\": {}, \"row_hits\": {}, \"row_misses\": {} }}",
            p.n,
            p.edges,
            s.median_ns / 1e6,
            p.rows_resident,
            p.rows_peak,
            p.row_hits,
            p.row_misses
        ));
    }
    if entries.is_empty() {
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"substrate_scale_quote\",\n  \"provider\": \"lazy\",\n  \"workload\": {{ \"topology\": \"waxman (beta 0.4, degree ~2 ln n)\", \"seed\": 42, \"sfc_len\": 3, \"dests\": 4 }},\n  \"sizes\": [\n{}\n  ],\n  \"note\": \"rows_peak counts per-source Dijkstra rows ever materialized; a dense matrix would need `nodes` rows (n^2 doubles), so rows_peak << nodes is the scaling claim\"\n}}\n",
        entries.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let mut c = Criterion::from_args();
    let points = bench_quote_scaling(&mut c);
    write_report(&c, &points);
    c.final_summary();
}
