//! Micro-benchmarks for the substrate crates: graph algorithms and the
//! LP/MILP solver. These are the building blocks whose costs dominate the
//! paper's complexity analysis (Theorem 5).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_graph::{generate::euclidean_er, Graph, NodeId};
use sft_lp::{Cmp, MipConfig, Problem};
use std::hint::black_box;

fn er(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.2 * (n as f64).ln() / n as f64;
    euclidean_er(n, p, 100.0, &mut rng).unwrap().graph
}

fn bench_dijkstra(c: &mut Criterion) {
    let g = er(250, 1);
    c.bench_function("graph/dijkstra_250", |b| {
        b.iter(|| black_box(g.dijkstra(NodeId(0))))
    });
}

fn bench_floyd(c: &mut Criterion) {
    let g = er(100, 2);
    let mut group = c.benchmark_group("graph/apsp_100");
    group.bench_function("floyd_warshall", |b| {
        b.iter(|| black_box(g.all_pairs_shortest_paths().unwrap()))
    });
    group.bench_function("n_dijkstras", |b| {
        b.iter(|| black_box(g.all_pairs_shortest_paths_sparse().unwrap()))
    });
    group.finish();
}

fn bench_steiner(c: &mut Criterion) {
    let g = er(100, 3);
    let dist = g.all_pairs_shortest_paths().unwrap();
    let terminals: Vec<NodeId> = (0..12).map(|i| NodeId(i * 7 % 100)).collect();
    let mut group = c.benchmark_group("graph/steiner_100n_12t");
    group.bench_function("kmb", |b| {
        b.iter(|| black_box(g.steiner_kmb(&terminals).unwrap()))
    });
    group.bench_function("kmb_with_matrix", |b| {
        b.iter(|| black_box(g.steiner_kmb_with_matrix(&dist, &terminals).unwrap()))
    });
    group.bench_function("takahashi", |b| {
        b.iter(|| black_box(g.steiner_takahashi(&terminals).unwrap()))
    });
    group.finish();
}

fn bench_mst(c: &mut Criterion) {
    let g = er(250, 4);
    let mut group = c.benchmark_group("graph/mst_250");
    group.bench_function("kruskal", |b| {
        b.iter(|| black_box(g.minimum_spanning_tree().unwrap()))
    });
    group.bench_function("prim", |b| b.iter(|| black_box(g.prim(NodeId(0)).unwrap())));
    group.finish();
}

/// A random dense-ish feasible LP: max c.x, Ax <= b, x in [0, 10].
fn random_lp(vars: usize, rows: usize, seed: u64) -> Problem {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::maximize();
    let xs: Vec<_> = (0..vars)
        .map(|i| {
            p.add_continuous(format!("x{i}"), 0.0, 10.0, rng.random::<f64>())
                .unwrap()
        })
        .collect();
    for r in 0..rows {
        let mut terms = Vec::new();
        for &v in &xs {
            if rng.random::<f64>() < 0.5 {
                terms.push((v, rng.random::<f64>()));
            }
        }
        let rhs = 1.0 + rng.random::<f64>() * vars as f64;
        p.add_constraint(format!("r{r}"), terms, Cmp::Le, rhs)
            .unwrap();
    }
    p
}

fn bench_simplex(c: &mut Criterion) {
    let p = random_lp(60, 40, 5);
    c.bench_function("lp/simplex_60v_40c", |b| {
        b.iter(|| black_box(sft_lp::solve_lp(&p).unwrap()))
    });
}

fn bench_mip(c: &mut Criterion) {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(6);
    let mut p = Problem::maximize();
    let xs: Vec<_> = (0..16)
        .map(|i| {
            p.add_binary(format!("x{i}"), 1.0 + rng.random::<f64>() * 9.0)
                .unwrap()
        })
        .collect();
    let terms: Vec<_> = xs
        .iter()
        .map(|&v| (v, 1.0 + rng.random::<f64>() * 4.0))
        .collect();
    p.add_constraint("w", terms, Cmp::Le, 18.0).unwrap();
    c.bench_function("lp/branch_bound_knapsack_16", |b| {
        b.iter(|| black_box(sft_lp::solve_mip(&p, &MipConfig::default()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_dijkstra,
    bench_floyd,
    bench_steiner,
    bench_mst,
    bench_simplex,
    bench_mip
);
criterion_main!(benches);
