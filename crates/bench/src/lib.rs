//! Criterion benchmarks for the SFT reproduction.
//!
//! The library target is intentionally empty: all content lives in the
//! `benches/` directory (one benchmark group per paper figure plus
//! substrate micro-benchmarks). Run with `cargo bench -p sft-bench`.
