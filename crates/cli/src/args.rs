//! Hand-rolled argument parsing for the `sft` tool.

use std::collections::BTreeMap;
use std::fmt;

/// The usage text shown by `sft help` and on parse errors.
pub const USAGE: &str = "\
sft — service function tree embedding for NFV multicast

USAGE:
  sft <info|solve|exact|batch|serve|client|workload|help> [--flag value]...

TOPOLOGIES (--topology):
  palmetto          the 45-node Palmetto backbone
  palmetto:<n>      the first n Palmetto cities (connected prefix)
  abilene           the 11-node Abilene/Internet2 backbone
  er:<n>            Erdős–Rényi, n nodes, Euclidean costs (use --seed)
  geo:<n>           random geometric, n nodes (use --seed)
  grid:<r>x<c>      r x c grid, unit costs
  fat-tree:<k>      k-ary fat-tree datacenter fabric
  waxman:<n>[:seed][:bw][:lat]
                    Waxman random WAN, n nodes, locality-biased edges
                    (an embedded seed overrides --seed, so the spec
                    string alone pins the instance; an optional third
                    field puts bandwidth bw on every link, an optional
                    fourth puts propagation latency lat on every link)

COMMON FLAGS:
  --seed <u64>          RNG seed (default 0)
  --capacity <f64>      per-server capacity (default 3)
  --link-bw <f64>       uniform link bandwidth capacity on every edge
                        (default none = uncapacitated links; tasks with
                        a `bandwidth` field then consume link capacity
                        and are refused rather than oversubscribe)
  --link-latency <f64>  uniform propagation latency on every edge
                        (default none; delay math then falls back to
                        edge weights, so delay == cost)
  --servers <n>         number of stride-spaced NFV server nodes
                        (default 0 = every node is a server)
  --setup-cost <f64>    uniform VNF setup cost (default 1)
  --distances <auto|dense|lazy>
                        distance backend: dense = precompute the full
                        APSP matrix, lazy = CSR-backed per-source rows
                        computed on demand (memory O(rows used), the
                        only option that scales past ~10k nodes), auto
                        = lazy above 1024 nodes (default auto)

SOLVE / EXACT FLAGS:
  --source <node>       source node index (required)
  --dests <a,b,c>       destination node indices (required)
  --sfc <k>             chain length, types 0..k (default 3)
  --strategy <msa|sca|rsa>   stage-1 algorithm (default msa)
  --threads <n>         worker threads for the stage-1 sweep; 0 = all
                        cores (default). Results are identical for every
                        value — only the runtime changes.
  --no-opa              skip stage 2
  --delay-budget <ms>   end-to-end delay budget per destination; the
                        solve repairs routes to meet it or fails with
                        `delay_infeasible` (default none)
  --stats               print embedding statistics
  --dot <file>          write the physical embedding as DOT
  --sft-dot <file>      write the logical SFT as DOT
  --max-nodes <n>       (exact) branch-and-bound node budget
  --time-limit <secs>   (exact) wall-clock budget
  --lp-backend <dense|revised|auto>
                        (exact) LP relaxation solver: dense tableau,
                        sparse revised simplex, or size-based choice
                        (default auto)

BATCH / SERVE FLAGS (long-running service; APSP built once, shared
Steiner cache; requests are versioned JSONL lines, see docs/service.md:
  {\"v\": 1, \"id\": 7, \"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}):
  --tasks <file.jsonl>  (batch/client) the task stream to solve (required)
  --mode <sequential|independent>
                        (batch) sequential = solve-and-commit each task
                        in arrival order; independent = fan dry-run
                        solves across threads (default sequential)
  --sfc <k>             VNF catalog size; task types must be < k
  --strategy <msa|sca>  stage-1 algorithm (default msa; rsa is
                        randomized and not reproducible, so the
                        service rejects it)
  --cache-cap <n>       bound the Steiner cache to n entries with
                        CLOCK eviction (default unbounded)

SOCKET FLAGS (sft serve --listen / sft client):
  --listen <addr>       (serve) accept connections on a TCP host:port
                        or a Unix socket (unix:/path); runs until a
                        client sends {\"op\": \"shutdown\"}
  --workers <n>         (serve) worker threads (default 4)
  --queue-bound <n>     (serve) pending-request bound before new work
                        is rejected as `overloaded` (default 128)
  --deadline-ms <ms>    (serve) default per-request deadline; requests
                        still unanswered when it expires are rejected
                        as `deadline_exceeded` (default none)
  --default-mode <quote|commit>
                        solve semantics for requests without a `mode`
                        field: quote = dry-run against the frozen
                        network (socket default), commit = update the
                        network (stdin serve default)
  --commit-retries <n>  (serve) solve attempts per commit before the
                        transactional apply gives up with `conflict`
                        (default 3; commits never partially apply)
  --defrag-every-ms <ms>
                        (serve) run the re-embed/defrag batch on this
                        period: live sessions are released and re-solved
                        against freed capacity, consolidating onto
                        shared instances (default off)
  --connect <addr>      (client) server address to send --tasks to;
                        responses print ordered by id
  --mode <quote|commit> (client) override the mode on every request

WORKLOAD FLAGS (sft workload; emits a commit/release session stream as
protocol JSONL — pipe into `sft serve` or save for `sft client`):
  --count <n>           sessions to generate (default 100)
  --arrivals <poisson>  arrival process (poisson: exponential
                        inter-arrival times at --rate)
  --holding <exp>       holding-time distribution (exp: mean --hold)
  --rate <f64>          arrivals per unit time (default 1)
  --hold <f64>          mean session lifetime (default 10); offered
                        load is rate*hold Erlangs
  --dests <n>           max destinations per task (default 3)
  --bandwidth <f64>     per-session bandwidth demand, drawn uniformly
                        from (0, this] per session (default none; the
                        stream is byte-identical without the flag)
  --delay-budget <ms>   per-session QoS delay budget, drawn uniformly
                        from (this/2, this] ms per session (default
                        none; the stream is byte-identical without
                        the flag)

EXAMPLES:
  sft info  --topology palmetto
  sft solve --topology er:50 --seed 7 --source 0 --dests 5,12,31 --sfc 3
  sft exact --topology grid:3x4 --source 0 --dests 7,11 --sfc 2
  sft batch --topology palmetto --tasks examples/palmetto_tasks.jsonl
  sft serve --topology abilene < tasks.jsonl
  sft serve --topology palmetto --listen 127.0.0.1:7070 --workers 8
  sft client --connect 127.0.0.1:7070 --tasks examples/palmetto_tasks.jsonl
  sft workload --topology palmetto --count 500 --rate 2 --hold 5 | sft serve --topology palmetto
";

/// A parse failure with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parsed command line: one subcommand plus `--flag value` pairs
/// (boolean flags store `"true"`).
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (`info`, `solve`, `exact`, `help`).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 3] = ["no-opa", "quick", "stats"];

impl Args {
    /// Parses pre-split arguments (without the program name).
    ///
    /// # Errors
    ///
    /// [`ParseError`] on missing subcommand, malformed flags, or missing
    /// flag values.
    pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| ParseError("missing subcommand".into()))?
            .clone();
        let mut flags = BTreeMap::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ParseError(format!(
                    "unexpected positional argument `{arg}`"
                )));
            };
            if name.is_empty() {
                return Err(ParseError("empty flag name".into()));
            }
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".into());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| ParseError(format!("flag --{name} needs a value")))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { command, flags })
    }

    /// Raw flag value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// [`ParseError`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, ParseError> {
        self.get(name)
            .ok_or_else(|| ParseError(format!("missing required flag --{name}")))
    }

    /// Parsed flag with a default.
    ///
    /// # Errors
    ///
    /// [`ParseError`] when present but unparsable.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ParseError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("cannot parse --{name} value `{v}`"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.get(name) == Some("true")
    }

    /// Parses a comma-separated list of numbers.
    ///
    /// # Errors
    ///
    /// [`ParseError`] on any unparsable element or an empty list.
    pub fn parse_list(&self, name: &str) -> Result<Vec<usize>, ParseError> {
        let raw = self.require(name)?;
        let out: Result<Vec<usize>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
        let out = out.map_err(|_| ParseError(format!("cannot parse --{name} list `{raw}`")))?;
        if out.is_empty() {
            return Err(ParseError(format!("--{name} list is empty")));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(&argv("solve --topology er:50 --seed 7 --no-opa")).unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.get("topology"), Some("er:50"));
        assert_eq!(a.parse_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag("no-opa"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("solve positional")).is_err());
        assert!(Args::parse(&argv("solve --seed")).is_err());
        assert!(Args::parse(&argv("solve --")).is_err());
    }

    #[test]
    fn typed_accessors_validate() {
        let a = Args::parse(&argv("solve --seed abc --dests 1,2,3")).unwrap();
        assert!(a.parse_or("seed", 0u64).is_err());
        assert_eq!(a.parse_list("dests").unwrap(), vec![1, 2, 3]);
        assert!(a.require("topology").is_err());
        let b = Args::parse(&argv("solve --dests 1,,3")).unwrap();
        assert!(b.parse_list("dests").is_err());
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let a = Args::parse(&argv("solve")).unwrap();
        assert_eq!(a.parse_or("capacity", 3.0).unwrap(), 3.0);
        assert_eq!(a.parse_or("sfc", 3usize).unwrap(), 3);
    }
}
