//! The `sft` subcommand implementations. Each returns the text to print.

use crate::args::{Args, ParseError};
use crate::topology_spec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sft_core::ilp::IlpModel;
use sft_core::{
    solve_with_rng, solve_with_rng_options, viz, DistanceMode, MulticastTask, Network, Parallelism,
    Sfc, SftTree, SolveOptions, StageTwo, Strategy, VnfCatalog, VnfId,
};
use sft_graph::NodeId;
use sft_lp::{BackendChoice, MipConfig};
use sft_service::protocol::{self, EmbedResponse, Request, RequestMode};
use sft_service::{AdmissionConfig, BatchMode, EmbedService, ServerConfig, ServiceError};
use std::fmt::Write as _;
use std::io::{BufRead, Write as IoWrite};
use std::time::{Duration, Instant};

/// Builds the physical network every subcommand operates on — the one
/// place the `--topology`/`--capacity`/`--setup-cost`/`--sfc`/
/// `--distances` flags are interpreted. Returns the network and the
/// catalog size `k`.
fn build_network(args: &Args) -> Result<(Network, usize), ParseError> {
    let seed: u64 = args.parse_or("seed", 0)?;
    let mut graph = topology_spec::build(args.require("topology")?, seed)?;
    // --link-bw puts a uniform bandwidth capacity on every edge of any
    // topology family; without it (and without a capacitated spec such
    // as waxman:<n>:<seed>:<bw>) links stay uncapacitated and the whole
    // stack behaves bit-identically to the legacy node-only model.
    if let Some(raw) = args.get("link-bw") {
        let bw: f64 = raw
            .parse()
            .map_err(|_| ParseError(format!("cannot parse --link-bw value `{raw}`")))?;
        topology_spec::apply_uniform_bandwidth(&mut graph, bw)?;
    }
    // --link-latency puts a uniform propagation latency on every edge;
    // without it (and without a latency-bearing spec such as
    // waxman:<n>:<seed>:<bw>:<lat>) delay math falls back to edge
    // weights, so latency-free runs stay bit-identical to the legacy
    // cost-only model.
    if let Some(raw) = args.get("link-latency") {
        let lat: f64 = raw
            .parse()
            .map_err(|_| ParseError(format!("cannot parse --link-latency value `{raw}`")))?;
        topology_spec::apply_uniform_latency(&mut graph, lat)?;
    }
    let capacity: f64 = args.parse_or("capacity", 3.0)?;
    let setup_cost: f64 = args.parse_or("setup-cost", 1.0)?;
    let distances: DistanceMode = args.parse_or("distances", DistanceMode::Auto)?;
    let servers: usize = args.parse_or("servers", 0)?;
    let k: usize = args.parse_or("sfc", 3)?;
    if k == 0 {
        return Err(ParseError("--sfc must be at least 1".into()));
    }
    let n = graph.node_count();
    let mut builder = Network::builder(graph, VnfCatalog::uniform(k)).distance_mode(distances);
    builder = if servers == 0 || servers >= n {
        builder
            .all_servers(capacity)
            .map_err(|e| ParseError(e.to_string()))?
    } else {
        // Stride-spaced NFV points-of-presence: a small server subset is
        // what keeps the lazy provider's working set independent of `n`.
        let stride = n / servers;
        for i in 0..servers {
            builder = builder
                .server(NodeId(i * stride), capacity)
                .map_err(|e| ParseError(e.to_string()))?;
        }
        builder
    };
    let network = builder
        .uniform_setup_cost(setup_cost)
        .map_err(|e| ParseError(e.to_string()))?
        .build()
        .map_err(|e| ParseError(e.to_string()))?;
    Ok((network, k))
}

/// Builds the network and task that `solve` / `exact` operate on.
fn setup(args: &Args) -> Result<(Network, MulticastTask), ParseError> {
    let (network, k) = build_network(args)?;
    let source = NodeId(args.parse_or("source", usize::MAX)?);
    if source.index() == usize::MAX {
        return Err(ParseError("missing required flag --source".into()));
    }
    let dests: Vec<NodeId> = args.parse_list("dests")?.into_iter().map(NodeId).collect();
    let sfc =
        Sfc::new((0..k).map(VnfId).collect::<Vec<_>>()).map_err(|e| ParseError(e.to_string()))?;
    let task = MulticastTask::new(source, dests, sfc).map_err(|e| ParseError(e.to_string()))?;
    // --delay-budget <ms>: cap the end-to-end source→destination delay of
    // every accepted route; solves that cannot meet it fail structurally.
    let task = match args.get("delay-budget") {
        None => task,
        Some(raw) => {
            let budget: f64 = raw
                .parse()
                .map_err(|_| ParseError(format!("cannot parse --delay-budget value `{raw}`")))?;
            task.with_delay_budget(budget)
                .map_err(|e| ParseError(e.to_string()))?
        }
    };
    Ok((network, task))
}

/// `sft info`: topology statistics.
///
/// # Errors
///
/// [`ParseError`] for bad flags or topology specs.
pub fn info(args: &Args) -> Result<String, ParseError> {
    let seed: u64 = args.parse_or("seed", 0)?;
    let graph = topology_spec::build(args.require("topology")?, seed)?;
    // The provider keeps `info` viable at scale: in lazy (or auto-lazy)
    // mode the distance aggregates stream one Dijkstra row at a time
    // instead of allocating an n x n matrix.
    let distances: DistanceMode = args.parse_or("distances", DistanceMode::Auto)?;
    let dist = sft_graph::provider_for(&graph, distances).map_err(|e| ParseError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "nodes      : {}", graph.node_count());
    let _ = writeln!(out, "edges      : {}", graph.edge_count());
    let degrees: Vec<usize> = graph.nodes().map(|n| graph.degree(n)).collect();
    let _ = writeln!(
        out,
        "degree     : min {} / avg {:.2} / max {}",
        degrees.iter().min().unwrap_or(&0),
        degrees.iter().sum::<usize>() as f64 / degrees.len().max(1) as f64,
        degrees.iter().max().unwrap_or(&0)
    );
    let _ = writeln!(out, "connected  : {}", graph.is_connected());
    let _ = writeln!(out, "distances  : {} provider", dist.kind());
    let _ = writeln!(out, "avg dist   : {:.2} (l_G)", dist.average_distance());
    let _ = writeln!(out, "diameter   : {:.2}", dist.diameter());
    Ok(out)
}

/// `sft solve`: run the two-stage embedding.
///
/// # Errors
///
/// [`ParseError`] for bad flags, topology specs, or solve failures.
pub fn solve(args: &Args) -> Result<String, ParseError> {
    let (network, task) = setup(args)?;
    let strategy = match args.get("strategy").unwrap_or("msa") {
        "msa" => Strategy::Msa,
        "sca" => Strategy::Sca,
        "rsa" => Strategy::Rsa,
        other => return Err(ParseError(format!("unknown strategy `{other}`"))),
    };
    let stage2 = if args.flag("no-opa") {
        StageTwo::Skip
    } else {
        StageTwo::Opa
    };
    // --threads 0 (the default) means one worker per available core; any
    // count produces identical output, so the flag only affects wall time.
    let parallelism = Parallelism::new(args.parse_or("threads", 0usize)?);
    let options = SolveOptions {
        stage_two: stage2,
        parallelism,
        ..SolveOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(args.parse_or("seed", 0)?);
    let start = Instant::now();
    let result = solve_with_rng_options(&network, &task, strategy, options, &mut rng)
        .map_err(|e| ParseError(e.to_string()))?;
    let ms = start.elapsed().as_secs_f64() * 1e3;

    let mut out = String::new();
    let _ = writeln!(out, "strategy   : {strategy:?} (stage 2: {stage2:?})");
    let _ = writeln!(out, "cost       : {:.2}", result.cost.total());
    let _ = writeln!(out, "  setup    : {:.2}", result.cost.setup);
    let _ = writeln!(out, "  links    : {:.2}", result.cost.link);
    let _ = writeln!(out, "stage1 cost: {:.2}", result.stage1_cost);
    if let (Some(delay), Some(budget)) = (result.max_path_delay, task.delay_budget()) {
        let _ = writeln!(out, "max delay  : {delay:.2} (budget {budget:.2})");
    }
    let _ = writeln!(out, "runtime    : {ms:.2} ms");
    let _ = writeln!(out, "chain      : {:?}", result.chain.placement);
    for (stage, node) in result.embedding.instances() {
        let f = task.sfc().stage(stage);
        let status = if network.is_deployed(f, node) {
            "reused"
        } else {
            "new"
        };
        let _ = writeln!(out, "instance   : stage {stage} on node {node} [{status}]");
    }
    let issues = sft_core::validate::validate(&network, &task, &result.embedding);
    let _ = writeln!(
        out,
        "validator  : {}",
        if issues.is_empty() { "OK" } else { "FAILED" }
    );

    if args.flag("stats") {
        let s = sft_core::EmbeddingStats::collect(&network, &task, &result.embedding)
            .map_err(|e| ParseError(e.to_string()))?;
        let _ = writeln!(out, "stats      :");
        let _ = writeln!(
            out,
            "  instances: {} used, {} new (reuse {:.0}%)",
            s.instances_used,
            s.instances_new,
            100.0 * s.reuse_ratio()
        );
        let _ = writeln!(
            out,
            "  hops     : mean {:.1}, max {}",
            s.mean_route_hops, s.max_route_hops
        );
        let _ = writeln!(out, "  branching: {}", s.is_branching);
        let per_seg: Vec<String> = s
            .segment_link_costs
            .iter()
            .map(|c| format!("{c:.1}"))
            .collect();
        let _ = writeln!(out, "  segments : [{}]", per_seg.join(", "));
        let _ = writeln!(out, "  per stage: {:?}", &s.instances_per_stage[1..]);
    }

    if let Some(path) = args.get("dot") {
        let dot = viz::embedding_dot(&network, &task, &result.embedding)
            .map_err(|e| ParseError(e.to_string()))?;
        std::fs::write(path, dot).map_err(|e| ParseError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "dot        : wrote {path}");
    }
    if let Some(path) = args.get("sft-dot") {
        let tree =
            SftTree::extract(&task, &result.embedding).map_err(|e| ParseError(e.to_string()))?;
        std::fs::write(path, viz::sft_dot(&tree))
            .map_err(|e| ParseError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "sft-dot    : wrote {path}");
    }
    Ok(out)
}

/// `sft exact`: heuristic + exact ILP with approximation ratio.
///
/// # Errors
///
/// [`ParseError`] for bad flags, oversized instances, or solver errors.
pub fn exact(args: &Args) -> Result<String, ParseError> {
    let (network, task) = setup(args)?;
    let mut rng = StdRng::seed_from_u64(args.parse_or("seed", 0)?);
    let heuristic = solve_with_rng(&network, &task, Strategy::Msa, StageTwo::Opa, &mut rng)
        .map_err(|e| ParseError(e.to_string()))?;

    let model = IlpModel::build(&network, &task).map_err(|e| ParseError(e.to_string()))?;
    let backend: BackendChoice = args.parse_or("lp-backend", BackendChoice::Auto)?;
    let mip = MipConfig {
        max_nodes: args.parse_or("max-nodes", 4000)?,
        time_limit: Some(Duration::from_secs(args.parse_or("time-limit", 120)?)),
        warm_start: model.warm_start(&network, &task, &heuristic.embedding),
        backend,
        ..MipConfig::default()
    };
    let start = Instant::now();
    let outc = model
        .solve(&network, &task, &mip)
        .map_err(|e| ParseError(e.to_string()))?;
    let ms = start.elapsed().as_secs_f64() * 1e3;

    let mut out = String::new();
    let _ = writeln!(out, "heuristic  : {:.2}", heuristic.cost.total());
    let _ = writeln!(
        out,
        "ILP        : {} variables, {} constraints",
        model.problem().var_count(),
        model.problem().constraint_count()
    );
    let _ = writeln!(
        out,
        "status     : {:?} ({} B&B nodes, {ms:.1} ms)",
        outc.status, outc.nodes
    );
    let _ = writeln!(out, "lp backend : {backend} ({})", outc.lp_stats);
    match outc.objective {
        Some(obj) => {
            let _ = writeln!(out, "optimum    : {obj:.2}");
            let _ = writeln!(
                out,
                "ratio      : {:.4}",
                heuristic.cost.total() / obj.max(1e-12)
            );
            let _ = writeln!(out, "bound      : {:.2}", outc.bound);
        }
        None => {
            let _ = writeln!(
                out,
                "optimum    : not found within budget (bound {:.2})",
                outc.bound
            );
        }
    }
    Ok(out)
}

/// Builds the long-running service `batch` / `serve` operate on. `--sfc`
/// sets the catalog size (each JSONL task names its own chain from types
/// `0..k`).
fn build_service(args: &Args) -> Result<EmbedService, ParseError> {
    let (network, _k) = build_network(args)?;
    let strategy = match args.get("strategy").unwrap_or("msa") {
        "msa" => Strategy::Msa,
        "sca" => Strategy::Sca,
        other => {
            return Err(ParseError(format!(
                "unknown service strategy `{other}` (msa or sca)"
            )))
        }
    };
    let options = SolveOptions {
        stage_two: if args.flag("no-opa") {
            StageTwo::Skip
        } else {
            StageTwo::Opa
        },
        parallelism: Parallelism::new(args.parse_or("threads", 0usize)?),
        ..SolveOptions::default()
    };
    let svc =
        EmbedService::new(network, strategy, options).map_err(|e| ParseError(e.to_string()))?;
    Ok(match args.get("cache-cap") {
        Some(raw) => {
            let cap: usize = raw
                .parse()
                .map_err(|_| ParseError(format!("cannot parse --cache-cap value `{raw}`")))?;
            svc.with_cache_capacity(cap)
        }
        None => svc,
    })
}

/// Feeds a JSONL stream through the service and renders one canonical
/// protocol response line per input line (id = the request's `id`, or its
/// 1-based line number), followed by the service statistics. Malformed or
/// infeasible lines are reported as structured error responses in place;
/// the stream keeps going.
fn run_stream(svc: &mut EmbedService, text: &str, mode: BatchMode) -> String {
    enum Line {
        Task { id: Option<u64>, index: usize },
        Done(EmbedResponse),
    }
    let mut tasks = Vec::new();
    let mut lines = Vec::new();
    for (lineno, parsed) in protocol::parse_stream(text) {
        let line_id = Some(lineno as u64);
        match parsed {
            Ok(Request::Embed(req)) => {
                let id = req.id.or(line_id);
                match req.to_task() {
                    Ok(task) => {
                        lines.push(Line::Task {
                            id,
                            index: tasks.len(),
                        });
                        tasks.push(task);
                    }
                    Err(e) => {
                        lines.push(Line::Done(EmbedResponse::failure(
                            id,
                            &ServiceError::Core(e),
                        )));
                    }
                }
            }
            Ok(Request::Shutdown { id, .. }) => {
                // A shutdown line ends the stream after what came before.
                lines.push(Line::Done(EmbedResponse::draining(id.or(line_id))));
                break;
            }
            // Batch solves its tasks in bulk and keeps no session state;
            // lifecycle streams belong on `sft serve` / `sft client`.
            Ok(Request::Release { id, .. }) => {
                lines.push(Line::Done(EmbedResponse::wire_failure(
                    id.or(line_id),
                    protocol::WireError {
                        code: protocol::ErrorCode::ParseError,
                        message: "batch keeps no sessions; send release lines to sft serve"
                            .to_string(),
                    },
                )));
            }
            Err(e) => lines.push(Line::Done(EmbedResponse::wire_failure(line_id, e))),
        }
    }
    let committed = matches!(mode, BatchMode::Sequential);
    let results = svc.submit_batch(&tasks, mode);
    let mut out = String::new();
    for line in lines {
        let resp = match line {
            Line::Task { id, index } => match &results[index] {
                Ok(r) => EmbedResponse::success(id, r, committed),
                Err(e) => EmbedResponse::failure(id, e),
            },
            Line::Done(resp) => resp,
        };
        let _ = writeln!(out, "{}", resp.to_json());
    }
    let _ = writeln!(out, "\n{}", svc.stats().render().trim_end());
    out
}

/// `sft batch`: run a JSONL task file through one shared network.
///
/// # Errors
///
/// [`ParseError`] for bad flags, topology specs, or an unreadable task
/// file. Per-task failures are reported inline, not as errors.
pub fn batch(args: &Args) -> Result<String, ParseError> {
    let mut svc = build_service(args)?;
    let path = args.require("tasks")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("cannot read {path}: {e}")))?;
    let mode = match args.get("mode").unwrap_or("sequential") {
        "sequential" => BatchMode::Sequential,
        "independent" => BatchMode::Independent,
        other => {
            return Err(ParseError(format!(
                "unknown mode `{other}` (sequential or independent)"
            )))
        }
    };
    Ok(run_stream(&mut svc, &text, mode))
}

/// Streams protocol lines from `reader`, answering each on `writer` as it
/// arrives — no buffering until EOF, and a malformed line yields a
/// structured error response instead of killing the stream. Requests
/// without a `mode` use `default_mode`; `{"op":"shutdown"}` ends the
/// stream with a `draining` acknowledgement.
///
/// Commits register sessions under their effective id (the request `id`,
/// or the 1-based line number), and `{"op":"release","session":N}` tears
/// the most recent live session with that id down again — the stdin
/// channel speaks the same lifecycle as the socket server.
pub fn serve_stream(
    svc: &mut EmbedService,
    reader: impl BufRead,
    writer: &mut impl IoWrite,
    default_mode: RequestMode,
) -> std::io::Result<()> {
    // Session id → stack of still-live commit deltas (wire ids may repeat).
    let mut sessions: std::collections::BTreeMap<u64, Vec<sft_core::CommitDelta>> =
        std::collections::BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let line_id = Some(lineno as u64 + 1);
        let resp = match protocol::parse_request(trimmed) {
            Err(e) => EmbedResponse::wire_failure(line_id, e),
            Ok(Request::Shutdown { id, .. }) => {
                writeln!(
                    writer,
                    "{}",
                    EmbedResponse::draining(id.or(line_id)).to_json()
                )?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Release { id, session, .. }) => {
                let id = id.or(line_id);
                match sessions.get_mut(&session) {
                    None => EmbedResponse::failure(id, &ServiceError::UnknownSession { session }),
                    Some(stack) => match stack.pop() {
                        None => {
                            EmbedResponse::failure(id, &ServiceError::AlreadyReleased { session })
                        }
                        Some(delta) => match svc.apply_release(&delta) {
                            Ok(freed) => {
                                let held = delta.deploys().len() + delta.refs().len();
                                EmbedResponse::released(
                                    id,
                                    session,
                                    freed.iter().map(|&(f, v)| (f.0, v.0)).collect(),
                                    held - freed.len(),
                                    delta.total_bandwidth(),
                                )
                            }
                            Err(e) => EmbedResponse::failure(id, &e),
                        },
                    },
                }
            }
            Ok(Request::Embed(req)) => {
                let id = req.id.or(line_id);
                match req.to_task() {
                    Err(e) => EmbedResponse::failure(id, &ServiceError::Core(e)),
                    Ok(task) => {
                        let mode = req.mode.unwrap_or(default_mode);
                        let result = match mode {
                            RequestMode::Quote => svc.solve_uncommitted(&task),
                            RequestMode::Commit => {
                                svc.solve_uncommitted(&task).and_then(|result| {
                                    let delta =
                                        svc.network().commit_delta(&task, &result.embedding);
                                    svc.apply_commit(&delta)?;
                                    if let Some(session) = id {
                                        sessions.entry(session).or_default().push(delta);
                                    }
                                    Ok(result)
                                })
                            }
                        };
                        match result {
                            Ok(r) => {
                                EmbedResponse::success(id, &r, matches!(mode, RequestMode::Commit))
                            }
                            Err(e) => EmbedResponse::failure(id, &e),
                        }
                    }
                }
            }
        };
        writeln!(writer, "{}", resp.to_json())?;
        writer.flush()?;
    }
    Ok(())
}

/// `sft serve --listen <addr>`: the socket front-end.
fn serve_socket(args: &Args, addr: &str) -> Result<String, ParseError> {
    let svc = build_service(args)?;
    let default_mode = parse_request_mode(args.get("default-mode").unwrap_or("quote"))?;
    let config = ServerConfig {
        workers: args.parse_or("workers", 4usize)?.max(1),
        admission: AdmissionConfig {
            queue_bound: args.parse_or("queue-bound", 128usize)?,
            default_deadline_ms: args
                .get("deadline-ms")
                .map(|raw| {
                    raw.parse::<u64>().map_err(|_| {
                        ParseError(format!("cannot parse --deadline-ms value `{raw}`"))
                    })
                })
                .transpose()?,
            capacity_check: true,
        },
        default_mode,
        commit_retries: args.parse_or("commit-retries", 3usize)?.max(1),
        defrag_every: args
            .get("defrag-every-ms")
            .map(|raw| {
                raw.parse::<u64>().map_err(|_| {
                    ParseError(format!("cannot parse --defrag-every-ms value `{raw}`"))
                })
            })
            .transpose()?
            .map(std::time::Duration::from_millis),
    };
    let mut handle = sft_service::serve(svc, addr, config)
        .map_err(|e| ParseError(format!("cannot listen on {addr}: {e}")))?;
    match handle.local_addr() {
        Some(a) => eprintln!("sft serve: listening on {a}"),
        None => eprintln!("sft serve: listening on {addr}"),
    }
    handle.join(); // until a client sends {"op":"shutdown"}
    Ok(format!("{}\n", handle.stats().render().trim_end()))
}

fn parse_request_mode(raw: &str) -> Result<RequestMode, ParseError> {
    match raw {
        "quote" => Ok(RequestMode::Quote),
        "commit" => Ok(RequestMode::Commit),
        other => Err(ParseError(format!(
            "unknown request mode `{other}` (quote or commit)"
        ))),
    }
}

/// `sft serve`: with `--listen <addr>`, serve the versioned protocol over
/// TCP (`host:port`) or a Unix socket (`unix:<path>`) until a client
/// sends `{"op":"shutdown"}`. Without it, stream JSONL request lines from
/// stdin, answering each as it arrives with commit semantics (each
/// success updates the network, the paper's §IV-D online regime).
///
/// # Errors
///
/// [`ParseError`] for bad flags, topology specs, or stdin I/O failures.
pub fn serve(args: &Args) -> Result<String, ParseError> {
    if let Some(addr) = args.get("listen") {
        let addr = addr.to_string();
        return serve_socket(args, &addr);
    }
    let mut svc = build_service(args)?;
    let default_mode = parse_request_mode(args.get("default-mode").unwrap_or("commit"))?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_stream(&mut svc, stdin.lock(), &mut stdout.lock(), default_mode)
        .map_err(|e| ParseError(format!("stream I/O error: {e}")))?;
    Ok(format!("\n{}\n", svc.stats().render().trim_end()))
}

/// `sft workload`: generate a long-horizon arrival/departure session
/// stream as protocol JSONL — Poisson arrivals (exponential
/// inter-arrival times at `--rate`), exponential holding times with mean
/// `--hold`, one commit-mode embed per arrival and one `release` op per
/// departure, merged in event-time order. Piping the output into
/// `sft serve` or `sft client` drives the full session lifecycle; over a
/// long horizon the offered load is `rate * hold` Erlangs, so residual
/// capacity fluctuates around a steady state instead of draining
/// monotonically. With `--bandwidth <max>` each session also carries a
/// per-session bandwidth demand drawn uniformly from `(0, max]` —
/// deterministic under `--seed`, and omitted entirely without the flag
/// so legacy streams stay byte-identical. With `--delay-budget <max>`
/// each session additionally carries a QoS delay budget drawn uniformly
/// from `(max/2, max]` milliseconds, under the same determinism and
/// omission rules.
///
/// # Errors
///
/// [`ParseError`] for bad flags or unsupported distribution names
/// (`--arrivals poisson` and `--holding exp` are the current models).
pub fn workload(args: &Args) -> Result<String, ParseError> {
    let (network, k) = build_network(args)?;
    let n = network.node_count();
    match args.get("arrivals").unwrap_or("poisson") {
        "poisson" => {}
        other => {
            return Err(ParseError(format!(
                "unknown arrival process `{other}` (poisson)"
            )))
        }
    }
    match args.get("holding").unwrap_or("exp") {
        "exp" => {}
        other => {
            return Err(ParseError(format!(
                "unknown holding distribution `{other}` (exp)"
            )))
        }
    }
    let count: usize = args.parse_or("count", 100)?;
    let rate: f64 = args.parse_or("rate", 1.0)?;
    let hold: f64 = args.parse_or("hold", 10.0)?;
    let positive = |x: f64| x.is_finite() && x > 0.0;
    if !positive(rate) || !positive(hold) {
        return Err(ParseError("--rate and --hold must be positive".into()));
    }
    let max_dests: usize = args.parse_or("dests", 3)?;
    if max_dests == 0 || max_dests >= n {
        return Err(ParseError(format!(
            "--dests must be in 1..{n} for this topology"
        )));
    }
    // --bandwidth <max>: give each session a per-session bandwidth demand
    // drawn uniformly from (0, max], deterministic under --seed. Without
    // the flag no demand is drawn and no `bandwidth` field is emitted, so
    // legacy streams stay byte-identical.
    let max_bandwidth: Option<f64> = args
        .get("bandwidth")
        .map(|raw| {
            raw.parse::<f64>()
                .ok()
                .filter(|b| b.is_finite() && *b > 0.0)
                .ok_or_else(|| ParseError(format!("cannot parse --bandwidth value `{raw}`")))
        })
        .transpose()?;
    // --delay-budget <max>: give each session a QoS delay budget drawn
    // uniformly from (max/2, max], deterministic under --seed. Budgets
    // come from their own split-off RNG stream, so adding the flag never
    // reshuffles the arrival/bandwidth draws; without it no budget is
    // drawn and no `delay_budget_ms` field is emitted, keeping legacy
    // streams byte-identical. The lower half is excluded so generated
    // workloads exercise the constraint without collapsing into
    // all-infeasible streams.
    let max_delay_budget: Option<f64> = args
        .get("delay-budget")
        .map(|raw| {
            raw.parse::<f64>()
                .ok()
                .filter(|b| b.is_finite() && *b > 0.0)
                .ok_or_else(|| ParseError(format!("cannot parse --delay-budget value `{raw}`")))
        })
        .transpose()?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // A fixed offset keys the budget stream off the same --seed without
    // colliding with the main stream.
    let mut budget_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    // Inverse-CDF exponential sampling; 1-u keeps the argument positive.
    let exp = |mean: f64, rng: &mut StdRng| -(1.0 - rng.random::<f64>()).ln() * mean;

    // (event time, tiebreak seq, line). A session's departure uses the
    // arrival's seq + count, so a zero holding time still orders the
    // release after its own commit.
    let mut events: Vec<(f64, usize, String)> = Vec::with_capacity(2 * count);
    let mut clock = 0.0;
    for i in 0..count {
        clock += exp(1.0 / rate, &mut rng);
        let session = i as u64 + 1;
        let source = rng.random_range(0..n);
        let mut others: Vec<usize> = (0..n).filter(|&v| v != source).collect();
        let dests = rng.random_range(1..=max_dests);
        for j in 0..dests {
            let pick = rng.random_range(j..others.len());
            others.swap(j, pick);
        }
        others.truncate(dests);
        let sfc: Vec<usize> = (0..rng.random_range(1..=k)).collect();
        let mut req = protocol::EmbedRequest::new(source, others, sfc);
        req.id = Some(session);
        req.mode = Some(RequestMode::Commit);
        if let Some(max) = max_bandwidth {
            // 1-u keeps the demand strictly positive; two-decimal rounding
            // keeps the JSONL readable, capped so it never exceeds `max`.
            let raw = max * (1.0 - rng.random::<f64>());
            req.bandwidth = Some(((raw * 100.0).ceil() / 100.0).min(max));
        }
        if let Some(max) = max_delay_budget {
            // Uniform over (max/2, max]: tight enough to bite, loose
            // enough that most sessions stay routable.
            let raw = max * (1.0 - 0.5 * budget_rng.random::<f64>());
            req.delay_budget_ms = Some(((raw * 100.0).ceil() / 100.0).min(max));
        }
        events.push((clock, i, req.to_json()));
        let release = Request::Release {
            v: protocol::PROTOCOL_VERSION,
            id: Some(count as u64 + session),
            session,
            deadline_ms: None,
        };
        events.push((clock + exp(hold, &mut rng), count + i, release.to_json()));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));

    let mut out = String::new();
    let bw_note = match max_bandwidth {
        Some(max) => format!(", bandwidth (0, {max}]"),
        None => String::new(),
    };
    let delay_note = match max_delay_budget {
        Some(max) => format!(", delay budget ({}, {max}] ms", max / 2.0),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "# {count} sessions, poisson arrivals (rate {rate}), exp holding (mean {hold}){bw_note}{delay_note}: {} Erlangs offered",
        rate * hold
    );
    for (_, _, line) in events {
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

/// `sft client`: send a JSONL task file to a running `sft serve --listen`
/// server and print the responses ordered by id (ids default to 1-based
/// input line numbers, so the output lines up with `sft batch` on the
/// same file). Lines that fail to parse locally are reported as
/// structured error responses without being sent.
///
/// # Errors
///
/// [`ParseError`] for bad flags, an unreachable server, or connection I/O
/// failures. Per-request failures come back as structured responses, not
/// errors.
pub fn client(args: &Args) -> Result<String, ParseError> {
    let addr = args.require("connect")?;
    let path = args.require("tasks")?;
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
            .map_err(|e| ParseError(format!("cannot read stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| ParseError(format!("cannot read {path}: {e}")))?
    };
    let override_mode = args.get("mode").map(parse_request_mode).transpose()?;
    let io_err = |e: std::io::Error| ParseError(format!("connection to {addr}: {e}"));
    let (reader, writer) = sft_service::connect(addr).map_err(io_err)?;
    let mut writer = std::io::BufWriter::new(writer);
    let mut responses = Vec::new();
    let mut expected = 0usize;
    for (lineno, parsed) in protocol::parse_stream(&text) {
        let line_id = Some(lineno as u64);
        match parsed {
            Ok(Request::Embed(mut req)) => {
                req.id = req.id.or(line_id);
                req.mode = req.mode.or(override_mode);
                writeln!(writer, "{}", req.to_json()).map_err(io_err)?;
                expected += 1;
            }
            Ok(Request::Release {
                v,
                id,
                session,
                deadline_ms,
            }) => {
                let req = Request::Release {
                    v,
                    id: id.or(line_id),
                    session,
                    deadline_ms,
                };
                writeln!(writer, "{}", req.to_json()).map_err(io_err)?;
                expected += 1;
            }
            Ok(Request::Shutdown { v, id }) => {
                let req = Request::Shutdown {
                    v,
                    id: id.or(line_id),
                };
                writeln!(writer, "{}", req.to_json()).map_err(io_err)?;
                expected += 1;
            }
            Err(e) => responses.push(EmbedResponse::wire_failure(line_id, e)),
        }
    }
    writer.flush().map_err(io_err)?;
    let reader = std::io::BufReader::new(reader);
    for line in reader.lines().take(expected) {
        let line = line.map_err(io_err)?;
        let resp = protocol::parse_response(line.trim())
            .map_err(|e| ParseError(format!("bad response from {addr}: {e}")))?;
        responses.push(resp);
    }
    responses.sort_by_key(|r| r.id);
    let mut out = String::new();
    for resp in responses {
        let _ = writeln!(out, "{}", resp.to_json());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmdline: &str) -> Result<String, ParseError> {
        let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
        let args = Args::parse(&argv).unwrap();
        match args.command.as_str() {
            "info" => info(&args),
            "solve" => solve(&args),
            "exact" => exact(&args),
            "batch" => batch(&args),
            "workload" => workload(&args),
            _ => unreachable!(),
        }
    }

    #[test]
    fn info_reports_palmetto_shape() {
        let out = run("info --topology palmetto").unwrap();
        assert!(out.contains("nodes      : 45"));
        assert!(out.contains("connected  : true"));
        assert!(out.contains("distances  : dense provider"), "{out}");
    }

    /// The distance backend is an implementation detail: every mode
    /// reports identical aggregates (`info`) and identical embeddings
    /// (`solve`), differing only in memory shape.
    #[test]
    fn distance_modes_agree_and_bad_ones_are_rejected() {
        let dense = run("info --topology waxman:40 --seed 2 --distances dense").unwrap();
        let lazy = run("info --topology waxman:40 --seed 2 --distances lazy").unwrap();
        assert!(lazy.contains("distances  : lazy provider"), "{lazy}");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("distances"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&dense), strip(&lazy));

        let strip = |s: &str| {
            s.lines()
                .filter(|line| !line.starts_with("runtime"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // On committed and generated topologies alike, dense and lazy
        // agree verbatim at every thread count.
        for base in [
            "solve --topology waxman:40 --seed 2 --source 0 --dests 5,9 --sfc 2",
            "solve --topology palmetto --source 0 --dests 17,30,44 --sfc 2",
        ] {
            let dense = run(&format!("{base} --distances dense --threads 1")).unwrap();
            assert!(dense.contains("validator  : OK"), "{dense}");
            for threads in [1usize, 2, 4] {
                let lazy = run(&format!("{base} --distances lazy --threads {threads}")).unwrap();
                assert_eq!(
                    strip(&dense),
                    strip(&lazy),
                    "dense and lazy must agree bit-for-bit ({base}, {threads} threads)"
                );
            }
        }
        assert!(run("info --topology palmetto --distances fast").is_err());
    }

    #[test]
    fn solve_on_grid_validates() {
        let out = run("solve --topology grid:3x4 --source 0 --dests 7,11 --sfc 2").unwrap();
        assert!(out.contains("validator  : OK"), "{out}");
        assert!(out.contains("cost       :"));
        assert!(out.contains("instance   : stage 1"));
    }

    #[test]
    fn solve_reports_and_enforces_the_delay_budget() {
        let plain = run("solve --topology grid:3x4 --source 0 --dests 7,11 --sfc 2").unwrap();
        assert!(
            !plain.contains("max delay"),
            "budget-free solves keep the legacy report: {plain}"
        );
        let base = "solve --topology grid:3x4 --link-latency 1 --source 0 --dests 7,11 --sfc 2";
        let loose = run(&format!("{base} --delay-budget 50")).unwrap();
        assert!(loose.contains("validator  : OK"), "{loose}");
        assert!(loose.contains("max delay  :"), "{loose}");
        assert!(loose.contains("(budget 50.00)"), "{loose}");
        // Node 11 is five hops from the source at latency 1 per hop, so
        // half a unit of budget is structurally unreachable.
        let err = run(&format!("{base} --delay-budget 0.5")).unwrap_err();
        assert!(err.0.contains("delay budget"), "{err}");
        assert!(run(&format!("{base} --delay-budget -3")).is_err());
        assert!(run(&format!("{base} --delay-budget never")).is_err());
        assert!(run("solve --topology grid:3x4 --link-latency bad --source 0 --dests 7 --sfc 1").is_err());
    }

    #[test]
    fn solve_strategies_and_no_opa() {
        for strat in ["msa", "sca", "rsa"] {
            let out = run(&format!(
                "solve --topology er:25 --seed 3 --source 0 --dests 5,9 --sfc 2 --strategy {strat}"
            ))
            .unwrap();
            assert!(out.contains("validator  : OK"), "{strat}: {out}");
        }
        let out =
            run("solve --topology er:25 --seed 3 --source 0 --dests 5,9 --sfc 2 --no-opa").unwrap();
        assert!(out.contains("Skip"));
    }

    #[test]
    fn threads_flag_never_changes_the_answer() {
        let base = "solve --topology er:25 --seed 3 --source 0 --dests 5,9 --sfc 2";
        let reference = run(&format!("{base} --threads 1")).unwrap();
        for threads in [0usize, 2, 4] {
            let out = run(&format!("{base} --threads {threads}")).unwrap();
            // Strip the runtime line, then the reports must match verbatim.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("runtime"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&reference), strip(&out), "--threads {threads}");
        }
        assert!(run(&format!("{base} --threads x")).is_err());
    }

    #[test]
    fn exact_certifies_small_instances() {
        let out = run("exact --topology grid:3x3 --source 0 --dests 8 --sfc 1").unwrap();
        assert!(out.contains("status     : Optimal"), "{out}");
        assert!(out.contains("ratio      : 1.0000"), "{out}");
        assert!(out.contains("lp backend : auto"), "{out}");
    }

    #[test]
    fn exact_backends_agree_on_the_optimum() {
        let base = "exact --topology palmetto:10 --source 0 --dests 6,9 --sfc 1";
        let mut optima = Vec::new();
        for backend in ["dense", "revised", "auto"] {
            let out = run(&format!("{base} --lp-backend {backend}")).unwrap();
            assert!(out.contains("status     : Optimal"), "{backend}: {out}");
            assert!(
                out.contains(&format!("lp backend : {backend}")),
                "{backend}: {out}"
            );
            let obj = out
                .lines()
                .find(|l| l.starts_with("optimum"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or_else(|| panic!("{backend}: no optimum in {out}"));
            optima.push(obj);
        }
        for pair in optima.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-6, "{optima:?}");
        }
        assert!(run(&format!("{base} --lp-backend fancy")).is_err());
    }

    #[test]
    fn solve_rejects_bad_inputs_gracefully() {
        assert!(run("solve --topology grid:3x4 --dests 7").is_err()); // no source
        assert!(run("solve --topology grid:3x4 --source 0").is_err()); // no dests
        assert!(run("solve --topology nope --source 0 --dests 1").is_err());
        assert!(run("solve --topology grid:2x2 --source 0 --dests 3 --sfc 0").is_err());
        assert!(run("solve --topology grid:2x2 --source 0 --dests 3 --strategy magic").is_err());
    }

    #[test]
    fn stats_flag_prints_statistics() {
        let out = run("solve --topology grid:3x4 --source 0 --dests 7,11 --sfc 2 --stats").unwrap();
        assert!(out.contains("stats      :"), "{out}");
        assert!(out.contains("instances:"));
        assert!(out.contains("hops"));
        assert!(out.contains("segments"));
    }

    #[test]
    fn batch_runs_a_jsonl_stream_and_reports_stats() {
        let dir = std::env::temp_dir().join("sft_cli_batch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tasks.jsonl");
        std::fs::write(
            &file,
            "# demo\n\
             {\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
             {\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
             {\"source\": 3, \"dests\": [8], \"sfc\": [2]}\n\
             not json at all\n",
        )
        .unwrap();
        for mode in ["sequential", "independent"] {
            let out = run(&format!(
                "batch --topology grid:3x4 --tasks {} --mode {mode}",
                file.display()
            ))
            .unwrap();
            // One canonical protocol response per input line, id = lineno.
            assert!(
                out.contains("{\"v\":1,\"id\":2,\"status\":\"ok\""),
                "{mode}: {out}"
            );
            assert!(
                out.contains("{\"v\":1,\"id\":5,\"status\":\"error\""),
                "{mode}: {out}"
            );
            assert!(out.contains("\"code\":\"parse_error\""), "{mode}: {out}");
            assert!(out.contains("tasks served   : 3"), "{mode}: {out}");
            assert!(out.contains("apsp builds    : 1"), "{mode}: {out}");
            // The duplicate task guarantees Steiner-cache hits.
            assert!(!out.contains("hit rate 0.0%"), "{mode}: {out}");
        }
        // Sequential mode commits, so the repeated task pays no setup.
        let seq = run(&format!(
            "batch --topology grid:3x4 --tasks {}",
            file.display()
        ))
        .unwrap();
        assert!(seq.contains("commits        : 3"), "{seq}");
        assert!(seq.contains("\"committed\":true"), "{seq}");
        assert!(
            seq.contains("\"id\":3,\"status\":\"ok\",\"cost\":{\"total\":"),
            "{seq}"
        );
        // Every response line parses back through the shared protocol.
        for line in seq.lines().take_while(|l| !l.is_empty()) {
            sft_service::parse_response(line).unwrap();
        }
        // A capacity-1 cache still serves the stream; evictions show up.
        let capped = run(&format!(
            "batch --topology grid:3x4 --tasks {} --cache-cap 1",
            file.display()
        ))
        .unwrap();
        assert!(capped.contains("tasks served   : 3"), "{capped}");
        assert!(!capped.contains("0 evictions"), "{capped}");
        assert!(run(&format!(
            "batch --topology grid:3x4 --tasks {} --cache-cap lots",
            file.display()
        ))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `--servers <n>` restricts VNF placement to a stride-spaced subset,
    /// which is what keeps the lazy provider's working set independent of
    /// the substrate size: a quote touches rows for servers, sources and
    /// destinations, not all `n`.
    #[test]
    fn a_server_subset_keeps_the_lazy_working_set_small() {
        let dir = std::env::temp_dir().join("sft_cli_servers_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tasks.jsonl");
        std::fs::write(
            &file,
            "{\"source\": 3, \"dests\": [120, 199], \"sfc\": [0, 1]}\n",
        )
        .unwrap();
        let out = run(&format!(
            "batch --topology waxman:200 --seed 1 --servers 8 --distances lazy --tasks {}",
            file.display()
        ))
        .unwrap();
        assert!(out.contains("\"id\":1,\"status\":\"ok\""), "{out}");
        let line = out
            .lines()
            .find(|l| l.starts_with("distance layer : lazy provider"))
            .unwrap_or_else(|| panic!("missing distance layer line: {out}"));
        let rows: usize = line
            .split(", ")
            .nth(1)
            .and_then(|s| s.strip_suffix(" rows resident"))
            .expect("rows resident field")
            .parse()
            .unwrap();
        assert!(rows < 100, "working set should be << 200 rows: {line}");
        // 0 (and an over-count) fall back to every node being a server.
        let all = run(&format!(
            "batch --topology waxman:200 --seed 1 --servers 0 --distances lazy --tasks {}",
            file.display()
        ))
        .unwrap();
        assert!(all.contains("\"id\":1,\"status\":\"ok\""), "{all}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_rejects_bad_flags() {
        assert!(run("batch --topology grid:3x4").is_err()); // no --tasks
        assert!(run("batch --topology grid:3x4 --tasks /nonexistent.jsonl").is_err());
        let dir = std::env::temp_dir().join("sft_cli_batch_flags");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.jsonl");
        std::fs::write(&file, "{\"source\": 0, \"dests\": [3], \"sfc\": [0]}\n").unwrap();
        assert!(run(&format!(
            "batch --topology grid:2x2 --tasks {} --mode warp",
            file.display()
        ))
        .is_err());
        assert!(run(&format!(
            "batch --topology grid:2x2 --tasks {} --strategy rsa",
            file.display()
        ))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_stream_answers_each_line_and_survives_bad_ones() {
        let argv: Vec<String> = "serve --topology grid:3x4"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = Args::parse(&argv).unwrap();
        let mut svc = build_service(&args).unwrap();
        let input = "{\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
                     this is not json\n\
                     {\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
                     {\"op\": \"shutdown\"}\n\
                     {\"source\": 3, \"dests\": [8], \"sfc\": [2]}\n";
        let mut out = Vec::new();
        serve_stream(
            &mut svc,
            std::io::Cursor::new(input),
            &mut out,
            RequestMode::Commit,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "shutdown ends the stream: {out}");
        assert!(lines[0].contains("\"id\":1,\"status\":\"ok\""), "{out}");
        // The malformed line yields a structured error, not a dead stream.
        assert!(lines[1].contains("\"id\":2,\"status\":\"error\""), "{out}");
        assert!(lines[1].contains("\"code\":\"parse_error\""), "{out}");
        // The repeated committed task pays no setup the second time.
        assert!(lines[2].contains("\"setup\":0"), "{out}");
        assert!(lines[3].contains("\"status\":\"draining\""), "{out}");
        assert_eq!(svc.stats().commits, 2);
    }

    #[test]
    fn workload_bandwidth_flag_adds_deterministic_demands() {
        let base = "workload --topology grid:3x4 --count 15 --seed 4 --rate 2 --hold 3";
        let plain = run(base).unwrap();
        assert!(
            !plain.contains("bandwidth"),
            "legacy streams carry no bandwidth field: {plain}"
        );
        let capped = run(&format!("{base} --bandwidth 2.5")).unwrap();
        let mut demands = 0usize;
        for line in capped.lines().filter(|l| !l.starts_with('#')) {
            if let Request::Embed(req) = protocol::parse_request(line).unwrap() {
                let bw = req.bandwidth.expect("every session carries a demand");
                assert!(bw > 0.0 && bw <= 2.5, "demand out of range: {bw}");
                demands += 1;
            }
        }
        assert_eq!(demands, 15);
        assert_eq!(capped, run(&format!("{base} --bandwidth 2.5")).unwrap());
        assert_ne!(capped, run(&format!("{base} --bandwidth 1.0")).unwrap());
        assert!(run(&format!("{base} --bandwidth 0")).is_err());
        assert!(run(&format!("{base} --bandwidth lots")).is_err());
    }

    #[test]
    fn workload_delay_budget_flag_adds_deterministic_budgets() {
        let base = "workload --topology grid:3x4 --count 15 --seed 4 --rate 2 --hold 3";
        let plain = run(base).unwrap();
        assert!(
            !plain.contains("delay_budget_ms"),
            "legacy streams carry no delay budget field: {plain}"
        );
        let budgeted = run(&format!("{base} --delay-budget 20")).unwrap();
        let mut budgets = 0usize;
        for line in budgeted.lines().filter(|l| !l.starts_with('#')) {
            if let Request::Embed(req) = protocol::parse_request(line).unwrap() {
                let b = req.delay_budget_ms.expect("every session carries a budget");
                assert!(b > 10.0 && b <= 20.0, "budget out of range: {b}");
                budgets += 1;
            }
        }
        assert_eq!(budgets, 15);
        assert_eq!(budgeted, run(&format!("{base} --delay-budget 20")).unwrap());
        // Adding --delay-budget leaves the bandwidth stream untouched:
        // every session's demand matches the budget-free run's.
        let capped = run(&format!("{base} --bandwidth 2.5")).unwrap();
        let both = run(&format!("{base} --bandwidth 2.5 --delay-budget 20")).unwrap();
        let demands = |text: &str| -> Vec<f64> {
            text.lines()
                .filter(|l| !l.starts_with('#'))
                .filter_map(|l| match protocol::parse_request(l).unwrap() {
                    Request::Embed(req) => req.bandwidth,
                    _ => None,
                })
                .collect()
        };
        assert_eq!(demands(&capped), demands(&both));
        assert!(run(&format!("{base} --delay-budget 0")).is_err());
        assert!(run(&format!("{base} --delay-budget soon")).is_err());
    }

    /// The narrow-link lifecycle on the stdin channel: with `--link-bw`
    /// saturating the only link, a second concurrent session is refused,
    /// and releasing the first (freeing its bandwidth on the wire as
    /// `bw_freed`) lets the same task commit again.
    #[test]
    fn link_bw_flag_saturates_refuses_and_recovers_on_release() {
        let argv: Vec<String> = "serve --topology grid:1x2 --link-bw 1"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = Args::parse(&argv).unwrap();
        let mut svc = build_service(&args).unwrap();
        let input = "{\"id\": 1, \"source\": 0, \"dests\": [1], \"sfc\": [0], \"bandwidth\": 0.6}\n\
                     {\"id\": 2, \"source\": 0, \"dests\": [1], \"sfc\": [0], \"bandwidth\": 0.6}\n\
                     {\"op\": \"release\", \"session\": 1}\n\
                     {\"id\": 4, \"source\": 0, \"dests\": [1], \"sfc\": [0], \"bandwidth\": 0.6}\n";
        let mut out = Vec::new();
        serve_stream(
            &mut svc,
            std::io::Cursor::new(input),
            &mut out,
            RequestMode::Commit,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"id\":1,\"status\":\"ok\""), "{out}");
        // The saturated link cannot carry a second 0.6 demand: refused,
        // not oversubscribed.
        assert!(lines[1].contains("\"status\":\"error\""), "{out}");
        assert!(
            lines[1].contains("\"code\":\"infeasible\"")
                || lines[1].contains("\"code\":\"insufficient_capacity\""),
            "{out}"
        );
        // Releasing session 1 reports its bandwidth back on the wire.
        assert!(lines[2].contains("\"status\":\"released\""), "{out}");
        assert!(lines[2].contains("\"bw_freed\":0.6"), "{out}");
        // The freed link admits the same demand again.
        assert!(lines[3].contains("\"id\":4,\"status\":\"ok\""), "{out}");
        let stats = svc.stats();
        assert_eq!(stats.link_edges, 1, "one capacitated edge");
        assert!(stats.render().contains("link util"), "{}", stats.render());
    }

    #[test]
    fn workload_emits_paired_commits_and_releases_in_event_order() {
        let out =
            run("workload --topology grid:3x4 --count 20 --seed 5 --rate 2 --hold 3").unwrap();
        let lines: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 40, "{out}");
        let mut commits = 0usize;
        let mut releases = 0usize;
        let mut live = std::collections::BTreeSet::new();
        for line in &lines {
            match protocol::parse_request(line).unwrap() {
                Request::Embed(req) => {
                    assert_eq!(req.mode, Some(RequestMode::Commit), "{line}");
                    assert!(live.insert(req.id.unwrap()), "session ids are unique");
                    commits += 1;
                }
                Request::Release { session, .. } => {
                    assert!(live.remove(&session), "release follows its own commit");
                    releases += 1;
                }
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert_eq!((commits, releases), (20, 20));
        assert!(live.is_empty(), "every session departs");
        // Deterministic under a seed; different under another.
        let again =
            run("workload --topology grid:3x4 --count 20 --seed 5 --rate 2 --hold 3").unwrap();
        assert_eq!(out, again);
        let other =
            run("workload --topology grid:3x4 --count 20 --seed 6 --rate 2 --hold 3").unwrap();
        assert_ne!(out, other);
        // Unsupported models are named errors, not silent fallbacks.
        assert!(run("workload --topology grid:3x4 --arrivals uniform").is_err());
        assert!(run("workload --topology grid:3x4 --holding pareto").is_err());
        assert!(run("workload --topology grid:3x4 --rate 0").is_err());
    }

    /// The leak-proof lifecycle end to end on the stdin channel: a full
    /// workload of arrivals and departures leaves the network exactly at
    /// its seed state once every session has departed.
    #[test]
    fn workload_through_serve_stream_returns_to_the_seed_network() {
        let stream =
            run("workload --topology grid:3x4 --count 30 --seed 9 --rate 4 --hold 2").unwrap();
        let argv: Vec<String> = "serve --topology grid:3x4"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = Args::parse(&argv).unwrap();
        let mut svc = build_service(&args).unwrap();
        let seed = svc.network().clone();
        let mut out = Vec::new();
        serve_stream(
            &mut svc,
            std::io::Cursor::new(stream),
            &mut out,
            RequestMode::Commit,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let mut committed = 0usize;
        let mut released = 0usize;
        for line in out.lines() {
            let resp = sft_service::parse_response(line).unwrap();
            match resp.body {
                sft_service::ResponseBody::Ok { committed: c, .. } => committed += usize::from(c),
                sft_service::ResponseBody::Released { .. } => released += 1,
                ref other => panic!("unexpected body {other:?} in {line}"),
            }
        }
        assert_eq!(committed, 30, "{out}");
        assert_eq!(released, 30, "{out}");
        assert_eq!(
            svc.network().deployment_refcounts(),
            seed.deployment_refcounts()
        );
        assert_eq!(
            svc.network().total_residual_capacity(),
            seed.total_residual_capacity()
        );
        let stats = svc.stats();
        assert_eq!(stats.commits, 30);
        assert_eq!(stats.releases, 30);
    }

    #[test]
    fn client_and_socket_serve_match_batch_output() {
        let dir = std::env::temp_dir().join("sft_cli_socket_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tasks.jsonl");
        std::fs::write(
            &file,
            "{\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
             oops\n\
             {\"source\": 3, \"dests\": [8], \"sfc\": [2]}\n",
        )
        .unwrap();
        let batch = run(&format!(
            "batch --topology grid:3x4 --tasks {} --mode independent",
            file.display()
        ))
        .unwrap();
        let batch_lines: Vec<&str> = batch.lines().take_while(|l| !l.is_empty()).collect();

        let argv: Vec<String> = "serve --topology grid:3x4"
            .split_whitespace()
            .map(String::from)
            .collect();
        let svc = build_service(&Args::parse(&argv).unwrap()).unwrap();
        let mut handle =
            sft_service::serve(svc, "127.0.0.1:0", sft_service::ServerConfig::default()).unwrap();
        let addr = handle.local_addr().unwrap().to_string();
        let argv: Vec<String> = format!("client --connect {addr} --tasks {}", file.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let out = client(&Args::parse(&argv).unwrap()).unwrap();
        assert_eq!(out.lines().collect::<Vec<_>>(), batch_lines, "{out}");
        handle.shutdown();
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dot_exports_write_files() {
        let dir = std::env::temp_dir().join("sft_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dot = dir.join("emb.dot");
        let sft = dir.join("sft.dot");
        let out = run(&format!(
            "solve --topology grid:3x3 --source 0 --dests 8 --sfc 1 --dot {} --sft-dot {}",
            dot.display(),
            sft.display()
        ))
        .unwrap();
        assert!(out.contains("dot        : wrote"));
        assert!(std::fs::read_to_string(&dot)
            .unwrap()
            .starts_with("graph embedding"));
        assert!(std::fs::read_to_string(&sft)
            .unwrap()
            .starts_with("digraph sft"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
