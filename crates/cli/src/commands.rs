//! The `sft` subcommand implementations. Each returns the text to print.

use crate::args::{Args, ParseError};
use crate::topology_spec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_core::ilp::IlpModel;
use sft_core::{
    solve_with_rng, solve_with_rng_options, viz, MulticastTask, Network, Parallelism, Sfc, SftTree,
    SolveOptions, StageTwo, Strategy, VnfCatalog, VnfId,
};
use sft_graph::NodeId;
use sft_lp::{BackendChoice, MipConfig};
use sft_service::{jsonl, BatchMode, EmbedService};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Builds the network and task that `solve` / `exact` operate on.
fn setup(args: &Args) -> Result<(Network, MulticastTask), ParseError> {
    let seed: u64 = args.parse_or("seed", 0)?;
    let graph = topology_spec::build(args.require("topology")?, seed)?;
    let capacity: f64 = args.parse_or("capacity", 3.0)?;
    let setup_cost: f64 = args.parse_or("setup-cost", 1.0)?;
    let k: usize = args.parse_or("sfc", 3)?;
    if k == 0 {
        return Err(ParseError("--sfc must be at least 1".into()));
    }
    let network = Network::builder(graph, VnfCatalog::uniform(k))
        .all_servers(capacity)
        .map_err(|e| ParseError(e.to_string()))?
        .uniform_setup_cost(setup_cost)
        .map_err(|e| ParseError(e.to_string()))?
        .build()
        .map_err(|e| ParseError(e.to_string()))?;

    let source = NodeId(args.parse_or("source", usize::MAX)?);
    if source.index() == usize::MAX {
        return Err(ParseError("missing required flag --source".into()));
    }
    let dests: Vec<NodeId> = args.parse_list("dests")?.into_iter().map(NodeId).collect();
    let sfc =
        Sfc::new((0..k).map(VnfId).collect::<Vec<_>>()).map_err(|e| ParseError(e.to_string()))?;
    let task = MulticastTask::new(source, dests, sfc).map_err(|e| ParseError(e.to_string()))?;
    Ok((network, task))
}

/// `sft info`: topology statistics.
///
/// # Errors
///
/// [`ParseError`] for bad flags or topology specs.
pub fn info(args: &Args) -> Result<String, ParseError> {
    let seed: u64 = args.parse_or("seed", 0)?;
    let graph = topology_spec::build(args.require("topology")?, seed)?;
    let apsp = graph
        .all_pairs_shortest_paths()
        .map_err(|e| ParseError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "nodes      : {}", graph.node_count());
    let _ = writeln!(out, "edges      : {}", graph.edge_count());
    let degrees: Vec<usize> = graph.nodes().map(|n| graph.degree(n)).collect();
    let _ = writeln!(
        out,
        "degree     : min {} / avg {:.2} / max {}",
        degrees.iter().min().unwrap_or(&0),
        degrees.iter().sum::<usize>() as f64 / degrees.len().max(1) as f64,
        degrees.iter().max().unwrap_or(&0)
    );
    let _ = writeln!(out, "connected  : {}", graph.is_connected());
    let _ = writeln!(out, "avg dist   : {:.2} (l_G)", apsp.average_distance());
    let _ = writeln!(out, "diameter   : {:.2}", apsp.diameter());
    Ok(out)
}

/// `sft solve`: run the two-stage embedding.
///
/// # Errors
///
/// [`ParseError`] for bad flags, topology specs, or solve failures.
pub fn solve(args: &Args) -> Result<String, ParseError> {
    let (network, task) = setup(args)?;
    let strategy = match args.get("strategy").unwrap_or("msa") {
        "msa" => Strategy::Msa,
        "sca" => Strategy::Sca,
        "rsa" => Strategy::Rsa,
        other => return Err(ParseError(format!("unknown strategy `{other}`"))),
    };
    let stage2 = if args.flag("no-opa") {
        StageTwo::Skip
    } else {
        StageTwo::Opa
    };
    // --threads 0 (the default) means one worker per available core; any
    // count produces identical output, so the flag only affects wall time.
    let parallelism = Parallelism::new(args.parse_or("threads", 0usize)?);
    let options = SolveOptions {
        stage_two: stage2,
        parallelism,
    };
    let mut rng = StdRng::seed_from_u64(args.parse_or("seed", 0)?);
    let start = Instant::now();
    let result = solve_with_rng_options(&network, &task, strategy, options, &mut rng)
        .map_err(|e| ParseError(e.to_string()))?;
    let ms = start.elapsed().as_secs_f64() * 1e3;

    let mut out = String::new();
    let _ = writeln!(out, "strategy   : {strategy:?} (stage 2: {stage2:?})");
    let _ = writeln!(out, "cost       : {:.2}", result.cost.total());
    let _ = writeln!(out, "  setup    : {:.2}", result.cost.setup);
    let _ = writeln!(out, "  links    : {:.2}", result.cost.link);
    let _ = writeln!(out, "stage1 cost: {:.2}", result.stage1_cost);
    let _ = writeln!(out, "runtime    : {ms:.2} ms");
    let _ = writeln!(out, "chain      : {:?}", result.chain.placement);
    for (stage, node) in result.embedding.instances() {
        let f = task.sfc().stage(stage);
        let status = if network.is_deployed(f, node) {
            "reused"
        } else {
            "new"
        };
        let _ = writeln!(out, "instance   : stage {stage} on node {node} [{status}]");
    }
    let issues = sft_core::validate::validate(&network, &task, &result.embedding);
    let _ = writeln!(
        out,
        "validator  : {}",
        if issues.is_empty() { "OK" } else { "FAILED" }
    );

    if args.flag("stats") {
        let s = sft_core::EmbeddingStats::collect(&network, &task, &result.embedding)
            .map_err(|e| ParseError(e.to_string()))?;
        let _ = writeln!(out, "stats      :");
        let _ = writeln!(
            out,
            "  instances: {} used, {} new (reuse {:.0}%)",
            s.instances_used,
            s.instances_new,
            100.0 * s.reuse_ratio()
        );
        let _ = writeln!(
            out,
            "  hops     : mean {:.1}, max {}",
            s.mean_route_hops, s.max_route_hops
        );
        let _ = writeln!(out, "  branching: {}", s.is_branching);
        let per_seg: Vec<String> = s
            .segment_link_costs
            .iter()
            .map(|c| format!("{c:.1}"))
            .collect();
        let _ = writeln!(out, "  segments : [{}]", per_seg.join(", "));
        let _ = writeln!(out, "  per stage: {:?}", &s.instances_per_stage[1..]);
    }

    if let Some(path) = args.get("dot") {
        let dot = viz::embedding_dot(&network, &task, &result.embedding)
            .map_err(|e| ParseError(e.to_string()))?;
        std::fs::write(path, dot).map_err(|e| ParseError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "dot        : wrote {path}");
    }
    if let Some(path) = args.get("sft-dot") {
        let tree =
            SftTree::extract(&task, &result.embedding).map_err(|e| ParseError(e.to_string()))?;
        std::fs::write(path, viz::sft_dot(&tree))
            .map_err(|e| ParseError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "sft-dot    : wrote {path}");
    }
    Ok(out)
}

/// `sft exact`: heuristic + exact ILP with approximation ratio.
///
/// # Errors
///
/// [`ParseError`] for bad flags, oversized instances, or solver errors.
pub fn exact(args: &Args) -> Result<String, ParseError> {
    let (network, task) = setup(args)?;
    let mut rng = StdRng::seed_from_u64(args.parse_or("seed", 0)?);
    let heuristic = solve_with_rng(&network, &task, Strategy::Msa, StageTwo::Opa, &mut rng)
        .map_err(|e| ParseError(e.to_string()))?;

    let model = IlpModel::build(&network, &task).map_err(|e| ParseError(e.to_string()))?;
    let backend: BackendChoice = args.parse_or("lp-backend", BackendChoice::Auto)?;
    let mip = MipConfig {
        max_nodes: args.parse_or("max-nodes", 4000)?,
        time_limit: Some(Duration::from_secs(args.parse_or("time-limit", 120)?)),
        warm_start: model.warm_start(&network, &task, &heuristic.embedding),
        backend,
        ..MipConfig::default()
    };
    let start = Instant::now();
    let outc = model
        .solve(&network, &task, &mip)
        .map_err(|e| ParseError(e.to_string()))?;
    let ms = start.elapsed().as_secs_f64() * 1e3;

    let mut out = String::new();
    let _ = writeln!(out, "heuristic  : {:.2}", heuristic.cost.total());
    let _ = writeln!(
        out,
        "ILP        : {} variables, {} constraints",
        model.problem().var_count(),
        model.problem().constraint_count()
    );
    let _ = writeln!(
        out,
        "status     : {:?} ({} B&B nodes, {ms:.1} ms)",
        outc.status, outc.nodes
    );
    let _ = writeln!(out, "lp backend : {backend} ({})", outc.lp_stats);
    match outc.objective {
        Some(obj) => {
            let _ = writeln!(out, "optimum    : {obj:.2}");
            let _ = writeln!(
                out,
                "ratio      : {:.4}",
                heuristic.cost.total() / obj.max(1e-12)
            );
            let _ = writeln!(out, "bound      : {:.2}", outc.bound);
        }
        None => {
            let _ = writeln!(
                out,
                "optimum    : not found within budget (bound {:.2})",
                outc.bound
            );
        }
    }
    Ok(out)
}

/// Builds the long-running service `batch` / `serve` operate on. `--sfc`
/// sets the catalog size (each JSONL task names its own chain from types
/// `0..k`).
fn build_service(args: &Args) -> Result<EmbedService, ParseError> {
    let seed: u64 = args.parse_or("seed", 0)?;
    let graph = topology_spec::build(args.require("topology")?, seed)?;
    let capacity: f64 = args.parse_or("capacity", 3.0)?;
    let setup_cost: f64 = args.parse_or("setup-cost", 1.0)?;
    let k: usize = args.parse_or("sfc", 3)?;
    if k == 0 {
        return Err(ParseError("--sfc must be at least 1".into()));
    }
    let network = Network::builder(graph, VnfCatalog::uniform(k))
        .all_servers(capacity)
        .map_err(|e| ParseError(e.to_string()))?
        .uniform_setup_cost(setup_cost)
        .map_err(|e| ParseError(e.to_string()))?
        .build()
        .map_err(|e| ParseError(e.to_string()))?;
    let strategy = match args.get("strategy").unwrap_or("msa") {
        "msa" => Strategy::Msa,
        "sca" => Strategy::Sca,
        other => {
            return Err(ParseError(format!(
                "unknown service strategy `{other}` (msa or sca)"
            )))
        }
    };
    let options = SolveOptions {
        stage_two: if args.flag("no-opa") {
            StageTwo::Skip
        } else {
            StageTwo::Opa
        },
        parallelism: Parallelism::new(args.parse_or("threads", 0usize)?),
    };
    let svc =
        EmbedService::new(network, strategy, options).map_err(|e| ParseError(e.to_string()))?;
    Ok(match args.get("cache-cap") {
        Some(raw) => {
            let cap: usize = raw
                .parse()
                .map_err(|_| ParseError(format!("cannot parse --cache-cap value `{raw}`")))?;
            svc.with_cache_capacity(cap)
        }
        None => svc,
    })
}

/// Feeds a JSONL stream through the service and renders per-task cost
/// breakdowns plus the service statistics. Malformed or infeasible lines
/// are reported in place; the stream keeps going.
fn run_stream(svc: &mut EmbedService, text: &str, mode: BatchMode) -> String {
    enum Line {
        Task(usize),
        Bad(String),
    }
    let mut tasks = Vec::new();
    let mut lines = Vec::new();
    for (lineno, parsed) in jsonl::parse_stream(text) {
        match parsed.and_then(|spec| spec.to_task().map_err(|e| e.to_string())) {
            Ok(task) => {
                lines.push((lineno, Line::Task(tasks.len())));
                tasks.push(task);
            }
            Err(reason) => lines.push((lineno, Line::Bad(reason))),
        }
    }
    let results = svc.submit_batch(&tasks, mode);
    let mut out = String::new();
    for (lineno, line) in lines {
        match line {
            Line::Task(i) => match &results[i] {
                Ok(r) => {
                    let _ = writeln!(
                        out,
                        "task line {lineno:>3}: cost {:>10.2} (setup {:>8.2} + links {:>8.2})",
                        r.cost.total(),
                        r.cost.setup,
                        r.cost.link
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "task line {lineno:>3}: error: {e}");
                }
            },
            Line::Bad(reason) => {
                let _ = writeln!(out, "task line {lineno:>3}: bad line: {reason}");
            }
        }
    }
    let _ = writeln!(out, "\n{}", svc.stats().render().trim_end());
    out
}

/// `sft batch`: run a JSONL task file through one shared network.
///
/// # Errors
///
/// [`ParseError`] for bad flags, topology specs, or an unreadable task
/// file. Per-task failures are reported inline, not as errors.
pub fn batch(args: &Args) -> Result<String, ParseError> {
    let mut svc = build_service(args)?;
    let path = args.require("tasks")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError(format!("cannot read {path}: {e}")))?;
    let mode = match args.get("mode").unwrap_or("sequential") {
        "sequential" => BatchMode::Sequential,
        "independent" => BatchMode::Independent,
        other => {
            return Err(ParseError(format!(
                "unknown mode `{other}` (sequential or independent)"
            )))
        }
    };
    Ok(run_stream(&mut svc, &text, mode))
}

/// `sft serve`: read JSONL task lines from stdin until EOF and embed them
/// in arrival order against one evolving network (each success commits).
///
/// # Errors
///
/// [`ParseError`] for bad flags, topology specs, or stdin I/O failures.
pub fn serve(args: &Args) -> Result<String, ParseError> {
    let mut svc = build_service(args)?;
    let mut text = String::new();
    use std::io::Read as _;
    std::io::stdin()
        .read_to_string(&mut text)
        .map_err(|e| ParseError(format!("cannot read stdin: {e}")))?;
    Ok(run_stream(&mut svc, &text, BatchMode::Sequential))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmdline: &str) -> Result<String, ParseError> {
        let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
        let args = Args::parse(&argv).unwrap();
        match args.command.as_str() {
            "info" => info(&args),
            "solve" => solve(&args),
            "exact" => exact(&args),
            "batch" => batch(&args),
            _ => unreachable!(),
        }
    }

    #[test]
    fn info_reports_palmetto_shape() {
        let out = run("info --topology palmetto").unwrap();
        assert!(out.contains("nodes      : 45"));
        assert!(out.contains("connected  : true"));
    }

    #[test]
    fn solve_on_grid_validates() {
        let out = run("solve --topology grid:3x4 --source 0 --dests 7,11 --sfc 2").unwrap();
        assert!(out.contains("validator  : OK"), "{out}");
        assert!(out.contains("cost       :"));
        assert!(out.contains("instance   : stage 1"));
    }

    #[test]
    fn solve_strategies_and_no_opa() {
        for strat in ["msa", "sca", "rsa"] {
            let out = run(&format!(
                "solve --topology er:25 --seed 3 --source 0 --dests 5,9 --sfc 2 --strategy {strat}"
            ))
            .unwrap();
            assert!(out.contains("validator  : OK"), "{strat}: {out}");
        }
        let out =
            run("solve --topology er:25 --seed 3 --source 0 --dests 5,9 --sfc 2 --no-opa").unwrap();
        assert!(out.contains("Skip"));
    }

    #[test]
    fn threads_flag_never_changes_the_answer() {
        let base = "solve --topology er:25 --seed 3 --source 0 --dests 5,9 --sfc 2";
        let reference = run(&format!("{base} --threads 1")).unwrap();
        for threads in [0usize, 2, 4] {
            let out = run(&format!("{base} --threads {threads}")).unwrap();
            // Strip the runtime line, then the reports must match verbatim.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("runtime"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&reference), strip(&out), "--threads {threads}");
        }
        assert!(run(&format!("{base} --threads x")).is_err());
    }

    #[test]
    fn exact_certifies_small_instances() {
        let out = run("exact --topology grid:3x3 --source 0 --dests 8 --sfc 1").unwrap();
        assert!(out.contains("status     : Optimal"), "{out}");
        assert!(out.contains("ratio      : 1.0000"), "{out}");
        assert!(out.contains("lp backend : auto"), "{out}");
    }

    #[test]
    fn exact_backends_agree_on_the_optimum() {
        let base = "exact --topology palmetto:10 --source 0 --dests 6,9 --sfc 1";
        let mut optima = Vec::new();
        for backend in ["dense", "revised", "auto"] {
            let out = run(&format!("{base} --lp-backend {backend}")).unwrap();
            assert!(out.contains("status     : Optimal"), "{backend}: {out}");
            assert!(
                out.contains(&format!("lp backend : {backend}")),
                "{backend}: {out}"
            );
            let obj = out
                .lines()
                .find(|l| l.starts_with("optimum"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or_else(|| panic!("{backend}: no optimum in {out}"));
            optima.push(obj);
        }
        for pair in optima.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-6, "{optima:?}");
        }
        assert!(run(&format!("{base} --lp-backend fancy")).is_err());
    }

    #[test]
    fn solve_rejects_bad_inputs_gracefully() {
        assert!(run("solve --topology grid:3x4 --dests 7").is_err()); // no source
        assert!(run("solve --topology grid:3x4 --source 0").is_err()); // no dests
        assert!(run("solve --topology nope --source 0 --dests 1").is_err());
        assert!(run("solve --topology grid:2x2 --source 0 --dests 3 --sfc 0").is_err());
        assert!(run("solve --topology grid:2x2 --source 0 --dests 3 --strategy magic").is_err());
    }

    #[test]
    fn stats_flag_prints_statistics() {
        let out = run("solve --topology grid:3x4 --source 0 --dests 7,11 --sfc 2 --stats").unwrap();
        assert!(out.contains("stats      :"), "{out}");
        assert!(out.contains("instances:"));
        assert!(out.contains("hops"));
        assert!(out.contains("segments"));
    }

    #[test]
    fn batch_runs_a_jsonl_stream_and_reports_stats() {
        let dir = std::env::temp_dir().join("sft_cli_batch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tasks.jsonl");
        std::fs::write(
            &file,
            "# demo\n\
             {\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
             {\"source\": 0, \"dests\": [7, 11], \"sfc\": [0, 1]}\n\
             {\"source\": 3, \"dests\": [8], \"sfc\": [2]}\n\
             not json at all\n",
        )
        .unwrap();
        for mode in ["sequential", "independent"] {
            let out = run(&format!(
                "batch --topology grid:3x4 --tasks {} --mode {mode}",
                file.display()
            ))
            .unwrap();
            assert!(out.contains("task line   2: cost"), "{mode}: {out}");
            assert!(out.contains("task line   5: bad line:"), "{mode}: {out}");
            assert!(out.contains("tasks served   : 3"), "{mode}: {out}");
            assert!(out.contains("apsp builds    : 1"), "{mode}: {out}");
            // The duplicate task guarantees Steiner-cache hits.
            assert!(!out.contains("hit rate 0.0%"), "{mode}: {out}");
        }
        // Sequential mode commits, so the repeated task pays no setup.
        let seq = run(&format!(
            "batch --topology grid:3x4 --tasks {}",
            file.display()
        ))
        .unwrap();
        assert!(seq.contains("commits        : 3"), "{seq}");
        // A capacity-1 cache still serves the stream; evictions show up.
        let capped = run(&format!(
            "batch --topology grid:3x4 --tasks {} --cache-cap 1",
            file.display()
        ))
        .unwrap();
        assert!(capped.contains("tasks served   : 3"), "{capped}");
        assert!(!capped.contains("0 evictions"), "{capped}");
        assert!(run(&format!(
            "batch --topology grid:3x4 --tasks {} --cache-cap lots",
            file.display()
        ))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_rejects_bad_flags() {
        assert!(run("batch --topology grid:3x4").is_err()); // no --tasks
        assert!(run("batch --topology grid:3x4 --tasks /nonexistent.jsonl").is_err());
        let dir = std::env::temp_dir().join("sft_cli_batch_flags");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.jsonl");
        std::fs::write(&file, "{\"source\": 0, \"dests\": [3], \"sfc\": [0]}\n").unwrap();
        assert!(run(&format!(
            "batch --topology grid:2x2 --tasks {} --mode warp",
            file.display()
        ))
        .is_err());
        assert!(run(&format!(
            "batch --topology grid:2x2 --tasks {} --strategy rsa",
            file.display()
        ))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dot_exports_write_files() {
        let dir = std::env::temp_dir().join("sft_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dot = dir.join("emb.dot");
        let sft = dir.join("sft.dot");
        let out = run(&format!(
            "solve --topology grid:3x3 --source 0 --dests 8 --sfc 1 --dot {} --sft-dot {}",
            dot.display(),
            sft.display()
        ))
        .unwrap();
        assert!(out.contains("dot        : wrote"));
        assert!(std::fs::read_to_string(&dot)
            .unwrap()
            .starts_with("graph embedding"));
        assert!(std::fs::read_to_string(&sft)
            .unwrap()
            .starts_with("digraph sft"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
