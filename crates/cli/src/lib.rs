//! Implementation of the `sft` command-line tool.
//!
//! Subcommands:
//!
//! * `sft info --topology <spec>` — topology statistics;
//! * `sft solve --topology <spec> --source <n> --dests <a,b,c> --sfc <k>`
//!   — run the two-stage embedding and print the result (optionally
//!   exporting DOT renderings);
//! * `sft exact …` — additionally solve the ILP exactly and report the
//!   approximation ratio;
//! * `sft batch --topology <spec> --tasks <file.jsonl>` — run a JSONL task
//!   stream through a long-running [`sft_service::EmbedService`] (one
//!   shared network, APSP built once, persistent Steiner cache) and print
//!   one versioned protocol response line per task plus service
//!   statistics;
//! * `sft serve --topology <spec>` — the same protocol streamed over
//!   stdin (answers as lines arrive, commit semantics), or with
//!   `--listen <addr>` served over TCP / a Unix socket with a bounded
//!   worker pool and capacity-aware admission control;
//! * `sft client --connect <addr> --tasks <file.jsonl>` — drive a running
//!   server and print its responses ordered by id;
//! * `sft workload --topology <spec>` — generate an arrival/departure
//!   session stream (Poisson arrivals, exponential holding times) as
//!   protocol JSONL: commit-mode embeds paired with `release` ops, ready
//!   to pipe into `sft serve` or `sft client`.
//!
//! Argument parsing is hand-rolled (the project's dependency set is
//! deliberately tiny); see [`args`] for the grammar and [`run`] for the
//! dispatcher. The library layer returns strings so it is fully testable
//! without spawning processes.

pub mod args;
pub mod commands;
pub mod topology_spec;

pub use args::{Args, ParseError};

/// Runs the CLI on pre-split arguments (without the program name) and
/// returns the output to print.
///
/// # Errors
///
/// A human-readable message (usage errors, solve failures).
pub fn run(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv).map_err(|e| format!("{e}\n\n{}", args::USAGE))?;
    match args.command.as_str() {
        "info" => commands::info(&args).map_err(|e| e.to_string()),
        "solve" => commands::solve(&args).map_err(|e| e.to_string()),
        "exact" => commands::exact(&args).map_err(|e| e.to_string()),
        "batch" => commands::batch(&args).map_err(|e| e.to_string()),
        "serve" => commands::serve(&args).map_err(|e| e.to_string()),
        "client" => commands::client(&args).map_err(|e| e.to_string()),
        "workload" => commands::workload(&args).map_err(|e| e.to_string()),
        "help" => Ok(args::USAGE.to_string()),
        other => Err(format!("unknown subcommand `{other}`\n\n{}", args::USAGE)),
    }
}
