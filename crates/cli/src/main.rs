//! The `sft` binary: thin wrapper over [`sft_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match sft_cli::run(&argv) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
