//! Parsing of `--topology` specifications into graphs.

use crate::args::ParseError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_graph::{generate, Graph, NodeId};
use sft_topology::{abilene, palmetto};

/// Builds a graph from a topology spec string.
///
/// Accepted forms: `palmetto`, `palmetto:<n>`, `er:<n>`, `geo:<n>`,
/// `grid:<r>x<c>`, `fat-tree:<k>`, `waxman:<n>[:seed][:bw][:lat]`.
///
/// # Errors
///
/// [`ParseError`] for malformed specs or generation failures.
pub fn build(spec: &str, seed: u64) -> Result<Graph, ParseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    if spec == "palmetto" {
        return Ok(palmetto::graph());
    }
    if spec == "abilene" {
        return Ok(abilene::graph());
    }
    if let Some(n) = spec.strip_prefix("palmetto:") {
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        if !(1..=palmetto::NODE_COUNT).contains(&n) {
            return Err(ParseError(format!(
                "palmetto prefix must be 1..={} (got {n})",
                palmetto::NODE_COUNT
            )));
        }
        // `palmetto::reduced_graph` panics on a disconnected prefix, so
        // build the induced subgraph here and report the failure instead.
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let g = palmetto::graph()
            .induced_subgraph(&nodes)
            .map_err(|e| ParseError(format!("cannot reduce palmetto: {e}")))?;
        if !g.is_connected() {
            return Err(ParseError(format!(
                "palmetto:{n} is disconnected; pick a larger prefix"
            )));
        }
        return Ok(g);
    }
    if let Some(n) = spec.strip_prefix("er:") {
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        let p = (1.2 * (n.max(2) as f64).ln() / n.max(2) as f64).min(1.0);
        return generate::euclidean_er(n, p, 100.0, &mut rng)
            .map(|t| t.graph)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(n) = spec.strip_prefix("geo:") {
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        return generate::random_geometric(n, 22.0, 100.0, &mut rng)
            .map(|t| t.graph)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(dims) = spec.strip_prefix("grid:") {
        let (r, c) = dims
            .split_once('x')
            .ok_or_else(|| ParseError(format!("grid spec `{spec}` needs <r>x<c>")))?;
        let r: usize = r
            .parse()
            .map_err(|_| ParseError(format!("bad rows in `{spec}`")))?;
        let c: usize = c
            .parse()
            .map_err(|_| ParseError(format!("bad cols in `{spec}`")))?;
        return generate::grid(r, c, 1.0)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(k) = spec.strip_prefix("fat-tree:") {
        let k: usize = k
            .parse()
            .map_err(|_| ParseError(format!("bad k in `{spec}`")))?;
        return generate::fat_tree(k, 1.0)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(rest) = spec.strip_prefix("waxman:") {
        // `waxman:<n>` seeds from --seed; `waxman:<n>:<seed>` embeds the
        // seed in the spec so a topology string alone pins the instance;
        // `waxman:<n>:<seed>:<bw>` additionally gives every link a
        // uniform bandwidth capacity, and `waxman:<n>:<seed>:<bw>:<lat>`
        // a uniform propagation latency, pinning the QoS instance.
        let mut parts = rest.splitn(4, ':');
        let n = parts.next().unwrap_or("");
        let embedded = parts.next();
        let bandwidth = parts.next();
        let latency = parts.next();
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        if let Some(s) = embedded {
            let s: u64 = s
                .parse()
                .map_err(|_| ParseError(format!("bad seed in `{spec}`")))?;
            rng = StdRng::seed_from_u64(s);
        }
        let bandwidth: Option<f64> = bandwidth
            .map(|b| {
                b.parse::<f64>()
                    .ok()
                    .filter(|b| b.is_finite() && *b > 0.0)
                    .ok_or_else(|| ParseError(format!("bad link bandwidth in `{spec}`")))
            })
            .transpose()?;
        let latency: Option<f64> = latency
            .map(|l| {
                l.parse::<f64>()
                    .ok()
                    .filter(|l| l.is_finite() && *l > 0.0)
                    .ok_or_else(|| ParseError(format!("bad link latency in `{spec}`")))
            })
            .transpose()?;
        // Density defaults tuned for scale: beta fixed at the customary
        // 0.4, alpha chosen so the expected degree (~4*pi*alpha^2*beta*n
        // for locality-dominated alpha) tracks 2*ln(n) — enough that the
        // graph is almost surely connected before augmentation, while
        // edges stay O(n log n) instead of O(n^2).
        let beta = 0.4;
        let degree = 2.0 * (n.max(2) as f64).ln();
        let alpha = (degree / (4.0 * std::f64::consts::PI * beta * n.max(1) as f64)).sqrt();
        let mut graph = generate::waxman(n, alpha, beta, 100.0, &mut rng)
            .map(|t| t.graph)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")))?;
        if let Some(bw) = bandwidth {
            apply_uniform_bandwidth(&mut graph, bw)?;
        }
        if let Some(lat) = latency {
            apply_uniform_latency(&mut graph, lat)?;
        }
        return Ok(graph);
    }
    Err(ParseError(format!(
        "unknown topology `{spec}` (try palmetto, palmetto:<n>, abilene, er:<n>, geo:<n>, grid:<r>x<c>, fat-tree:<k>, waxman:<n>[:seed][:bw][:lat])"
    )))
}

/// Gives every edge of `graph` the same bandwidth capacity — the
/// `--link-bw` flag and the `waxman:<n>:<seed>:<bw>` spec suffix both
/// funnel through here.
///
/// # Errors
///
/// [`ParseError`] when the bandwidth is not a positive finite number.
pub fn apply_uniform_bandwidth(graph: &mut Graph, bandwidth: f64) -> Result<(), ParseError> {
    if !bandwidth.is_finite() || bandwidth <= 0.0 {
        return Err(ParseError(format!(
            "link bandwidth must be positive and finite (got {bandwidth})"
        )));
    }
    let edges: Vec<_> = graph.edge_ids().collect();
    for e in edges {
        graph
            .set_edge_capacity(e, Some(bandwidth))
            .map_err(|e| ParseError(e.to_string()))?;
    }
    Ok(())
}

/// Gives every edge of `graph` the same propagation latency — the
/// `--link-latency` flag and the `waxman:<n>:<seed>:<bw>:<lat>` spec
/// suffix both funnel through here. Without it, delay math falls back
/// to edge weights (delay == cost).
///
/// # Errors
///
/// [`ParseError`] when the latency is not a positive finite number.
pub fn apply_uniform_latency(graph: &mut Graph, latency: f64) -> Result<(), ParseError> {
    if !latency.is_finite() || latency <= 0.0 {
        return Err(ParseError(format!(
            "link latency must be positive and finite (got {latency})"
        )));
    }
    let edges: Vec<_> = graph.edge_ids().collect();
    for e in edges {
        graph
            .set_edge_latency(e, Some(latency))
            .map_err(|e| ParseError(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family() {
        assert_eq!(build("palmetto", 0).unwrap().node_count(), 45);
        assert_eq!(build("palmetto:14", 0).unwrap().node_count(), 14);
        assert!(build("palmetto:14", 0).unwrap().is_connected());
        assert_eq!(build("abilene", 0).unwrap().node_count(), 11);
        assert_eq!(build("er:30", 1).unwrap().node_count(), 30);
        assert_eq!(build("geo:25", 2).unwrap().node_count(), 25);
        assert_eq!(build("grid:3x4", 0).unwrap().node_count(), 12);
        assert_eq!(build("fat-tree:4", 0).unwrap().node_count(), 36);
        assert_eq!(build("waxman:40", 1).unwrap().node_count(), 40);
        assert!(build("waxman:40", 1).unwrap().is_connected());
    }

    #[test]
    fn er_is_seed_deterministic() {
        let a = build("er:20", 5).unwrap();
        let b = build("er:20", 5).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        let c = build("er:20", 6).unwrap();
        // Different seeds essentially never coincide exactly.
        assert!(
            a.edge_count() != c.edge_count() || {
                let aw: f64 = a.total_weight();
                let cw: f64 = c.total_weight();
                (aw - cw).abs() > 1e-9
            }
        );
    }

    #[test]
    fn waxman_embedded_seed_overrides_the_seed_flag() {
        let a = build("waxman:30:7", 0).unwrap();
        let b = build("waxman:30:7", 99).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        assert!((a.total_weight() - b.total_weight()).abs() < 1e-12);
        // Without an embedded seed, --seed drives the instance.
        let c = build("waxman:30", 7).unwrap();
        assert_eq!(a.edge_count(), c.edge_count());
        assert!((a.total_weight() - c.total_weight()).abs() < 1e-12);
        let d = build("waxman:30", 8).unwrap();
        assert!(
            c.edge_count() != d.edge_count() || (c.total_weight() - d.total_weight()).abs() > 1e-9
        );
    }

    #[test]
    fn waxman_bandwidth_suffix_capacitates_every_link() {
        let plain = build("waxman:30:7", 0).unwrap();
        assert!(!plain.has_edge_capacities());
        let capped = build("waxman:30:7:2.5", 0).unwrap();
        assert_eq!(capped.edge_count(), plain.edge_count());
        assert!((capped.total_weight() - plain.total_weight()).abs() < 1e-12);
        for e in capped.edge_ids() {
            assert_eq!(capped.edge_capacity(e), Some(2.5));
        }
    }

    #[test]
    fn waxman_latency_suffix_stamps_every_link() {
        let plain = build("waxman:30:7:2.5", 0).unwrap();
        assert!(!plain.has_edge_latencies());
        let qos = build("waxman:30:7:2.5:0.8", 0).unwrap();
        assert_eq!(qos.edge_count(), plain.edge_count());
        assert!((qos.total_weight() - plain.total_weight()).abs() < 1e-12);
        for e in qos.edge_ids() {
            assert_eq!(qos.edge_capacity(e), Some(2.5));
            assert_eq!(qos.edge_latency(e), Some(0.8));
        }
    }

    #[test]
    fn uniform_latency_helper_validates() {
        let mut g = build("grid:2x2", 0).unwrap();
        assert!(apply_uniform_latency(&mut g, 0.0).is_err());
        assert!(apply_uniform_latency(&mut g, -1.0).is_err());
        assert!(apply_uniform_latency(&mut g, f64::NAN).is_err());
        assert!(!g.has_edge_latencies(), "failed applies leave no latencies");
        apply_uniform_latency(&mut g, 0.5).unwrap();
        assert!(g.edge_ids().all(|e| g.edge_latency(e) == Some(0.5)));
    }

    #[test]
    fn uniform_bandwidth_helper_validates() {
        let mut g = build("grid:2x2", 0).unwrap();
        assert!(apply_uniform_bandwidth(&mut g, 0.0).is_err());
        assert!(apply_uniform_bandwidth(&mut g, -1.0).is_err());
        assert!(apply_uniform_bandwidth(&mut g, f64::INFINITY).is_err());
        assert!(
            !g.has_edge_capacities(),
            "failed applies leave no capacities"
        );
        apply_uniform_bandwidth(&mut g, 4.0).unwrap();
        assert!(g.edge_ids().all(|e| g.edge_capacity(e) == Some(4.0)));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "er:",
            "er:x",
            "grid:3",
            "grid:ax2",
            "fat-tree:three",
            "mesh:9",
            "palmetto:",
            "palmetto:0",
            "palmetto:46",
            "waxman:",
            "waxman:x",
            "waxman:0",
            "waxman:10:x",
            "waxman:10:1:x",
            "waxman:10:1:0",
            "waxman:10:1:-2",
            "waxman:10:1:2:x",
            "waxman:10:1:2:0",
            "waxman:10:1:2:-0.5",
        ] {
            assert!(build(bad, 0).is_err(), "`{bad}` should fail");
        }
    }
}
