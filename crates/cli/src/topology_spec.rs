//! Parsing of `--topology` specifications into graphs.

use crate::args::ParseError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_graph::{generate, Graph, NodeId};
use sft_topology::{abilene, palmetto};

/// Builds a graph from a topology spec string.
///
/// Accepted forms: `palmetto`, `palmetto:<n>`, `er:<n>`, `geo:<n>`,
/// `grid:<r>x<c>`, `fat-tree:<k>`, `waxman:<n>[:seed]`.
///
/// # Errors
///
/// [`ParseError`] for malformed specs or generation failures.
pub fn build(spec: &str, seed: u64) -> Result<Graph, ParseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    if spec == "palmetto" {
        return Ok(palmetto::graph());
    }
    if spec == "abilene" {
        return Ok(abilene::graph());
    }
    if let Some(n) = spec.strip_prefix("palmetto:") {
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        if !(1..=palmetto::NODE_COUNT).contains(&n) {
            return Err(ParseError(format!(
                "palmetto prefix must be 1..={} (got {n})",
                palmetto::NODE_COUNT
            )));
        }
        // `palmetto::reduced_graph` panics on a disconnected prefix, so
        // build the induced subgraph here and report the failure instead.
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let g = palmetto::graph()
            .induced_subgraph(&nodes)
            .map_err(|e| ParseError(format!("cannot reduce palmetto: {e}")))?;
        if !g.is_connected() {
            return Err(ParseError(format!(
                "palmetto:{n} is disconnected; pick a larger prefix"
            )));
        }
        return Ok(g);
    }
    if let Some(n) = spec.strip_prefix("er:") {
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        let p = (1.2 * (n.max(2) as f64).ln() / n.max(2) as f64).min(1.0);
        return generate::euclidean_er(n, p, 100.0, &mut rng)
            .map(|t| t.graph)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(n) = spec.strip_prefix("geo:") {
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        return generate::random_geometric(n, 22.0, 100.0, &mut rng)
            .map(|t| t.graph)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(dims) = spec.strip_prefix("grid:") {
        let (r, c) = dims
            .split_once('x')
            .ok_or_else(|| ParseError(format!("grid spec `{spec}` needs <r>x<c>")))?;
        let r: usize = r
            .parse()
            .map_err(|_| ParseError(format!("bad rows in `{spec}`")))?;
        let c: usize = c
            .parse()
            .map_err(|_| ParseError(format!("bad cols in `{spec}`")))?;
        return generate::grid(r, c, 1.0)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(k) = spec.strip_prefix("fat-tree:") {
        let k: usize = k
            .parse()
            .map_err(|_| ParseError(format!("bad k in `{spec}`")))?;
        return generate::fat_tree(k, 1.0)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    if let Some(rest) = spec.strip_prefix("waxman:") {
        // `waxman:<n>` seeds from --seed; `waxman:<n>:<seed>` embeds the
        // seed in the spec so a topology string alone pins the instance.
        let (n, embedded) = match rest.split_once(':') {
            Some((n, s)) => (n, Some(s)),
            None => (rest, None),
        };
        let n: usize = n
            .parse()
            .map_err(|_| ParseError(format!("bad node count in `{spec}`")))?;
        if let Some(s) = embedded {
            let s: u64 = s
                .parse()
                .map_err(|_| ParseError(format!("bad seed in `{spec}`")))?;
            rng = StdRng::seed_from_u64(s);
        }
        // Density defaults tuned for scale: beta fixed at the customary
        // 0.4, alpha chosen so the expected degree (~4*pi*alpha^2*beta*n
        // for locality-dominated alpha) tracks 2*ln(n) — enough that the
        // graph is almost surely connected before augmentation, while
        // edges stay O(n log n) instead of O(n^2).
        let beta = 0.4;
        let degree = 2.0 * (n.max(2) as f64).ln();
        let alpha = (degree / (4.0 * std::f64::consts::PI * beta * n.max(1) as f64)).sqrt();
        return generate::waxman(n, alpha, beta, 100.0, &mut rng)
            .map(|t| t.graph)
            .map_err(|e| ParseError(format!("cannot generate `{spec}`: {e}")));
    }
    Err(ParseError(format!(
        "unknown topology `{spec}` (try palmetto, palmetto:<n>, abilene, er:<n>, geo:<n>, grid:<r>x<c>, fat-tree:<k>, waxman:<n>[:seed])"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family() {
        assert_eq!(build("palmetto", 0).unwrap().node_count(), 45);
        assert_eq!(build("palmetto:14", 0).unwrap().node_count(), 14);
        assert!(build("palmetto:14", 0).unwrap().is_connected());
        assert_eq!(build("abilene", 0).unwrap().node_count(), 11);
        assert_eq!(build("er:30", 1).unwrap().node_count(), 30);
        assert_eq!(build("geo:25", 2).unwrap().node_count(), 25);
        assert_eq!(build("grid:3x4", 0).unwrap().node_count(), 12);
        assert_eq!(build("fat-tree:4", 0).unwrap().node_count(), 36);
        assert_eq!(build("waxman:40", 1).unwrap().node_count(), 40);
        assert!(build("waxman:40", 1).unwrap().is_connected());
    }

    #[test]
    fn er_is_seed_deterministic() {
        let a = build("er:20", 5).unwrap();
        let b = build("er:20", 5).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        let c = build("er:20", 6).unwrap();
        // Different seeds essentially never coincide exactly.
        assert!(
            a.edge_count() != c.edge_count() || {
                let aw: f64 = a.total_weight();
                let cw: f64 = c.total_weight();
                (aw - cw).abs() > 1e-9
            }
        );
    }

    #[test]
    fn waxman_embedded_seed_overrides_the_seed_flag() {
        let a = build("waxman:30:7", 0).unwrap();
        let b = build("waxman:30:7", 99).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        assert!((a.total_weight() - b.total_weight()).abs() < 1e-12);
        // Without an embedded seed, --seed drives the instance.
        let c = build("waxman:30", 7).unwrap();
        assert_eq!(a.edge_count(), c.edge_count());
        assert!((a.total_weight() - c.total_weight()).abs() < 1e-12);
        let d = build("waxman:30", 8).unwrap();
        assert!(
            c.edge_count() != d.edge_count() || (c.total_weight() - d.total_weight()).abs() > 1e-9
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "er:",
            "er:x",
            "grid:3",
            "grid:ax2",
            "fat-tree:three",
            "mesh:9",
            "palmetto:",
            "palmetto:0",
            "palmetto:46",
            "waxman:",
            "waxman:x",
            "waxman:0",
            "waxman:10:x",
        ] {
            assert!(build(bad, 0).is_err(), "`{bad}` should fail");
        }
    }
}
