//! Bandwidth-free streams are a strict no-op of the resource-model
//! refactor: on an uncapacitated topology, tasks without a `bandwidth`
//! field must produce *byte-identical* output to the pre-refactor
//! service, on both the batch and the socket channel.
//!
//! The anchor is `tests/golden/palmetto_batch_pre.jsonl` — the literal
//! `sft batch --topology palmetto --tasks examples/palmetto_tasks.jsonl`
//! output captured before edges learned capacities. Response lines must
//! match byte-for-byte; of the trailing stats block only the wall-clock
//! latency line may differ.

use sft_core::{DistanceMode, Network, SolveOptions, Strategy, VnfCatalog};
use sft_service::protocol::{self, Request, RequestMode};
use sft_service::{EmbedService, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn golden() -> String {
    std::fs::read_to_string(repo_path("tests/golden/palmetto_batch_pre.jsonl"))
        .expect("golden anchor file")
}

fn golden_responses() -> Vec<String> {
    golden()
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(String::from)
        .collect()
}

/// The exact network `sft batch --topology palmetto` builds: every node a
/// 3.0-capacity server, uniform setup cost 1.0, catalog of 3 types.
fn palmetto_network() -> Network {
    Network::builder(sft_topology::palmetto::graph(), VnfCatalog::uniform(3))
        .distance_mode(DistanceMode::Auto)
        .all_servers(3.0)
        .unwrap()
        .uniform_setup_cost(1.0)
        .unwrap()
        .build()
        .unwrap()
}

#[test]
fn batch_output_is_byte_identical_to_the_pre_refactor_anchor() {
    let tasks = repo_path("examples/palmetto_tasks.jsonl");
    let argv: Vec<String> = [
        "batch",
        "--topology",
        "palmetto",
        "--tasks",
        tasks.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = sft_cli::run(&argv).expect("batch runs");

    let golden = golden();
    let want: Vec<&str> = golden.lines().collect();
    let got: Vec<&str> = out.lines().collect();
    assert_eq!(got.len(), want.len(), "line count drifted:\n{out}");
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w.starts_with("solve latency") {
            assert!(g.starts_with("solve latency"), "line {i}: {g}");
            continue;
        }
        assert_eq!(g, w, "line {i} drifted from the pre-refactor anchor");
    }
    // The refactor's new stats line must NOT appear: palmetto links are
    // uncapacitated, so the legacy render shape is preserved exactly.
    assert!(!out.contains("link util"), "{out}");
}

/// The QoS extension is strictly additive on the wire: replaying the
/// anchor stream with a loose `delay_budget_ms` on every request yields
/// responses that differ from the golden lines *only* by the appended
/// `max_path_delay` field — embeddings, costs, and ids are untouched —
/// and a structurally impossible budget is refused as `delay_infeasible`.
#[test]
fn delay_budget_requests_only_append_the_achieved_delay() {
    let svc = EmbedService::new(
        palmetto_network(),
        Strategy::Msa,
        SolveOptions::default(),
    )
    .unwrap();
    let mut handle = sft_service::serve(svc, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr().unwrap();

    let text = std::fs::read_to_string(repo_path("examples/palmetto_tasks.jsonl")).unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let want = golden_responses();
    let mut got = Vec::new();
    for (lineno, parsed) in protocol::parse_stream(&text) {
        let Ok(Request::Embed(mut req)) = parsed else {
            panic!("the anchor stream is all-embed");
        };
        req.id = req.id.or(Some(lineno as u64));
        req.mode = Some(RequestMode::Commit);
        // Palmetto is latency-free, so delay == cost and any generous
        // budget admits; the embedding must not change.
        req.delay_budget_ms = Some(1e6);
        writeln!(writer, "{}", req.to_json()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        got.push(line.trim().to_string());
    }
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        let stripped = match g.find(",\"max_path_delay\":") {
            Some(at) => format!("{}{}", &g[..at], &g[g.len() - 1..]),
            None => g.clone(),
        };
        assert_eq!(&stripped, w, "more than max_path_delay drifted");
        if w.contains("\"status\":\"ok\"") {
            assert!(g.contains("\"max_path_delay\":"), "budgeted ok lines report the delay: {g}");
        }
    }

    // An impossible budget on the same channel is a structured refusal.
    let mut req = protocol::EmbedRequest::new(0, vec![44], vec![0]);
    req.id = Some(9_999);
    req.mode = Some(RequestMode::Quote);
    req.delay_budget_ms = Some(1e-6);
    writeln!(writer, "{}", req.to_json()).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"code\":\"delay_infeasible\""),
        "tight budgets map onto the taxonomy: {line}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn socket_responses_are_byte_identical_to_the_pre_refactor_anchor() {
    let network = palmetto_network();
    assert!(
        !network.graph().has_edge_capacities(),
        "palmetto stays uncapacitated"
    );
    let svc = EmbedService::new(network, Strategy::Msa, SolveOptions::default()).unwrap();
    let mut handle = sft_service::serve(svc, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr().unwrap();

    let text = std::fs::read_to_string(repo_path("examples/palmetto_tasks.jsonl")).unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let want = golden_responses();
    let mut got = Vec::new();
    for (lineno, parsed) in protocol::parse_stream(&text) {
        let Ok(Request::Embed(mut req)) = parsed else {
            panic!("the anchor stream is all-embed");
        };
        // Lockstep commit-mode requests reproduce sequential-batch
        // semantics exactly: each task commits before the next solves.
        req.id = req.id.or(Some(lineno as u64));
        req.mode = Some(RequestMode::Commit);
        writeln!(writer, "{}", req.to_json()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        got.push(line.trim().to_string());
    }
    handle.shutdown();
    handle.join();
    assert_eq!(got, want, "socket responses drifted from the anchor");
}
