//! High-level entry points: run a full two-stage solve with one call.

use crate::chain::ChainSolution;
use crate::cost::{delivery_cost, CostBreakdown};
use crate::embedding::{DestinationRoute, Embedding};
use crate::network::Network;
use crate::opa;
use crate::task::MulticastTask;
use crate::CoreError;
use rand::Rng;
use sft_graph::{approx_le, CancelToken, EdgeId, Graph, NodeId, Parallelism, TreeCache};

/// Which stage-1 algorithm to run (stage 2 / OPA is shared, §V-A).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's Modified Shortest-path Algorithm (Algorithm 2).
    Msa,
    /// The minimum Set Cover baseline.
    Sca,
    /// The Randomly Selecting baseline (requires an RNG; see
    /// [`solve_with_rng`]).
    Rsa,
}

/// Whether to run the stage-2 optimization.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum StageTwo {
    /// Run OPA (the paper's full two-stage pipeline).
    #[default]
    Opa,
    /// Stop after stage 1 (ablation: chain embedding only).
    Skip,
}

/// Knobs shared by every solve entry point.
///
/// `Default` runs the full two-stage pipeline on all available cores.
/// Every algorithm is bit-deterministic in `parallelism`:
/// [`Parallelism::sequential`] reproduces the single-threaded code path
/// exactly, and larger thread counts return identical results faster.
#[derive(Clone, Debug, Default)]
pub struct SolveOptions {
    /// Whether to run the stage-2 optimization (default: run OPA).
    pub stage_two: StageTwo,
    /// Worker threads for the parallel stages — today the MSA stage-1
    /// candidate sweep (default: available cores).
    pub parallelism: Parallelism,
    /// Cooperative cancellation for mid-solve interruption (deadline
    /// expiry, queue shed, graceful drain). Polled in the MSA stage-1
    /// candidate sweep and inside lazy distance-row computation; a tripped
    /// token makes the solve return [`CoreError::Cancelled`] without
    /// mutating shared state (default: never cancelled).
    pub cancel: Option<CancelToken>,
}

impl SolveOptions {
    /// Options running the given stage-2 choice on all available cores.
    pub fn new(stage_two: StageTwo) -> Self {
        SolveOptions {
            stage_two,
            parallelism: Parallelism::auto(),
            cancel: None,
        }
    }

    /// Returns the options with the thread count replaced.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the options with the cancellation token replaced.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// Result of a complete solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The final embedding.
    pub embedding: Embedding,
    /// Cost breakdown of the final embedding.
    pub cost: CostBreakdown,
    /// Total cost of the stage-1 solution before OPA (equals
    /// `cost.total()` when OPA was skipped or added nothing).
    pub stage1_cost: f64,
    /// The stage-1 chain solution (placement + Steiner tree).
    pub chain: ChainSolution,
    /// Branch instances OPA added, as `(stage, node)` pairs.
    pub added_instances: Vec<(usize, sft_graph::NodeId)>,
    /// The largest source→destination delay of the returned embedding —
    /// `Some` exactly when the task carried a delay budget (and then
    /// guaranteed ≤ budget), `None` for unconstrained tasks.
    pub max_path_delay: Option<f64>,
}

/// Solves a multicast SFT-embedding task with a deterministic strategy
/// ([`Strategy::Msa`] or [`Strategy::Sca`]).
///
/// # Errors
///
/// * [`CoreError::InvalidTask`] if [`Strategy::Rsa`] is requested (it needs
///   an RNG; use [`solve_with_rng`]).
/// * Any stage-1 error ([`CoreError::Infeasible`], id mismatches).
///
/// ```
/// use sft_core::{solve, Strategy, StageTwo};
/// use sft_core::{MulticastTask, Network, Sfc, VnfCatalog, VnfId};
/// use sft_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), sft_core::CoreError> {
/// let mut g = Graph::new(4);
/// for i in 0..3 { g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap(); }
/// let net = Network::builder(g, VnfCatalog::uniform(2))
///     .all_servers(2.0)?
///     .build()?;
/// let task = MulticastTask::new(
///     NodeId(0),
///     vec![NodeId(3)],
///     Sfc::new(vec![VnfId(0), VnfId(1)])?,
/// )?;
/// let result = solve(&net, &task, Strategy::Msa, StageTwo::Opa)?;
/// assert!(result.cost.total() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn solve(
    network: &Network,
    task: &MulticastTask,
    strategy: Strategy,
    stage_two: StageTwo,
) -> Result<SolveResult, CoreError> {
    solve_with_options(network, task, strategy, SolveOptions::new(stage_two))
}

/// [`solve`] with explicit [`SolveOptions`] (stage-2 choice + thread count).
///
/// Tasks with a bandwidth demand are solved on a
/// [`Network::bandwidth_view`] when any link is too saturated to carry
/// them: the solve routes around those links, or returns
/// [`CoreError::Infeasible`] when no bandwidth-feasible tree exists —
/// never an overbooked one. Bandwidth-free tasks take the exact legacy
/// code path.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_options(
    network: &Network,
    task: &MulticastTask,
    strategy: Strategy,
    options: SolveOptions,
) -> Result<SolveResult, CoreError> {
    if let Some(view) = network.bandwidth_view(task.bandwidth())? {
        // The view filters nothing further for the same demand, so this
        // recursion terminates after one level.
        return solve_with_options(&view, task, strategy, options);
    }
    let chain = match strategy {
        Strategy::Msa => crate::msa::stage_one_cancellable(
            network,
            task,
            crate::msa::SteinerMethod::default(),
            options.parallelism,
            options.cancel.as_ref(),
        )?,
        Strategy::Sca => crate::sca::stage_one(network, task)?,
        Strategy::Rsa => {
            return Err(CoreError::InvalidTask {
                reason: "RSA is randomized; call solve_with_rng".into(),
            })
        }
    };
    finish(network, task, chain, options.stage_two)
}

/// [`solve_with_options`] against a persistent, caller-owned Steiner
/// cache — the entry point for long-running services that solve many
/// tasks over one network.
///
/// For [`Strategy::Msa`] the stage-1 sweep reads and populates `cache`
/// instead of a throwaway per-solve map (see
/// [`crate::msa::stage_one_with_cache`] for the validity contract); the
/// other strategies ignore the cache. Results are bit-identical to
/// [`solve_with_options`] for every cache state and thread count.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_cache<C: TreeCache>(
    network: &Network,
    task: &MulticastTask,
    strategy: Strategy,
    options: SolveOptions,
    cache: &C,
) -> Result<SolveResult, CoreError> {
    if let Some(view) = network.bandwidth_view(task.bandwidth())? {
        // The shared cache keys trees by the *original* topology; the
        // filtered view is a different graph and must never read from or
        // write into it, so take the throwaway per-solve cache path.
        return solve_with_options(&view, task, strategy, options);
    }
    let chain = match strategy {
        Strategy::Msa => crate::msa::stage_one_with_cache_cancellable(
            network,
            task,
            crate::msa::SteinerMethod::default(),
            options.parallelism,
            cache,
            options.cancel.as_ref(),
        )?,
        Strategy::Sca => crate::sca::stage_one(network, task)?,
        Strategy::Rsa => {
            return Err(CoreError::InvalidTask {
                reason: "RSA is randomized; call solve_with_rng".into(),
            })
        }
    };
    finish(network, task, chain, options.stage_two)
}

/// Solves with an explicit RNG; required for [`Strategy::Rsa`], accepted
/// (and ignored) for the deterministic strategies so sweeps can treat all
/// three uniformly.
///
/// # Errors
///
/// Any stage-1 error ([`CoreError::Infeasible`], id mismatches).
pub fn solve_with_rng<R: Rng + ?Sized>(
    network: &Network,
    task: &MulticastTask,
    strategy: Strategy,
    stage_two: StageTwo,
    rng: &mut R,
) -> Result<SolveResult, CoreError> {
    solve_with_rng_options(network, task, strategy, SolveOptions::new(stage_two), rng)
}

/// [`solve_with_rng`] with explicit [`SolveOptions`].
///
/// # Errors
///
/// Any stage-1 error ([`CoreError::Infeasible`], id mismatches).
pub fn solve_with_rng_options<R: Rng + ?Sized>(
    network: &Network,
    task: &MulticastTask,
    strategy: Strategy,
    options: SolveOptions,
    rng: &mut R,
) -> Result<SolveResult, CoreError> {
    if let Some(view) = network.bandwidth_view(task.bandwidth())? {
        return solve_with_rng_options(&view, task, strategy, options, rng);
    }
    let chain = match strategy {
        Strategy::Msa => crate::msa::stage_one_cancellable(
            network,
            task,
            crate::msa::SteinerMethod::default(),
            options.parallelism,
            options.cancel.as_ref(),
        )?,
        Strategy::Sca => crate::sca::stage_one(network, task)?,
        Strategy::Rsa => crate::rsa::stage_one(network, task, rng)?,
    };
    finish(network, task, chain, options.stage_two)
}

fn finish(
    network: &Network,
    task: &MulticastTask,
    chain: ChainSolution,
    stage_two: StageTwo,
) -> Result<SolveResult, CoreError> {
    let (embedding, stage1_cost, added_instances) = match stage_two {
        StageTwo::Opa => {
            let out = opa::optimize(network, task, &chain)?;
            (out.embedding, Some(out.initial_cost), out.added_instances)
        }
        StageTwo::Skip => (chain.to_embedding(network, task)?, None, Vec::new()),
    };
    let (embedding, max_path_delay) = match task.delay_budget() {
        None => (embedding, None),
        Some(budget) => {
            let (repaired, delay) = enforce_delay_budget(network, task, embedding, budget)?;
            (repaired, Some(delay))
        }
    };
    let cost = delivery_cost(network, task, &embedding)?;
    Ok(SolveResult {
        stage1_cost: stage1_cost.unwrap_or_else(|| cost.total()),
        embedding,
        cost,
        chain,
        added_instances,
        max_path_delay,
    })
}

/// The λ ladder of the Lagrangian-relaxed repair: each rung reroutes
/// every segment under the composite metric `cost + λ·latency`. λ = 0
/// re-derives the pure min-cost segments; the ladder then trades cost
/// for delay in deterministic steps, and a final latency-only rung
/// serves as the feasibility certificate for the fixed waypoint set.
const LAMBDA_LADDER: &[f64] = &[0.0, 0.25, 1.0, 4.0, 16.0];

/// Sum of effective edge latencies over every segment of `route`.
fn route_delay(graph: &Graph, route: &DestinationRoute) -> Result<f64, CoreError> {
    let mut total = 0.0;
    for seg in route.segments() {
        total += graph.path_latency(seg)?;
    }
    Ok(total)
}

/// Checks every destination route against the delay budget and repairs
/// the violating ones by rerouting their segments between the *fixed*
/// waypoints (source, placed instance nodes, destination) along the λ
/// ladder — instance placements never move, so capacity accounting is
/// untouched. Returns the (possibly rewritten) embedding and its largest
/// route delay, or [`CoreError::DelayInfeasible`] when even the pure
/// min-latency rerouting of some destination exceeds the budget.
fn enforce_delay_budget(
    network: &Network,
    task: &MulticastTask,
    embedding: Embedding,
    budget: f64,
) -> Result<(Embedding, f64), CoreError> {
    let graph = network.graph();
    let mut routes = embedding.routes().to_vec();
    let mut max_delay = 0.0f64;
    for (i, route) in routes.iter_mut().enumerate() {
        let delay = route_delay(graph, route)?;
        if approx_le(delay, budget) {
            max_delay = max_delay.max(delay);
            continue;
        }
        let (repaired, new_delay) = repair_route(graph, task, i, route, budget)?;
        *route = repaired;
        max_delay = max_delay.max(new_delay);
    }
    Ok((Embedding::new(routes), max_delay))
}

/// Reroutes one budget-violating route. Scans the λ ladder in ascending
/// order and returns the first budget-feasible rerouting — λ rungs are
/// ordered by increasing delay pressure, so this picks the cheapest
/// feasible candidate the ladder offers.
fn repair_route(
    graph: &Graph,
    task: &MulticastTask,
    dest_index: usize,
    route: &DestinationRoute,
    budget: f64,
) -> Result<(DestinationRoute, f64), CoreError> {
    let endpoints: Vec<(NodeId, NodeId)> = route
        .segments()
        .iter()
        .map(|seg| {
            let first = *seg.first().expect("route segments are non-empty walks");
            let last = *seg.last().expect("route segments are non-empty walks");
            (first, last)
        })
        .collect();
    for &lambda in LAMBDA_LADDER {
        let candidate = reroute(graph, &endpoints, |e| {
            graph.weight(e) + lambda * graph.effective_latency(e)
        });
        if let Some(candidate) = candidate {
            let delay = route_delay(graph, &candidate)?;
            if approx_le(delay, budget) {
                return Ok((candidate, delay));
            }
        }
    }
    // Latency-only rung: the minimum achievable delay through the fixed
    // waypoints. Failing it is the infeasibility certificate.
    let candidate = reroute(graph, &endpoints, |e| graph.effective_latency(e));
    if let Some(candidate) = candidate {
        let delay = route_delay(graph, &candidate)?;
        if approx_le(delay, budget) {
            return Ok((candidate, delay));
        }
        return Err(CoreError::DelayInfeasible {
            destination: task.destinations()[dest_index].0,
            achieved: delay,
            budget,
        });
    }
    Err(CoreError::Infeasible {
        reason: format!(
            "destination {} became unreachable during delay repair",
            task.destinations()[dest_index]
        ),
    })
}

/// Recomputes every segment of a route as a shortest path under the
/// given per-edge metric, keeping the segment endpoints fixed. `None`
/// when any endpoint pair is disconnected.
fn reroute<F: Fn(EdgeId) -> f64>(
    graph: &Graph,
    endpoints: &[(NodeId, NodeId)],
    weight: F,
) -> Option<DestinationRoute> {
    let mut segments = Vec::with_capacity(endpoints.len());
    for &(a, b) in endpoints {
        let sp = graph.dijkstra_to_with(a, b, &weight);
        segments.push(sp.path_to(b)?);
    }
    Some(DestinationRoute::new(segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sft_graph::{Graph, NodeId};

    fn fixture() -> (Network, MulticastTask) {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(3.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    #[test]
    fn all_strategies_produce_valid_solutions() {
        let (net, task) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        for strat in [Strategy::Msa, Strategy::Sca, Strategy::Rsa] {
            let r = solve_with_rng(&net, &task, strat, StageTwo::Opa, &mut rng).unwrap();
            assert!(is_valid(&net, &task, &r.embedding), "{strat:?}");
            assert!(r.cost.total() <= r.stage1_cost + 1e-9, "{strat:?}");
        }
    }

    #[test]
    fn solve_rejects_rsa_without_rng() {
        let (net, task) = fixture();
        assert!(matches!(
            solve(&net, &task, Strategy::Rsa, StageTwo::Opa),
            Err(CoreError::InvalidTask { .. })
        ));
    }

    #[test]
    fn skipping_stage_two_reports_stage1_cost() {
        let (net, task) = fixture();
        let r = solve(&net, &task, Strategy::Msa, StageTwo::Skip).unwrap();
        assert_eq!(r.stage1_cost, r.cost.total());
        assert!(r.added_instances.is_empty());
    }

    #[test]
    fn bandwidth_demand_routes_around_saturated_links() {
        use sft_graph::EdgeId;
        // Triangle with a narrow direct 0-1 link and a wide detour via 2.
        let mut g = Graph::new(3);
        g.add_edge_with_capacity(NodeId(0), NodeId(1), 1.0, Some(1.0))
            .unwrap();
        g.add_edge_with_capacity(NodeId(0), NodeId(2), 2.0, Some(10.0))
            .unwrap();
        g.add_edge_with_capacity(NodeId(2), NodeId(1), 2.0, Some(10.0))
            .unwrap();
        let mut net = Network::builder(g, VnfCatalog::uniform(1))
            .all_servers(4.0)
            .unwrap()
            .build()
            .unwrap();
        let sfc = Sfc::new(vec![VnfId(0)]).unwrap();
        let task = MulticastTask::new(NodeId(0), vec![NodeId(1)], sfc.clone())
            .unwrap()
            .with_bandwidth(1.0)
            .unwrap();

        // Link is empty: the direct edge carries the session.
        let direct = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        assert_eq!(direct.cost.link, 1.0);
        let delta = net.commit_delta(&task, &direct.embedding);
        assert_eq!(delta.edges(), &[(EdgeId(0), 1.0)]);
        net.apply_delta(&delta).unwrap();

        // Link is now full: the same task must detour via node 2 and its
        // commit must charge the detour edges, not the saturated one.
        let detour = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        assert_eq!(detour.cost.link, 4.0);
        let detour_delta = net.commit_delta(&task, &detour.embedding);
        assert_eq!(detour_delta.edges(), &[(EdgeId(1), 1.0), (EdgeId(2), 1.0)]);
        net.apply_delta(&detour_delta).unwrap();

        // A demand no link can carry is a real infeasibility.
        let too_wide = MulticastTask::new(NodeId(0), vec![NodeId(1)], sfc)
            .unwrap()
            .with_bandwidth(100.0)
            .unwrap();
        assert!(matches!(
            solve(&net, &too_wide, Strategy::Msa, StageTwo::Opa),
            Err(CoreError::Infeasible { .. })
        ));

        // Releasing the first session restores the direct link exactly.
        net.apply_release(&delta).unwrap();
        assert_eq!(net.edge_residual(EdgeId(0)), 1.0);
        let again = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        assert_eq!(again.cost.link, 1.0);
    }

    #[test]
    fn delay_budget_repairs_routes_onto_the_fast_arm() {
        // Diamond 0-1-3 (cheap, slow) / 0-2-3 (pricey, fast), tail 3-4.
        let mut g = Graph::new(5);
        let slow1 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let slow2 = g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        g.set_edge_latency(slow1, Some(5.0)).unwrap();
        g.set_edge_latency(slow2, Some(5.0)).unwrap();
        let net = Network::builder(g, crate::vnf::VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        let base = MulticastTask::new(
            NodeId(0),
            vec![NodeId(4)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();

        // Unconstrained: the slow arm carries the flow, no delay reported.
        let free = solve(&net, &base, Strategy::Msa, StageTwo::Opa).unwrap();
        assert_eq!(free.max_path_delay, None);

        // Budget 6 forces the repair onto the fast arm (delay 2+2+1 = 5).
        let task = base.clone().with_delay_budget(6.0).unwrap();
        let r = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        assert!(is_valid(&net, &task, &r.embedding));
        let delay = r.max_path_delay.unwrap();
        assert!((delay - 5.0).abs() < 1e-9, "delay {delay}");

        // Budget 3 is below the minimum achievable delay: structured error.
        let tight = base.with_delay_budget(3.0).unwrap();
        assert!(matches!(
            solve(&net, &tight, Strategy::Msa, StageTwo::Opa),
            Err(CoreError::DelayInfeasible { .. })
        ));
    }

    #[test]
    fn msa_beats_or_ties_rsa_on_average() {
        let (net, task) = fixture();
        let msa = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        let mut total = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            let rsa = solve_with_rng(&net, &task, Strategy::Rsa, StageTwo::Opa, &mut rng).unwrap();
            total += rsa.cost.total();
        }
        assert!(msa.cost.total() <= total / runs as f64 + 1e-9);
    }
}
