//! Brute-force oracles, used by tests and the evaluation to certify the
//! heuristics' quality on small instances.
//!
//! * [`optimal_chain`] — the cost-optimal *single chain* placement
//!   (exhaustive over `servers^k`), the oracle for Theorem 2 (the expanded
//!   MOD Dijkstra must match it when capacities suffice).
//! * [`optimal_chain_tree`] — the cost-optimal "chain + exact Steiner
//!   tree" solution, an upper-bound oracle for stage-1 outputs.

use crate::chain::{new_instance_usage, ChainSolution};
use crate::cost::delivery_cost;
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::NodeId;

/// Hard cap on `servers^k` enumeration size.
const MAX_ENUMERATION: u128 = 4_000_000;

/// Exhaustively finds the chain placement minimizing
/// `dist(S, v₁) + Σ dist(v_j, v_{j+1}) + Σ setup(l_j, v_j)` subject to
/// capacities (the stage-1 chain objective, before any delivery tree).
///
/// # Errors
///
/// * [`CoreError::Infeasible`] if no capacity-feasible placement exists or
///   the enumeration would exceed the safety cap.
pub fn optimal_chain(
    network: &Network,
    task: &MulticastTask,
) -> Result<(Vec<NodeId>, f64), CoreError> {
    let sfc = task.sfc();
    let k = sfc.len();
    let servers: Vec<NodeId> = network.servers().collect();
    let count = (servers.len() as u128).checked_pow(k as u32);
    if count.is_none_or(|c| c > MAX_ENUMERATION) {
        return Err(CoreError::Infeasible {
            reason: format!(
                "brute force over {}^{k} placements exceeds the oracle cap",
                servers.len()
            ),
        });
    }
    let dist = network.dist();
    let mut best: Option<(f64, Vec<NodeId>)> = None;
    let mut placement = vec![servers[0]; k];
    let mut idx = vec![0usize; k];
    loop {
        for (p, &i) in placement.iter_mut().zip(&idx) {
            *p = servers[i];
        }
        'eval: {
            // Capacity.
            let usage = new_instance_usage(network, sfc, &placement);
            for (&n, &u) in &usage {
                if network.deployed_load(n) + u > network.capacity(n) + 1e-9 {
                    break 'eval;
                }
            }
            // Cost.
            let mut cost = 0.0;
            let mut prev = task.source();
            let mut connected = true;
            for (j, &n) in placement.iter().enumerate() {
                match dist.distance(prev, n) {
                    Some(d) => cost += d,
                    None => {
                        connected = false;
                        break;
                    }
                }
                cost += network.effective_setup_cost(sfc.stage(j + 1), n);
                prev = n;
            }
            if !connected {
                break 'eval;
            }
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, placement.clone()));
            }
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == k {
                let (cost, placement) = best.ok_or_else(|| CoreError::Infeasible {
                    reason: "no capacity-feasible chain placement".into(),
                })?;
                return Ok((placement, cost));
            }
            idx[pos] += 1;
            if idx[pos] < servers.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Exhaustively finds the best "chain + exact Steiner tree" solution by
/// trying every chain placement and hanging an exact Steiner tree off its
/// last node, priced with the canonical cost model.
///
/// Exponential twice over (placements × Steiner subsets): tiny inputs only.
///
/// # Errors
///
/// Same conditions as [`optimal_chain`], plus Steiner-oracle limits.
pub fn optimal_chain_tree(
    network: &Network,
    task: &MulticastTask,
) -> Result<(ChainSolution, f64), CoreError> {
    let sfc = task.sfc();
    let k = sfc.len();
    let servers: Vec<NodeId> = network.servers().collect();
    let count = (servers.len() as u128).checked_pow(k as u32);
    if count.is_none_or(|c| c > 100_000) {
        return Err(CoreError::Infeasible {
            reason: "chain-tree brute force exceeds the oracle cap".into(),
        });
    }
    let mut best: Option<(f64, ChainSolution)> = None;
    let mut idx = vec![0usize; k];
    loop {
        let placement: Vec<NodeId> = idx.iter().map(|&i| servers[i]).collect();
        'eval: {
            let usage = new_instance_usage(network, sfc, &placement);
            for (&n, &u) in &usage {
                if network.deployed_load(n) + u > network.capacity(n) + 1e-9 {
                    break 'eval;
                }
            }
            let w = *placement.last().expect("k >= 1");
            let mut terminals = vec![w];
            terminals.extend_from_slice(task.destinations());
            let Ok(tree) = network.graph().steiner_exact(&terminals) else {
                break 'eval;
            };
            let chain = ChainSolution {
                placement,
                steiner_edges: tree.edges,
            };
            let Ok(emb) = chain.to_embedding(network, task) else {
                break 'eval;
            };
            let Ok(cost) = delivery_cost(network, task, &emb) else {
                break 'eval;
            };
            let total = cost.total();
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                best = Some((total, chain));
            }
        }
        let mut pos = 0;
        loop {
            if pos == k {
                let (cost, chain) = best.ok_or_else(|| CoreError::Infeasible {
                    reason: "no feasible chain-tree solution".into(),
                })?;
                return Ok((chain, cost));
            }
            idx[pos] += 1;
            if idx[pos] < servers.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mod_network::ExpandedMod;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::Graph;

    fn small_net() -> Network {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 2.0).unwrap();
        g.add_edge(NodeId(0), NodeId(4), 3.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.5).unwrap();
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(3.0)
            .unwrap()
            .uniform_setup_cost(1.5)
            .unwrap()
            .build()
            .unwrap()
    }

    fn a_task() -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn theorem2_expanded_mod_matches_brute_force() {
        // With ample capacity, the best expanded-MOD chain over all last
        // nodes must equal the brute-force optimal chain.
        let net = small_net();
        let task = a_task();
        let (brute_placement, brute_cost) = optimal_chain(&net, &task).unwrap();
        let emod = ExpandedMod::build(&net, task.source(), task.sfc()).unwrap();
        let sp = emod.shortest_paths();
        let dijkstra_best = (0..emod.servers().len())
            .filter_map(|row| emod.placement_for(&sp, row).map(|(_, c)| c))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (dijkstra_best - brute_cost).abs() < 1e-9,
            "dijkstra {dijkstra_best} vs brute {brute_cost} (placement {brute_placement:?})"
        );
    }

    #[test]
    fn optimal_chain_respects_capacity() {
        // Capacity 1: the two stages cannot co-locate.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let (placement, _) = optimal_chain(&net, &task).unwrap();
        assert_ne!(placement[0], placement[1]);
    }

    #[test]
    fn chain_tree_is_at_most_stage_one_cost() {
        let net = small_net();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let (_, oracle_cost) = optimal_chain_tree(&net, &task).unwrap();
        let chain = crate::msa::stage_one(&net, &task).unwrap();
        let emb = chain.to_embedding(&net, &task).unwrap();
        let msa_cost = delivery_cost(&net, &task, &emb).unwrap().total();
        assert!(oracle_cost <= msa_cost + 1e-9);
        // MSA's stage 1 uses approximate Steiner trees but is otherwise the
        // same shape; it should stay within the 2x Steiner gap.
        assert!(msa_cost <= 2.0 * oracle_cost + 1e-9);
    }

    #[test]
    fn oracle_caps_guard_against_explosions() {
        let mut g = Graph::new(40);
        for i in 0..39 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(10))
            .all_servers(10.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(39)],
            Sfc::new((0..10).map(VnfId).collect::<Vec<_>>()).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            optimal_chain(&net, &task),
            Err(CoreError::Infeasible { .. })
        ));
        assert!(matches!(
            optimal_chain_tree(&net, &task),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
