//! Chain-shaped solutions (the stage-1 output shared by MSA, SCA and RSA).
//!
//! A [`ChainSolution`] is "an SFC plus a Steiner tree": one server per chain
//! stage and a tree hanging off the last stage that reaches every
//! destination (paper Algorithm 2's output, Theorem 3's feasibility shape).
//! This module also houses the capacity-repair step of §IV-B ("node
//! adjustment") and the conversion into the canonical [`Embedding`].

use crate::embedding::{DestinationRoute, Embedding};
use crate::network::Network;
use crate::task::MulticastTask;
use crate::vnf::{Sfc, VnfId};
use crate::CoreError;
use sft_graph::numeric::exceeds;
use sft_graph::{EdgeId, NodeId, RootedTree};
use std::collections::{BTreeMap, BTreeSet};

/// A stage-1 solution: an embedded chain plus a delivery Steiner tree
/// rooted at the last chain node.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainSolution {
    /// Server hosting each chain stage; `placement[j]` hosts stage `j + 1`.
    pub placement: Vec<NodeId>,
    /// Edges of the Steiner tree connecting `placement.last()` to all
    /// destinations.
    pub steiner_edges: Vec<EdgeId>,
}

impl ChainSolution {
    /// The node hosting the last VNF (the Steiner tree root).
    ///
    /// # Panics
    ///
    /// Panics if the placement is empty (never produced by this crate).
    pub fn last_node(&self) -> NodeId {
        *self.placement.last().expect("non-empty chain placement")
    }

    /// Converts the chain solution into the canonical embedding: every
    /// destination is routed source → stage 1 → … → stage k → (tree path).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Infeasible`] if chain nodes are mutually unreachable
    ///   or a destination is outside the Steiner tree.
    /// * [`CoreError::Graph`] if the Steiner edges do not form a tree
    ///   rooted at the last chain node.
    pub fn to_embedding(
        &self,
        network: &Network,
        task: &MulticastTask,
    ) -> Result<Embedding, CoreError> {
        let dist = network.dist();
        let tree = RootedTree::from_edges(network.graph(), self.last_node(), &self.steiner_edges)?;
        let mut shared: Vec<Vec<NodeId>> = Vec::with_capacity(self.placement.len());
        let mut prev = task.source();
        for &n in &self.placement {
            let path = dist.path(prev, n).ok_or_else(|| CoreError::Infeasible {
                reason: format!("no path between chain nodes {prev} and {n}"),
            })?;
            shared.push(path);
            prev = n;
        }
        let mut routes = Vec::with_capacity(task.destination_count());
        for &d in task.destinations() {
            let delivery = tree
                .path_from_root(d)
                .ok_or_else(|| CoreError::Infeasible {
                    reason: format!("destination {d} not covered by the Steiner tree"),
                })?;
            let mut segments = shared.clone();
            segments.push(delivery);
            routes.push(DestinationRoute::new(segments));
        }
        Ok(Embedding::new(routes))
    }
}

/// Resource usage added by the *new* instances of a chain placement,
/// deduplicated by `(type, node)`.
pub(crate) fn new_instance_usage(
    network: &Network,
    sfc: &Sfc,
    placement: &[NodeId],
) -> BTreeMap<NodeId, f64> {
    let mut seen: BTreeSet<(VnfId, NodeId)> = BTreeSet::new();
    let mut usage: BTreeMap<NodeId, f64> = BTreeMap::new();
    for (j, &n) in placement.iter().enumerate() {
        let f = sfc.stage(j + 1);
        if !network.is_deployed(f, n) && seen.insert((f, n)) {
            *usage.entry(n).or_insert(0.0) += network.catalog().demand(f);
        }
    }
    usage
}

/// The paper's stage-1 "node adjustment": while some chain stage sits on an
/// overloaded node, move it to the feasible server minimizing
/// `dist(prev, v) + dist(v, next) + setup(l_j, v)` (§IV-B).
///
/// Only *new* instances can overload a node (pre-deployed load is validated
/// at network build time), so only they are ever moved.
///
/// # Errors
///
/// [`CoreError::Infeasible`] if some stage has no feasible host at all.
pub(crate) fn repair_capacity(
    network: &Network,
    source: NodeId,
    sfc: &Sfc,
    placement: &mut [NodeId],
) -> Result<(), CoreError> {
    let k = placement.len();
    let dist = network.dist();
    let servers: Vec<NodeId> = network.servers().collect();
    // Each move strictly shrinks the load of an overloaded node and never
    // overloads the target, but repeated types can interact; cap the loop
    // defensively.
    for _round in 0..(2 * k + 2) {
        let usage = new_instance_usage(network, sfc, placement);
        let overloaded = |n: NodeId| {
            exceeds(
                network.deployed_load(n) + usage.get(&n).copied().unwrap_or(0.0),
                network.capacity(n),
            )
        };
        // First stage whose (new) instance sits on an overloaded node.
        let Some(j) = (1..=k).find(|&j| {
            let n = placement[j - 1];
            !network.is_deployed(sfc.stage(j), n) && overloaded(n)
        }) else {
            return Ok(());
        };
        let f = sfc.stage(j);
        let demand = network.catalog().demand(f);
        let prev = if j == 1 { source } else { placement[j - 2] };
        let next = if j < k { Some(placement[j]) } else { None };
        let current = placement[j - 1];

        let mut best: Option<(f64, NodeId)> = None;
        for &v in &servers {
            if v == current {
                continue;
            }
            // Load on v if stage j moves there (deduplicated by type).
            let already_counted = network.is_deployed(f, v)
                || placement
                    .iter()
                    .enumerate()
                    .any(|(i, &n)| i != j - 1 && n == v && sfc.stage(i + 1) == f);
            let extra = if already_counted { 0.0 } else { demand };
            let load = network.deployed_load(v) + usage.get(&v).copied().unwrap_or(0.0) + extra;
            if exceeds(load, network.capacity(v)) {
                continue;
            }
            let Some(d_in) = dist.distance(prev, v) else {
                continue;
            };
            let d_out = match next {
                Some(nx) => match dist.distance(v, nx) {
                    Some(d) => d,
                    None => continue,
                },
                None => 0.0,
            };
            let score = d_in + d_out + network.effective_setup_cost(f, v);
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, v));
            }
        }
        let Some((_, v)) = best else {
            return Err(CoreError::Infeasible {
                reason: format!("no feasible host for chain stage {j} ({})", sfc.stage(j)),
            });
        };
        placement[j - 1] = v;
    }
    // Converged or not, verify the result.
    let usage = new_instance_usage(network, sfc, placement);
    for (n, extra) in usage {
        if exceeds(network.deployed_load(n) + extra, network.capacity(n)) {
            return Err(CoreError::Infeasible {
                reason: format!("capacity repair failed to unload node {n}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfCatalog;
    use sft_graph::Graph;

    /// Line 0-1-2-3-4, all servers.
    fn line_net(capacity: f64) -> Network {
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn task2(net_nodes: &[usize]) -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            net_nodes.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn chain_to_embedding_builds_contiguous_routes() {
        let net = line_net(5.0);
        let task = task2(&[4]);
        // f0@1, f1@2; Steiner tree = path 2-3-4.
        let e23 = net.graph().find_edge(NodeId(2), NodeId(3)).unwrap();
        let e34 = net.graph().find_edge(NodeId(3), NodeId(4)).unwrap();
        let chain = ChainSolution {
            placement: vec![NodeId(1), NodeId(2)],
            steiner_edges: vec![e23, e34],
        };
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(crate::validate::is_valid(&net, &task, &emb));
        let r = &emb.routes()[0];
        assert_eq!(r.segments()[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.segments()[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.segments()[2], vec![NodeId(2), NodeId(3), NodeId(4)]);
        let cost = crate::cost::delivery_cost(&net, &task, &emb).unwrap();
        assert!((cost.total() - (4.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn to_embedding_rejects_uncovered_destination() {
        let net = line_net(5.0);
        let task = task2(&[4]);
        let chain = ChainSolution {
            placement: vec![NodeId(1), NodeId(2)],
            steiner_edges: vec![], // tree = {2} only, misses 4
        };
        assert!(matches!(
            chain.to_embedding(&net, &task),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn repair_moves_overloaded_stage() {
        // Capacity 1 per node: both stages on node 1 overload it.
        let net = line_net(1.0);
        let mut placement = vec![NodeId(1), NodeId(1)];
        repair_capacity(
            &net,
            NodeId(0),
            &Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
            &mut placement,
        )
        .unwrap();
        assert_ne!(placement[0], placement[1], "load must be split");
        let usage = new_instance_usage(
            &net,
            &Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
            &placement,
        );
        for (n, u) in usage {
            assert!(net.deployed_load(n) + u <= net.capacity(n) + 1e-9);
        }
    }

    #[test]
    fn repair_is_noop_when_feasible() {
        let net = line_net(2.0);
        let mut placement = vec![NodeId(1), NodeId(1)];
        let before = placement.clone();
        repair_capacity(
            &net,
            NodeId(0),
            &Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
            &mut placement,
        )
        .unwrap();
        assert_eq!(placement, before);
    }

    #[test]
    fn repair_prefers_cheap_nearby_nodes() {
        // Node 2 overloaded; nodes 1 and 3 both feasible; prev=1 (stage 1
        // at node 1) and next=none; moving to 3 costs dist(2->3 path from
        // prev=2? ...) — just assert feasibility and determinism.
        let net = line_net(1.0);
        let sfc = Sfc::new(vec![VnfId(0), VnfId(1), VnfId(2)]).unwrap();
        let mut placement = vec![NodeId(2), NodeId(2), NodeId(2)];
        repair_capacity(&net, NodeId(0), &sfc, &mut placement).unwrap();
        let distinct: BTreeSet<_> = placement.iter().collect();
        assert_eq!(distinct.len(), 3, "three unit demands need three nodes");
    }

    #[test]
    fn repair_reports_infeasible_networks() {
        // Total capacity 0: nothing fits anywhere.
        let net = line_net(0.0);
        let sfc = Sfc::new(vec![VnfId(0)]).unwrap();
        let mut placement = vec![NodeId(1)];
        assert!(matches!(
            repair_capacity(&net, NodeId(0), &sfc, &mut placement),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn deployed_instances_do_not_trigger_repair() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        // Node 1 capacity 1, fully used by the deployed f0 — but reuse is
        // free, so placing stage 1 (f0) there must NOT be repaired away.
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(1.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(1))
            .unwrap()
            .build()
            .unwrap();
        let sfc = Sfc::new(vec![VnfId(0)]).unwrap();
        let mut placement = vec![NodeId(1)];
        repair_capacity(&net, NodeId(0), &sfc, &mut placement).unwrap();
        assert_eq!(placement, vec![NodeId(1)]);
    }

    #[test]
    fn usage_deduplicates_repeated_types() {
        let net = line_net(5.0);
        let sfc = Sfc::new(vec![VnfId(0), VnfId(0)]).unwrap();
        let usage = new_instance_usage(&net, &sfc, &[NodeId(1), NodeId(1)]);
        assert_eq!(usage.get(&NodeId(1)), Some(&1.0)); // one instance, not two
    }
}
