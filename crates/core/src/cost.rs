//! The traffic-delivery cost model.
//!
//! The paper defines the cost of a multicast solution as "the sum of all
//! VNFs' setup cost and link connection cost over the target network"
//! (§I, footnote 1), with two refinements carried by the ILP:
//!
//! * setup cost is charged only for **new** instances (`ω`), never for
//!   reused pre-deployed ones (`π`, §IV-D);
//! * within one chain segment, an edge shared by several destinations is
//!   charged **once** (the ψ variables of constraint 1f) — that is the
//!   whole point of multicast — while the same edge reused by *different*
//!   segments is charged per segment, because the flow content differs
//!   (§III-C's example: an edge "may be visited multiple times under an SFC
//!   requirement, while the data flow for each visit is different").
//!
//! This module computes that cost from the canonical [`Embedding`]
//! representation, never from algorithm-internal bookkeeping, so every
//! algorithm (MSA, SCA, RSA, OPA, ILP round-trips) is priced by the same
//! yardstick.

use crate::embedding::Embedding;
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::EdgeId;
use std::collections::BTreeSet;

/// A traffic-delivery cost split into its two components.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct CostBreakdown {
    /// Total setup cost of new VNF instances.
    pub setup: f64,
    /// Total link-connection cost over all segments (with per-segment
    /// multicast dedup).
    pub link: f64,
}

impl CostBreakdown {
    /// The total traffic delivery cost.
    pub fn total(&self) -> f64 {
        self.setup + self.link
    }
}

/// Computes the traffic-delivery cost of an embedding.
///
/// The embedding is assumed shape-valid (see [`crate::validate::validate`]);
/// this function still fails gracefully on walks that use non-existent
/// edges.
///
/// # Errors
///
/// [`CoreError::Graph`] if a segment walks across a non-edge.
pub fn delivery_cost(
    network: &Network,
    task: &MulticastTask,
    embedding: &Embedding,
) -> Result<CostBreakdown, CoreError> {
    // fold from +0.0: an empty `Sum` would yield -0.0, which only looks
    // wrong but looks wrong everywhere it is printed.
    let setup = embedding
        .new_instances(network, task)
        .into_iter()
        .map(|(f, n)| network.setup_cost(f, n))
        .fold(0.0, |a, b| a + b);

    let k = task.sfc().len();
    let mut link = 0.0;
    for j in 0..=k {
        // Edges used by segment j across all destinations, deduplicated.
        let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
        for route in embedding.routes() {
            if let Some(seg) = route.segments().get(j) {
                for id in network.graph().path_edges(seg)? {
                    edges.insert(id);
                }
            }
        }
        link += edges
            .iter()
            .map(|&e| network.graph().weight(e))
            .sum::<f64>();
    }

    Ok(CostBreakdown { setup, link })
}

/// Link cost of each chain segment separately (same dedup semantics as
/// [`delivery_cost`]): index `j` is the cost of carrying segment-`j`
/// traffic, `0..=k`. Summing the vector gives `delivery_cost(..).link`.
///
/// # Errors
///
/// [`CoreError::Graph`] if a segment walks across a non-edge.
pub fn segment_link_costs(
    network: &Network,
    task: &MulticastTask,
    embedding: &Embedding,
) -> Result<Vec<f64>, CoreError> {
    let k = task.sfc().len();
    let mut out = Vec::with_capacity(k + 1);
    for j in 0..=k {
        let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
        for route in embedding.routes() {
            if let Some(seg) = route.segments().get(j) {
                for id in network.graph().path_edges(seg)? {
                    edges.insert(id);
                }
            }
        }
        out.push(edges.iter().map(|&e| network.graph().weight(e)).sum());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::DestinationRoute;
    use crate::network::Network;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::{Graph, NodeId};

    /// Star: center 0 connected to 1..=4, weight = leaf index.
    fn star_net(deploy: &[(VnfId, usize)]) -> Network {
        let mut g = Graph::new(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), i as f64).unwrap();
        }
        let mut b = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(5.0)
            .unwrap()
            .uniform_setup_cost(10.0)
            .unwrap();
        for &(f, n) in deploy {
            b = b.deploy(f, NodeId(n)).unwrap();
        }
        b.build().unwrap()
    }

    fn task_two_dests() -> MulticastTask {
        MulticastTask::new(
            NodeId(1),
            vec![NodeId(3), NodeId(4)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn shared_segment_edges_count_once() {
        let net = star_net(&[]);
        let task = task_two_dests();
        // Both destinations: S=1 -> f0@2, then 2 -> 3 and 2 -> 4.
        let r3 = DestinationRoute::new(vec![
            vec![NodeId(1), NodeId(0), NodeId(2)],
            vec![NodeId(2), NodeId(0), NodeId(3)],
        ]);
        let r4 = DestinationRoute::new(vec![
            vec![NodeId(1), NodeId(0), NodeId(2)],
            vec![NodeId(2), NodeId(0), NodeId(4)],
        ]);
        let emb = Embedding::new(vec![r3, r4]);
        let c = delivery_cost(&net, &task, &emb).unwrap();
        // Segment 0: edges (1,0)+(0,2) = 1+2, shared -> 3 once.
        // Segment 1: edges (2,0) shared = 2, plus (0,3)=3 and (0,4)=4 -> 9.
        assert!((c.link - 12.0).abs() < 1e-12, "link {}", c.link);
        assert!((c.setup - 10.0).abs() < 1e-12, "setup {}", c.setup);
        assert!((c.total() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn same_edge_in_different_segments_counts_twice() {
        let net = star_net(&[]);
        let task = MulticastTask::new(
            NodeId(1),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        // S=1 -> f0@3 via 0, then back 3 -> ... wait: deliver to 3 itself.
        // Use: segment0: 1-0-2 (f0@2); segment1: 2-0-3. Edge (0,2) appears
        // in segment 0; edge (2,0) again in segment 1 -> both charged.
        let r = DestinationRoute::new(vec![
            vec![NodeId(1), NodeId(0), NodeId(2)],
            vec![NodeId(2), NodeId(0), NodeId(3)],
        ]);
        let emb = Embedding::new(vec![r]);
        let c = delivery_cost(&net, &task, &emb).unwrap();
        assert!((c.link - (1.0 + 2.0 + 2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn deployed_instances_incur_no_setup() {
        let net = star_net(&[(VnfId(0), 2)]);
        let task = task_two_dests();
        let r3 = DestinationRoute::new(vec![
            vec![NodeId(1), NodeId(0), NodeId(2)],
            vec![NodeId(2), NodeId(0), NodeId(3)],
        ]);
        let emb = Embedding::new(vec![r3.clone(), {
            DestinationRoute::new(vec![
                vec![NodeId(1), NodeId(0), NodeId(2)],
                vec![NodeId(2), NodeId(0), NodeId(4)],
            ])
        }]);
        let c = delivery_cost(&net, &task, &emb).unwrap();
        assert_eq!(c.setup, 0.0);
    }

    #[test]
    fn one_instance_shared_by_destinations_costs_one_setup() {
        let net = star_net(&[]);
        let task = task_two_dests();
        let emb = Embedding::new(vec![
            DestinationRoute::new(vec![
                vec![NodeId(1), NodeId(0), NodeId(2)],
                vec![NodeId(2), NodeId(0), NodeId(3)],
            ]),
            DestinationRoute::new(vec![
                vec![NodeId(1), NodeId(0), NodeId(2)],
                vec![NodeId(2), NodeId(0), NodeId(4)],
            ]),
        ]);
        let c = delivery_cost(&net, &task, &emb).unwrap();
        assert_eq!(c.setup, 10.0); // one new instance, not two
    }

    #[test]
    fn distinct_instances_cost_separate_setups() {
        let net = star_net(&[]);
        let task = task_two_dests();
        // d=3 served by f0@3, d=4 served by f0@4 (SFT-style branching).
        let emb = Embedding::new(vec![
            DestinationRoute::new(vec![vec![NodeId(1), NodeId(0), NodeId(3)], vec![NodeId(3)]]),
            DestinationRoute::new(vec![vec![NodeId(1), NodeId(0), NodeId(4)], vec![NodeId(4)]]),
        ]);
        let c = delivery_cost(&net, &task, &emb).unwrap();
        assert_eq!(c.setup, 20.0);
        // Segment 0: (1,0) shared + (0,3) + (0,4) = 1+3+4; segment 1 empty.
        assert!((c.link - 8.0).abs() < 1e-12);
    }

    #[test]
    fn segment_costs_sum_to_the_link_total() {
        let net = star_net(&[]);
        let task = task_two_dests();
        let emb = Embedding::new(vec![
            DestinationRoute::new(vec![
                vec![NodeId(1), NodeId(0), NodeId(2)],
                vec![NodeId(2), NodeId(0), NodeId(3)],
            ]),
            DestinationRoute::new(vec![
                vec![NodeId(1), NodeId(0), NodeId(2)],
                vec![NodeId(2), NodeId(0), NodeId(4)],
            ]),
        ]);
        let per_segment = segment_link_costs(&net, &task, &emb).unwrap();
        assert_eq!(per_segment.len(), 2);
        assert!((per_segment[0] - 3.0).abs() < 1e-12); // (1,0)+(0,2) shared
        assert!((per_segment[1] - 9.0).abs() < 1e-12); // (2,0)+(0,3)+(0,4)
        let total = delivery_cost(&net, &task, &emb).unwrap();
        let sum: f64 = per_segment.iter().sum();
        assert!((sum - total.link).abs() < 1e-12);
    }

    #[test]
    fn invalid_walk_is_a_graph_error() {
        let net = star_net(&[]);
        let task = task_two_dests();
        let emb = Embedding::new(vec![DestinationRoute::new(vec![
            vec![NodeId(1), NodeId(3)], // 1 and 3 are not adjacent
            vec![NodeId(3)],
        ])]);
        assert!(matches!(
            delivery_cost(&net, &task, &emb),
            Err(CoreError::Graph(_))
        ));
    }
}
