//! Embedding solutions: who serves whom, over which physical paths.
//!
//! An [`Embedding`] is the canonical representation of *any* solution —
//! chain-shaped (stage 1) or tree-shaped (after OPA) — from which cost and
//! feasibility are always derived. Each destination gets a
//! [`DestinationRoute`]: a walk from the source to the destination split
//! into `k + 1` *segments*, where segment `j` carries the flow between the
//! instance serving chain stage `j` and the one serving stage `j + 1`
//! (stage `0` is the source itself, stage `k + 1` is delivery to the
//! destination). Two destinations sharing an edge *within the same segment
//! index* pay for it once (the paper's ψ multicast dedup); the same edge
//! used by different segments is paid per segment, because the flow content
//! differs.

use crate::network::Network;
use crate::task::MulticastTask;
use crate::vnf::VnfId;
use sft_graph::NodeId;
use std::collections::BTreeSet;

/// The route of a single destination: `k + 1` node paths, one per chain
/// segment.
///
/// Invariants (enforced by [`crate::validate::validate`]):
/// * `segments[0]` starts at the task source;
/// * `segments[k]` ends at the destination;
/// * consecutive segments share their junction node, which hosts the
///   corresponding VNF instance;
/// * every segment is a walk in the physical topology (a single-node
///   segment means the two endpoints are co-located).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DestinationRoute {
    segments: Vec<Vec<NodeId>>,
}

impl DestinationRoute {
    /// Creates a route from its segments.
    pub fn new(segments: Vec<Vec<NodeId>>) -> Self {
        DestinationRoute { segments }
    }

    /// The segments, outermost index = chain stage (`0 ..= k`).
    pub fn segments(&self) -> &[Vec<NodeId>] {
        &self.segments
    }

    /// The node hosting the instance that serves chain stage `j`
    /// (1-based), i.e. the junction between segments `j - 1` and `j`.
    /// Returns `None` for out-of-range stages or malformed routes.
    pub fn instance_node(&self, stage: usize) -> Option<NodeId> {
        if stage == 0 || stage >= self.segments.len() {
            return None;
        }
        self.segments[stage - 1].last().copied()
    }
}

/// A complete embedding: one route per task destination, in task order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    routes: Vec<DestinationRoute>,
}

impl Embedding {
    /// Creates an embedding from per-destination routes (aligned with
    /// [`MulticastTask::destinations`]).
    pub fn new(routes: Vec<DestinationRoute>) -> Self {
        Embedding { routes }
    }

    /// The per-destination routes, in task order.
    pub fn routes(&self) -> &[DestinationRoute] {
        &self.routes
    }

    /// All `(stage, node)` instance placements used by any destination.
    /// Stages are 1-based chain positions.
    pub fn instances(&self) -> BTreeSet<(usize, NodeId)> {
        let mut out = BTreeSet::new();
        for r in &self.routes {
            for stage in 1..r.segments.len() {
                if let Some(n) = r.instance_node(stage) {
                    out.insert((stage, n));
                }
            }
        }
        out
    }

    /// All `(vnf_type, node)` pairs used by any destination. Instances are
    /// identified by *type and node*: if the chain repeats a type and both
    /// stages land on the same node, one physical instance serves both.
    pub fn typed_instances(&self, task: &MulticastTask) -> BTreeSet<(VnfId, NodeId)> {
        self.instances()
            .into_iter()
            .filter(|&(stage, _)| stage <= task.sfc().len())
            .map(|(stage, n)| (task.sfc().stage(stage), n))
            .collect()
    }

    /// The `(vnf_type, node)` pairs that require a *new* instance — i.e.
    /// are not pre-deployed in the network. These are what setup cost and
    /// capacity consumption are charged for.
    pub fn new_instances(
        &self,
        network: &Network,
        task: &MulticastTask,
    ) -> BTreeSet<(VnfId, NodeId)> {
        self.typed_instances(task)
            .into_iter()
            .filter(|&(f, n)| !network.is_deployed(f, n))
            .collect()
    }

    /// Nodes hosting an instance for the given 1-based stage.
    pub fn stage_nodes(&self, stage: usize) -> BTreeSet<NodeId> {
        self.instances()
            .into_iter()
            .filter(|&(s, _)| s == stage)
            .map(|(_, n)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::vnf::{Sfc, VnfCatalog};
    use sft_graph::Graph;

    /// Line 0-1-2-3 with servers everywhere, chain (f0 -> f1).
    fn fixture() -> (Network, MulticastTask) {
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(5.0)
            .unwrap()
            .deploy(crate::vnf::VnfId(0), NodeId(1))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    fn simple_route() -> DestinationRoute {
        // S=0 -> f0@1 -> f1@2 -> d=3
        DestinationRoute::new(vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(2), NodeId(3)],
        ])
    }

    #[test]
    fn instance_nodes_are_segment_junctions() {
        let r = simple_route();
        assert_eq!(r.instance_node(1), Some(NodeId(1)));
        assert_eq!(r.instance_node(2), Some(NodeId(2)));
        assert_eq!(r.instance_node(0), None);
        assert_eq!(r.instance_node(3), None);
    }

    #[test]
    fn instances_and_types_are_collected() {
        let (_, task) = fixture();
        let emb = Embedding::new(vec![simple_route()]);
        let inst = emb.instances();
        assert!(inst.contains(&(1, NodeId(1))));
        assert!(inst.contains(&(2, NodeId(2))));
        assert_eq!(inst.len(), 2);
        let typed = emb.typed_instances(&task);
        assert!(typed.contains(&(VnfId(0), NodeId(1))));
        assert!(typed.contains(&(VnfId(1), NodeId(2))));
    }

    #[test]
    fn new_instances_exclude_deployed() {
        let (net, task) = fixture();
        let emb = Embedding::new(vec![simple_route()]);
        let new = emb.new_instances(&net, &task);
        // f0 is pre-deployed on node 1, so only f1@2 is new.
        assert_eq!(new.len(), 1);
        assert!(new.contains(&(VnfId(1), NodeId(2))));
    }

    #[test]
    fn repeated_type_on_same_node_is_one_instance() {
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(0)]).unwrap(),
        )
        .unwrap();
        // Both stages on node 1.
        let r = DestinationRoute::new(vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
        ]);
        let emb = Embedding::new(vec![r]);
        assert_eq!(emb.instances().len(), 2); // two stages...
        assert_eq!(emb.typed_instances(&task).len(), 1); // ...one instance
    }

    #[test]
    fn stage_nodes_aggregate_across_destinations() {
        let r1 = simple_route();
        let r2 = DestinationRoute::new(vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(3)],
        ]);
        let emb = Embedding::new(vec![r1, r2]);
        let stage2 = emb.stage_nodes(2);
        assert!(stage2.contains(&NodeId(2)));
        assert!(stage2.contains(&NodeId(3)));
        assert_eq!(emb.stage_nodes(1), [NodeId(1)].into_iter().collect());
    }
}
