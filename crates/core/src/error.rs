use sft_graph::GraphError;
use sft_lp::LpError;
use std::fmt;

/// Errors produced by the SFT-embedding domain layer and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A node id was out of range for the network.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the network.
        len: usize,
    },
    /// An edge id was out of range for the network.
    EdgeOutOfBounds {
        /// The offending dense edge index.
        edge: usize,
        /// Number of edges in the network.
        len: usize,
    },
    /// A VNF id was out of range for the catalog.
    VnfOutOfBounds {
        /// The offending VNF index.
        vnf: usize,
        /// Number of VNF types in the catalog.
        len: usize,
    },
    /// A node that must host VNFs is not a server node.
    NotAServer {
        /// The offending node index.
        node: usize,
    },
    /// A numeric parameter (cost, capacity, demand) was negative or NaN.
    InvalidParameter {
        /// Which parameter was rejected.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The multicast task was malformed (empty destinations, source listed
    /// as a destination, empty SFC, duplicate destinations).
    InvalidTask {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// Deployments recorded in the network exceed a node's capacity.
    CapacityExceeded {
        /// The overloaded node.
        node: usize,
        /// Available capacity.
        capacity: f64,
        /// Requested load.
        load: f64,
    },
    /// A commit would drive an edge's residual bandwidth negative — the
    /// link analogue of [`CoreError::CapacityExceeded`].
    LinkCapacityExceeded {
        /// The saturated edge (dense edge index).
        edge: usize,
        /// Bandwidth capacity of the edge.
        capacity: f64,
        /// Requested load (already-committed sessions plus this one).
        load: f64,
    },
    /// A release referenced a `(VNF, node)` pair with no live instance —
    /// the inverse-delta analogue of [`CoreError::CapacityExceeded`]:
    /// applying it would drive a reference count below zero.
    InstanceNotDeployed {
        /// The VNF type of the missing instance.
        vnf: usize,
        /// The node the instance was expected on.
        node: usize,
    },
    /// No feasible embedding exists (disconnectivity or exhausted server
    /// capacity).
    Infeasible {
        /// Human-readable description of what could not be satisfied.
        reason: String,
    },
    /// The task's end-to-end delay budget cannot be met for at least one
    /// destination. Distinct from [`CoreError::Infeasible`] so callers can
    /// map it to its own wire code (`delay_infeasible`), and carries the
    /// worst offender for diagnostics.
    DelayInfeasible {
        /// The destination whose route exceeded the budget.
        destination: usize,
        /// The smallest delay any candidate route achieved.
        achieved: f64,
        /// The task's delay budget.
        budget: f64,
    },
    /// A [`sft_graph::CancelToken`] interrupted the solve (deadline
    /// expiry, queue shed, or graceful drain); any partial result was
    /// discarded and no shared state was mutated.
    Cancelled,
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the LP substrate.
    Lp(LpError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfBounds { node, len } => {
                write!(f, "node {node} out of bounds for network of {len} nodes")
            }
            CoreError::EdgeOutOfBounds { edge, len } => {
                write!(f, "edge {edge} out of bounds for network of {len} edges")
            }
            CoreError::VnfOutOfBounds { vnf, len } => {
                write!(f, "VNF {vnf} out of bounds for catalog of {len} types")
            }
            CoreError::NotAServer { node } => {
                write!(f, "node {node} is a switch and cannot host VNF instances")
            }
            CoreError::InvalidParameter { context, value } => {
                write!(f, "invalid {context}: {value}")
            }
            CoreError::InvalidTask { reason } => write!(f, "invalid multicast task: {reason}"),
            CoreError::CapacityExceeded {
                node,
                capacity,
                load,
            } => {
                write!(f, "node {node} capacity {capacity} exceeded by load {load}")
            }
            CoreError::LinkCapacityExceeded {
                edge,
                capacity,
                load,
            } => {
                write!(
                    f,
                    "edge {edge} bandwidth {capacity} exceeded by load {load}"
                )
            }
            CoreError::InstanceNotDeployed { vnf, node } => {
                write!(f, "no live instance of VNF {vnf} on node {node} to release")
            }
            CoreError::Infeasible { reason } => write!(f, "no feasible embedding: {reason}"),
            CoreError::DelayInfeasible {
                destination,
                achieved,
                budget,
            } => {
                write!(
                    f,
                    "delay budget {budget} infeasible: destination {destination} \
                     needs at least {achieved}"
                )
            }
            CoreError::Cancelled => write!(f, "solve cancelled before completion"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Lp(e) => write!(f, "lp error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        match e {
            // Cancellation is a first-class outcome, not a substrate
            // defect: normalize it so callers match one variant.
            GraphError::Cancelled => CoreError::Cancelled,
            other => CoreError::Graph(other),
        }
    }
}

impl From<sft_graph::Cancelled> for CoreError {
    fn from(_: sft_graph::Cancelled) -> Self {
        CoreError::Cancelled
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}
