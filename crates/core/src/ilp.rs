//! The paper's ILP formulation (1a)–(1f) and its exact solution via the
//! `sft-lp` branch-and-bound (the CPLEX substitute, §V-C).
//!
//! Variables (paper §III-C):
//! * `ω_{j,u}` — a new instance of stage `j`'s VNF is placed on `u`
//!   (omitted where the instance is pre-deployed, i.e. `π = 1`);
//! * `ϕ_{d,j,u}` — destination `d`'s flow is served by stage `j` on `u`;
//! * `τ_{d,j,(u,v)}` — arc `(u,v)` carries destination `d`'s segment-`j`
//!   flow;
//! * `ψ_{j,e}` — edge `e` is used by segment `j` (by *any* destination);
//!   relaxed to continuous since the binaries pin it.
//!
//! Constraints: (1b) every destination is served once per stage; the
//! implicit service-requires-instance link `ϕ ≤ π + ω` (the paper leaves it
//! implicit; without it the ILP would place flows through non-existent
//! instances); (1d) capacity; (1e) per-segment flow conservation with the
//! source/destination indicators folded in as constants; (1f) multicast
//! dedup `ψ ≥ τ`, taken per *undirected* edge to match the canonical cost
//! model (see DESIGN.md §5).

use crate::embedding::{DestinationRoute, Embedding};
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::{EdgeId, NodeId};
use sft_lp::{solve_mip, Cmp, MipConfig, MipSolution, MipStatus, Problem, SimplexStats, VarId};
use std::collections::{BTreeMap, VecDeque};

/// A built ILP instance with its variable maps, ready to solve.
#[derive(Clone, Debug)]
pub struct IlpModel {
    problem: Problem,
    k: usize,
    /// Directed arcs: both orientations of every edge.
    arcs: Vec<(NodeId, NodeId, EdgeId)>,
    omega: BTreeMap<(usize, NodeId), VarId>,
    phi: BTreeMap<(usize, usize, NodeId), VarId>,
    tau: BTreeMap<(usize, usize, usize), VarId>,
    psi: BTreeMap<(usize, EdgeId), VarId>,
}

/// Result of an exact (or budget-limited) ILP solve.
#[derive(Clone, Debug)]
pub struct IlpOutcome {
    /// Solver status (Optimal / Feasible / Infeasible / Unknown).
    pub status: MipStatus,
    /// Objective of the best integral solution, if any.
    pub objective: Option<f64>,
    /// Best proven lower bound on the optimum.
    pub bound: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP work accumulated across every node relaxation (iterations,
    /// refactorizations, fill-in).
    pub lp_stats: SimplexStats,
    /// The decoded embedding of the best solution, if any.
    pub embedding: Option<Embedding>,
}

impl IlpModel {
    /// Builds the ILP for a network and task.
    ///
    /// # Errors
    ///
    /// Task/network mismatches, or LP model-building errors.
    pub fn build(network: &Network, task: &MulticastTask) -> Result<Self, CoreError> {
        task.check_against(network)?;
        let sfc = task.sfc();
        let k = sfc.len();
        let nd = task.destination_count();
        let servers: Vec<NodeId> = network.servers().collect();
        let graph = network.graph();

        let mut arcs = Vec::with_capacity(2 * graph.edge_count());
        for id in graph.edge_ids() {
            let e = graph.edge(id);
            arcs.push((e.u, e.v, id));
            arcs.push((e.v, e.u, id));
        }

        let mut p = Problem::minimize();
        let mut omega = BTreeMap::new();
        let mut phi = BTreeMap::new();
        let mut tau = BTreeMap::new();
        let mut psi = BTreeMap::new();

        // Variables.
        for j in 1..=k {
            let f = sfc.stage(j);
            for &s in &servers {
                if !network.is_deployed(f, s) {
                    let v = p.add_binary(format!("w_{j}_{s}"), network.setup_cost(f, s))?;
                    omega.insert((j, s), v);
                }
            }
        }
        for d in 0..nd {
            for j in 1..=k {
                for &s in &servers {
                    let v = p.add_binary(format!("phi_{d}_{j}_{s}"), 0.0)?;
                    phi.insert((d, j, s), v);
                }
            }
        }
        for d in 0..nd {
            for j in 0..=k {
                for (ai, _) in arcs.iter().enumerate() {
                    let v = p.add_binary(format!("tau_{d}_{j}_{ai}"), 0.0)?;
                    tau.insert((d, j, ai), v);
                }
            }
        }
        for j in 0..=k {
            for id in graph.edge_ids() {
                let v = p.add_continuous(
                    format!("psi_{j}_{}", id.index()),
                    0.0,
                    1.0,
                    graph.weight(id),
                )?;
                psi.insert((j, id), v);
            }
        }

        // (1b) every destination is served exactly once per stage.
        for d in 0..nd {
            for j in 1..=k {
                let terms: Vec<(VarId, f64)> =
                    servers.iter().map(|&s| (phi[&(d, j, s)], 1.0)).collect();
                p.add_constraint(format!("assign_{d}_{j}"), terms, Cmp::Eq, 1.0)?;
            }
        }

        // Service requires an instance: ϕ ≤ π + ω.
        for d in 0..nd {
            for j in 1..=k {
                let f = sfc.stage(j);
                for &s in &servers {
                    if network.is_deployed(f, s) {
                        continue; // π = 1 makes the constraint vacuous
                    }
                    p.add_constraint(
                        format!("inst_{d}_{j}_{s}"),
                        [(phi[&(d, j, s)], 1.0), (omega[&(j, s)], -1.0)],
                        Cmp::Le,
                        0.0,
                    )?;
                }
            }
        }

        // (1d) capacity: new instances fit in the residual budget.
        for &s in &servers {
            let terms: Vec<(VarId, f64)> = (1..=k)
                .filter_map(|j| {
                    omega
                        .get(&(j, s))
                        .map(|&v| (v, network.catalog().demand(sfc.stage(j))))
                })
                .collect();
            if !terms.is_empty() {
                p.add_constraint(
                    format!("cap_{s}"),
                    terms,
                    Cmp::Le,
                    network.residual_capacity(s),
                )?;
            }
        }

        // (1e) flow conservation per destination, segment, and node.
        // out(u) - in(u) >= phi_j(u) - phi_{j+1}(u), with stage 0 pinned to
        // the source and stage k+1 to the destination.
        for (d, &dest) in task.destinations().iter().enumerate() {
            for j in 0..=k {
                for u in graph.nodes() {
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    for (ai, &(from, to, _)) in arcs.iter().enumerate() {
                        if from == u {
                            terms.push((tau[&(d, j, ai)], 1.0));
                        } else if to == u {
                            terms.push((tau[&(d, j, ai)], -1.0));
                        }
                    }
                    let mut rhs = 0.0;
                    if j == 0 {
                        if u == task.source() {
                            rhs += 1.0;
                        }
                    } else if let Some(&v) = phi.get(&(d, j, u)) {
                        terms.push((v, -1.0));
                    }
                    if j == k {
                        if u == dest {
                            rhs -= 1.0;
                        }
                    } else if let Some(&v) = phi.get(&(d, j + 1, u)) {
                        terms.push((v, 1.0));
                    }
                    if terms.is_empty() && rhs <= 0.0 {
                        continue; // trivially satisfied
                    }
                    p.add_constraint(format!("flow_{d}_{j}_{u}"), terms, Cmp::Ge, rhs)?;
                }
            }
        }

        // (1f) ψ dominates τ per undirected edge and segment.
        for d in 0..nd {
            for j in 0..=k {
                for (ai, &(_, _, e)) in arcs.iter().enumerate() {
                    p.add_constraint(
                        format!("dedup_{d}_{j}_{ai}"),
                        [(tau[&(d, j, ai)], 1.0), (psi[&(j, e)], -1.0)],
                        Cmp::Le,
                        0.0,
                    )?;
                }
            }
        }

        // Delay rows: each destination's route — all segments together —
        // accumulates at most the task's delay budget of effective edge
        // latency. Prices every selected τ arc by its edge's latency, so
        // the exact solver certifies delay-feasible optima.
        if let Some(budget) = task.delay_budget() {
            for d in 0..nd {
                let terms: Vec<(VarId, f64)> = (0..=k)
                    .flat_map(|j| {
                        arcs.iter().enumerate().map(move |(ai, &(_, _, e))| (j, ai, e))
                    })
                    .map(|(j, ai, e)| (tau[&(d, j, ai)], graph.effective_latency(e)))
                    .collect();
                p.add_constraint(format!("delay_{d}"), terms, Cmp::Le, budget)?;
            }
        }

        Ok(IlpModel {
            problem: p,
            k,
            arcs,
            omega,
            phi,
            tau,
            psi,
        })
    }

    /// The underlying LP problem (exposed for inspection and relaxation
    /// experiments).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Builds a warm-start assignment from a heuristic embedding: stage
    /// nodes come from the embedding, segment flows follow shortest paths
    /// between consecutive stage nodes (always simple, hence always
    /// ILP-feasible).
    ///
    /// Returns `None` if the embedding is malformed for this task.
    pub fn warm_start(
        &self,
        network: &Network,
        task: &MulticastTask,
        embedding: &Embedding,
    ) -> Option<Vec<f64>> {
        let mut values = vec![0.0; self.problem.var_count()];
        let dist = network.dist();
        // Arc lookup by (from, to).
        let arc_index: BTreeMap<(NodeId, NodeId), usize> = self
            .arcs
            .iter()
            .enumerate()
            .map(|(i, &(a, b, _))| ((a, b), i))
            .collect();

        for (d, route) in embedding.routes().iter().enumerate() {
            let mut nodes = vec![task.source()];
            for j in 1..=self.k {
                nodes.push(route.instance_node(j)?);
            }
            nodes.push(*task.destinations().get(d)?);
            for j in 0..=self.k {
                if j >= 1 {
                    let v = self.phi.get(&(d, j, nodes[j]))?;
                    values[v.index()] = 1.0;
                    if let Some(w) = self.omega.get(&(j, nodes[j])) {
                        values[w.index()] = 1.0;
                    }
                }
                let path = dist.path(nodes[j], nodes[j + 1])?;
                for step in path.windows(2) {
                    let ai = arc_index.get(&(step[0], step[1]))?;
                    values[self.tau.get(&(d, j, *ai))?.index()] = 1.0;
                    let e = network.graph().find_edge(step[0], step[1])?;
                    values[self.psi.get(&(j, e))?.index()] = 1.0;
                }
            }
        }
        Some(values)
    }

    /// Solves the ILP with the given branch-and-bound configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::Lp`] on solver resource exhaustion.
    pub fn solve(
        &self,
        network: &Network,
        task: &MulticastTask,
        config: &MipConfig,
    ) -> Result<IlpOutcome, CoreError> {
        let out = solve_mip(&self.problem, config)?;
        let embedding = out
            .best
            .as_ref()
            .map(|best| self.decode(network, task, best))
            .transpose()?;
        Ok(IlpOutcome {
            status: out.status,
            objective: out.best.as_ref().map(|b| b.objective),
            bound: out.best_bound,
            nodes: out.nodes_explored,
            lp_stats: out.lp_stats,
            embedding,
        })
    }

    /// Decodes a variable assignment into the canonical embedding: stage
    /// nodes from `ϕ`, segment walks from the selected `τ` arcs (falling
    /// back to shortest paths when the arc set does not trace cleanly).
    fn decode(
        &self,
        network: &Network,
        task: &MulticastTask,
        best: &MipSolution,
    ) -> Result<Embedding, CoreError> {
        let dist = network.dist();
        let mut routes = Vec::with_capacity(task.destination_count());
        for (d, &dest) in task.destinations().iter().enumerate() {
            let mut nodes = vec![task.source()];
            for j in 1..=self.k {
                // `get` (not `value`) so a stale id from a model/solution
                // mismatch surfaces as Infeasible instead of a panic.
                let s = self
                    .phi
                    .iter()
                    .find(|((dd, jj, _), v)| {
                        *dd == d && *jj == j && best.get(**v).is_some_and(|x| x > 0.5)
                    })
                    .map(|((_, _, s), _)| *s)
                    .ok_or_else(|| CoreError::Infeasible {
                        reason: format!(
                            "ILP solution assigns no stage-{j} server to destination {d}"
                        ),
                    })?;
                nodes.push(s);
            }
            nodes.push(dest);

            let mut segments = Vec::with_capacity(self.k + 1);
            for j in 0..=self.k {
                let selected: Vec<(NodeId, NodeId)> = self
                    .arcs
                    .iter()
                    .enumerate()
                    .filter(|(ai, _)| best.get(self.tau[&(d, j, *ai)]).is_some_and(|x| x > 0.5))
                    .map(|(_, &(a, b, _))| (a, b))
                    .collect();
                let seg = trace_path(&selected, nodes[j], nodes[j + 1])
                    .or_else(|| dist.path(nodes[j], nodes[j + 1]))
                    .ok_or_else(|| CoreError::Infeasible {
                        reason: format!("cannot trace segment {j} for destination {d}"),
                    })?;
                segments.push(seg);
            }
            routes.push(DestinationRoute::new(segments));
        }
        Ok(Embedding::new(routes))
    }
}

/// BFS over a selected arc set from `start` to `goal`.
fn trace_path(arcs: &[(NodeId, NodeId)], start: NodeId, goal: NodeId) -> Option<Vec<NodeId>> {
    if start == goal {
        return Some(vec![start]);
    }
    let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &(a, b) in arcs {
        adj.entry(a).or_default().push(b);
    }
    let mut pred: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        if u == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while cur != start {
                cur = pred[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &v in adj.get(&u).into_iter().flatten() {
            if v != start && !pred.contains_key(&v) {
                pred.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::delivery_cost;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::Graph;

    /// Small diamond network: 0-1-3 / 0-2-3, plus a tail 3-4.
    fn small() -> (Network, MulticastTask) {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(4)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    #[test]
    fn ilp_matches_hand_computed_optimum() {
        let (net, task) = small();
        let model = IlpModel::build(&net, &task).unwrap();
        let out = model.solve(&net, &task, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        // Optimal: f0 anywhere on the short path 0-1-3-4; setup 1 + links 3.
        let obj = out.objective.unwrap();
        assert!((obj - 4.0).abs() < 1e-6, "objective {obj}");
        let emb = out.embedding.unwrap();
        assert!(is_valid(&net, &task, &emb));
        let cost = delivery_cost(&net, &task, &emb).unwrap().total();
        assert!(cost <= obj + 1e-6);
    }

    #[test]
    fn ilp_reuses_deployed_instances() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(1))
            .all_servers(1.0)
            .unwrap()
            .uniform_setup_cost(100.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(1))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        let model = IlpModel::build(&net, &task).unwrap();
        let out = model.solve(&net, &task, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        assert!((out.objective.unwrap() - 2.0).abs() < 1e-6); // links only
    }

    #[test]
    fn ilp_never_beats_its_own_bound_and_heuristic_respects_it() {
        let (net, task) = small();
        let model = IlpModel::build(&net, &task).unwrap();
        let out = model.solve(&net, &task, &MipConfig::default()).unwrap();
        let opt = out.objective.unwrap();
        let heuristic =
            crate::solve(&net, &task, crate::Strategy::Msa, crate::StageTwo::Opa).unwrap();
        assert!(heuristic.cost.total() >= opt - 1e-6);
        assert!(out.bound <= opt + 1e-6);
    }

    #[test]
    fn warm_start_round_trips_through_the_model() {
        let (net, task) = small();
        let heuristic =
            crate::solve(&net, &task, crate::Strategy::Msa, crate::StageTwo::Opa).unwrap();
        let model = IlpModel::build(&net, &task).unwrap();
        let ws = model
            .warm_start(&net, &task, &heuristic.embedding)
            .expect("warm start");
        assert!(
            model.problem().is_feasible(&ws, 1e-6),
            "warm start must satisfy the ILP"
        );
        let cfg = MipConfig {
            warm_start: Some(ws),
            ..MipConfig::default()
        };
        let out = model.solve(&net, &task, &cfg).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
    }

    #[test]
    fn multicast_dedup_shares_segment_edges() {
        // Y-shape: source 0, stem 0-1, arms 1-2 and 1-3. One VNF at 1.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(1))
            .all_servers(1.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(3)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        let model = IlpModel::build(&net, &task).unwrap();
        let out = model.solve(&net, &task, &MipConfig::default()).unwrap();
        // Stem paid once (10), arms 1+1, one setup 1 -> 13. Without dedup
        // it would be 23.
        assert!((out.objective.unwrap() - 13.0).abs() < 1e-6);
    }

    /// The diamond of [`small`] with latencies decoupled from weights:
    /// the cheap arm 0-1-3 is slow (delay 5+5), the expensive arm 0-2-3
    /// fast (delay 2+2, the weight default).
    fn small_with_latencies() -> (Network, MulticastTask) {
        let mut g = Graph::new(5);
        let slow1 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let slow2 = g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        g.set_edge_latency(slow1, Some(5.0)).unwrap();
        g.set_edge_latency(slow2, Some(5.0)).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(4)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    #[test]
    fn delay_rows_steer_the_exact_optimum_onto_the_fast_arm() {
        let (net, task) = small_with_latencies();
        // Unconstrained: the slow-but-cheap arm wins (objective 4).
        let free = IlpModel::build(&net, &task).unwrap();
        let out = free.solve(&net, &task, &MipConfig::default()).unwrap();
        assert!((out.objective.unwrap() - 4.0).abs() < 1e-6);

        // Budget 6 rules out the slow arm (delay 11): the optimum pays
        // for the fast arm — links 2+2+1 plus one setup = 6.
        let task6 = task.clone().with_delay_budget(6.0).unwrap();
        let model = IlpModel::build(&net, &task6).unwrap();
        let out = model.solve(&net, &task6, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        assert!((out.objective.unwrap() - 6.0).abs() < 1e-6);
        let emb = out.embedding.unwrap();
        assert!(is_valid(&net, &task6, &emb));
    }

    #[test]
    fn delay_rows_certify_infeasibility_and_agree_with_the_heuristics() {
        let (net, task) = small_with_latencies();
        // Budget 3 is below the graph's minimum achievable delay (5):
        // both the exact solver and the heuristic pipeline must refuse.
        let tight = task.clone().with_delay_budget(3.0).unwrap();
        let model = IlpModel::build(&net, &tight).unwrap();
        let out = model.solve(&net, &tight, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Infeasible);
        assert!(matches!(
            crate::solve(&net, &tight, crate::Strategy::Msa, crate::StageTwo::Opa),
            Err(CoreError::DelayInfeasible { .. })
        ));

        // Budget 6 is feasible for both, and the heuristic respects it.
        let loose = task.with_delay_budget(6.0).unwrap();
        let h = crate::solve(&net, &loose, crate::Strategy::Msa, crate::StageTwo::Opa).unwrap();
        assert!(is_valid(&net, &loose, &h.embedding));
        assert!(h.max_path_delay.unwrap() <= 6.0 + 1e-9);
    }

    #[test]
    fn infeasible_when_capacity_cannot_host_chain() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(1.0)
            .unwrap()
            .server(NodeId(1), 0.0)
            .unwrap()
            .build()
            .unwrap();
        // Two stages, total demand 2, but only node 0 has capacity 1.
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(1)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let model = IlpModel::build(&net, &task).unwrap();
        let out = model.solve(&net, &task, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Infeasible);
    }
}
