//! Service Function Tree embedding for NFV-enabled multicast.
//!
//! A from-scratch reproduction of *"Optimal Service Function Tree Embedding
//! for NFV Enabled Multicast"* (Ren, Guo, Tang, Lin, Qin — IEEE ICDCS
//! 2018): given a network with server nodes, link-connection costs, VNF
//! setup costs and optionally pre-deployed instances, embed a multicast
//! task `δ = (S, D, ℓ)` so that every destination's flow traverses the
//! service function chain `ℓ` in order, at minimum traffic-delivery cost.
//!
//! # Modules
//!
//! * Domain model: [`network`], [`vnf`], [`task`], [`embedding`] with the
//!   canonical cost model ([`cost`]) and feasibility validator
//!   ([`validate`]).
//! * The paper's two-stage algorithm: the multilevel overlay directed
//!   network ([`mod_network`], Algorithm 1), MSA stage 1 ([`msa`],
//!   Algorithm 2) and OPA stage 2 ([`opa`], Algorithm 3), with the
//!   capacity-repair step shared through [`chain`].
//! * Baselines: set-cover ([`sca`]) and random ([`rsa`]) stage 1.
//! * The exact ILP formulation (1a)–(1f) and its solver bridge ([`ilp`]),
//!   plus brute-force oracles for testing ([`brute`]).
//!
//! # Quickstart
//!
//! ```
//! use sft_core::{solve, Strategy, StageTwo};
//! use sft_core::{MulticastTask, Network, Sfc, VnfCatalog, VnfId};
//! use sft_graph::{Graph, NodeId};
//!
//! # fn main() -> Result<(), sft_core::CoreError> {
//! // A 5-node ring, every node a server with room for 2 VNFs.
//! let mut g = Graph::new(5);
//! for i in 0..5 {
//!     g.add_edge(NodeId(i), NodeId((i + 1) % 5), 1.0).unwrap();
//! }
//! let network = Network::builder(g, VnfCatalog::uniform(3))
//!     .all_servers(2.0)?
//!     .build()?;
//!
//! // Deliver from node 0 to nodes 2 and 3 through (f0 -> f1).
//! let task = MulticastTask::new(
//!     NodeId(0),
//!     vec![NodeId(2), NodeId(3)],
//!     Sfc::new(vec![VnfId(0), VnfId(1)])?,
//! )?;
//!
//! let result = solve(&network, &task, Strategy::Msa, StageTwo::Opa)?;
//! assert!(sft_core::validate::is_valid(&network, &task, &result.embedding));
//! println!("delivery cost: {}", result.cost.total());
//! # Ok(())
//! # }
//! ```

pub mod api;
pub mod brute;
pub mod chain;
pub mod cost;
pub mod embedding;
mod error;
pub mod ilp;
pub mod mod_network;
pub mod msa;
pub mod network;
pub mod opa;
pub mod rsa;
pub mod sca;
pub mod sequential;
pub mod sft_tree;
pub mod stats;
pub mod task;
pub mod validate;
pub mod viz;
pub mod vnf;

pub use api::{
    solve, solve_with_cache, solve_with_options, solve_with_rng, solve_with_rng_options,
    SolveOptions, SolveResult, StageTwo, Strategy,
};
pub use chain::ChainSolution;
pub use cost::{delivery_cost, CostBreakdown};
pub use embedding::{DestinationRoute, Embedding};
pub use error::CoreError;
pub use network::{CommitDelta, Network, NetworkBuilder};
pub use sequential::SequentialEmbedder;
pub use sft_graph::{
    CancelToken, DistanceMode, DistanceProvider, EdgeId, Parallelism, ProviderKind, SteinerCache,
    TreeCache,
};
pub use sft_tree::{SftNode, SftTree};
pub use stats::EmbeddingStats;
pub use task::MulticastTask;
pub use vnf::{Sfc, VnfCatalog, VnfId};
