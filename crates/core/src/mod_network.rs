//! The multilevel overlay directed (MOD) network — paper §IV-A.
//!
//! Algorithm 1 transforms the target network plus an SFC of length `k` into
//! a `k`-column layered directed graph: each column corresponds to one
//! chain stage, each row to one server node. Node weights carry VNF setup
//! costs (zero for pre-deployed instances, §IV-D) and inter-column arc
//! weights carry shortest-path costs of the physical network.
//!
//! For shortest-path search, the MOD network is *expanded* (paper Fig. 4):
//! every overlay node splits into an in-half and an out-half joined by a
//! virtual arc weighted with the setup cost, turning node weights into arc
//! weights. Theorem 2: Dijkstra from the source over the expanded MOD
//! network yields the cost-optimal single-chain embedding ending at any
//! chosen last-column node, assuming sufficient capacities.

use crate::network::Network;
use crate::vnf::Sfc;
use crate::CoreError;
use sft_graph::{DiGraph, NodeId, ShortestPaths};

/// The plain (node-weighted) MOD network of paper Fig. 3 — mostly useful
/// for inspection and tests; the algorithms use [`ExpandedMod`].
#[derive(Clone, Debug)]
pub struct ModNetwork {
    servers: Vec<NodeId>,
    k: usize,
    /// `weights[j][row]` = setup cost of stage `j+1`'s VNF on `servers[row]`
    /// (zero when pre-deployed).
    weights: Vec<Vec<f64>>,
}

impl ModNetwork {
    /// Builds the MOD network for a chain over a target network
    /// (paper Algorithm 1).
    ///
    /// # Errors
    ///
    /// * [`CoreError::VnfOutOfBounds`] if the chain references unknown
    ///   types.
    /// * [`CoreError::Infeasible`] if the network has no server nodes.
    pub fn build(network: &Network, sfc: &Sfc) -> Result<Self, CoreError> {
        for (_, f) in sfc.iter() {
            network.catalog().check(f)?;
        }
        let servers: Vec<NodeId> = network.servers().collect();
        if servers.is_empty() {
            return Err(CoreError::Infeasible {
                reason: "network has no server nodes".into(),
            });
        }
        let weights = sfc
            .iter()
            .map(|(_, f)| {
                servers
                    .iter()
                    .map(|&s| network.effective_setup_cost(f, s))
                    .collect()
            })
            .collect();
        Ok(ModNetwork {
            servers,
            k: sfc.len(),
            weights,
        })
    }

    /// Number of columns (= chain length `k`).
    pub fn columns(&self) -> usize {
        self.k
    }

    /// The server nodes forming the rows, in index order.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Node weight of column `j` (0-based), row `row`: the effective setup
    /// cost of the stage-`j+1` VNF on that server.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn node_weight(&self, j: usize, row: usize) -> f64 {
        self.weights[j][row]
    }
}

/// The expanded MOD network (paper Fig. 4): a layered DAG rooted at the
/// multicast source, ready for Dijkstra.
#[derive(Clone, Debug)]
pub struct ExpandedMod {
    digraph: DiGraph,
    servers: Vec<NodeId>,
    k: usize,
}

impl ExpandedMod {
    /// Builds the expanded MOD network for a task source and chain.
    ///
    /// Arcs:
    /// * source → `in(0, s)` weighted by the physical shortest-path cost
    ///   from the source to server `s`;
    /// * `in(j, s)` → `out(j, s)` weighted by the effective setup cost of
    ///   stage `j+1` on `s`;
    /// * `out(j, s)` → `in(j+1, s')` weighted by the physical shortest-path
    ///   cost `s → s'` (zero when `s = s'`, i.e. consecutive VNFs
    ///   co-located).
    ///
    /// Unreachable pairs produce no arc.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NodeOutOfBounds`] for an invalid source.
    /// * [`CoreError::VnfOutOfBounds`] for unknown chain types.
    /// * [`CoreError::Infeasible`] if the network has no servers.
    pub fn build(network: &Network, source: NodeId, sfc: &Sfc) -> Result<Self, CoreError> {
        network.check_node(source)?;
        let m = ModNetwork::build(network, sfc)?;
        let servers = m.servers().to_vec();
        let ns = servers.len();
        let k = m.columns();

        // Overlay ids: 0 = source; then (j, row) -> in/out pair.
        let mut g = DiGraph::new(1 + 2 * ns * k);
        let node_in = |j: usize, row: usize| NodeId(1 + 2 * (j * ns + row));
        let node_out = |j: usize, row: usize| NodeId(1 + 2 * (j * ns + row) + 1);

        let dist = network.dist();
        for (row, &s) in servers.iter().enumerate() {
            if let Some(d) = dist.distance(source, s) {
                g.add_arc(NodeId(0), node_in(0, row), d)?;
            }
        }
        for j in 0..k {
            for row in 0..ns {
                g.add_arc(node_in(j, row), node_out(j, row), m.node_weight(j, row))?;
            }
        }
        for j in 0..k.saturating_sub(1) {
            for (row_a, &a) in servers.iter().enumerate() {
                for (row_b, &b) in servers.iter().enumerate() {
                    if let Some(d) = dist.distance(a, b) {
                        g.add_arc(node_out(j, row_a), node_in(j + 1, row_b), d)?;
                    }
                }
            }
        }

        Ok(ExpandedMod {
            digraph: g,
            servers,
            k,
        })
    }

    /// The server nodes forming the rows, in index order.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Number of columns (= chain length).
    pub fn columns(&self) -> usize {
        self.k
    }

    /// The underlying overlay digraph (exposed for inspection and tests).
    pub fn digraph(&self) -> &DiGraph {
        &self.digraph
    }

    /// Overlay id of the source node.
    pub fn source_node(&self) -> NodeId {
        NodeId(0)
    }

    /// Overlay id of the in-half of column `j`, row `row`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn in_node(&self, j: usize, row: usize) -> NodeId {
        assert!(
            j < self.k && row < self.servers.len(),
            "overlay index out of range"
        );
        NodeId(1 + 2 * (j * self.servers.len() + row))
    }

    /// Overlay id of the out-half of column `j`, row `row`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn out_node(&self, j: usize, row: usize) -> NodeId {
        assert!(
            j < self.k && row < self.servers.len(),
            "overlay index out of range"
        );
        NodeId(2 + 2 * (j * self.servers.len() + row))
    }

    /// Runs Dijkstra from the overlay source; the result prices every
    /// possible chain embedding prefix.
    pub fn shortest_paths(&self) -> ShortestPaths {
        self.digraph.dijkstra(self.source_node())
    }

    /// Decodes the optimal chain placement ending at last-column row
    /// `row`: the physical server hosting each chain stage, plus the
    /// overlay cost (setup + inter-stage link cost). Returns `None` when
    /// that row is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn placement_for(&self, sp: &ShortestPaths, row: usize) -> Option<(Vec<NodeId>, f64)> {
        let target = self.out_node(self.k - 1, row);
        let cost = sp.distance(target)?;
        let path = sp.path_to(target)?;
        let ns = self.servers.len();
        let mut placement = Vec::with_capacity(self.k);
        for n in path {
            if n.0 == 0 {
                continue; // overlay source
            }
            let idx = n.0 - 1;
            if idx % 2 == 0 {
                // An in-node: records the server hosting its column's stage.
                let row = (idx / 2) % ns;
                placement.push(self.servers[row]);
            }
        }
        debug_assert_eq!(placement.len(), self.k, "one in-node per column");
        Some((placement, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::vnf::{VnfCatalog, VnfId};
    use sft_graph::Graph;

    /// The 4-node example of paper Fig. 3: nodes A,B,C,D with the
    /// deployment-cost matrix of Equation (2).
    fn fig3_network() -> Network {
        let mut g = Graph::new(4);
        // Edges/weights chosen to make every pair reachable.
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap(); // A-B
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap(); // B-C
        g.add_edge(NodeId(2), NodeId(3), 2.0).unwrap(); // C-D
        g.add_edge(NodeId(0), NodeId(3), 4.0).unwrap(); // A-D
        let costs = [
            // f1, f2, f3, f4 per node A,B,C,D (paper Equation 2)
            [1.0, 4.0, 3.0, 4.0],
            [2.0, 4.0, 4.0, 3.0],
            [3.0, 3.0, 3.0, 2.0],
            [2.0, 3.0, 2.0, 3.0],
        ];
        let mut b = Network::builder(g, VnfCatalog::uniform(4))
            .all_servers(4.0)
            .unwrap();
        for (node, row) in costs.iter().enumerate() {
            for (f, &c) in row.iter().enumerate() {
                b = b.setup_cost(VnfId(f), NodeId(node), c).unwrap();
            }
        }
        b.build().unwrap()
    }

    fn chain4() -> Sfc {
        Sfc::new(vec![VnfId(0), VnfId(1), VnfId(2), VnfId(3)]).unwrap()
    }

    #[test]
    fn mod_network_has_k_columns_and_matrix_weights() {
        let net = fig3_network();
        let m = ModNetwork::build(&net, &chain4()).unwrap();
        assert_eq!(m.columns(), 4);
        assert_eq!(m.servers().len(), 4);
        // Column 0 = f1 on A..D: 1, 2, 3, 2 (matrix column f1).
        assert_eq!(m.node_weight(0, 0), 1.0);
        assert_eq!(m.node_weight(0, 1), 2.0);
        assert_eq!(m.node_weight(0, 2), 3.0);
        assert_eq!(m.node_weight(0, 3), 2.0);
        // Column 3 = f4: 4, 3, 2, 3.
        assert_eq!(m.node_weight(3, 0), 4.0);
        assert_eq!(m.node_weight(3, 2), 2.0);
    }

    #[test]
    fn deployment_zeroes_mod_weights() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .uniform_setup_cost(7.0)
            .unwrap()
            .deploy(VnfId(1), NodeId(0))
            .unwrap()
            .build()
            .unwrap();
        let sfc = Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap();
        let m = ModNetwork::build(&net, &sfc).unwrap();
        assert_eq!(m.node_weight(0, 0), 7.0);
        assert_eq!(m.node_weight(1, 0), 0.0); // f1 deployed on node 0
        assert_eq!(m.node_weight(1, 1), 7.0);
    }

    #[test]
    fn expanded_mod_sizes_and_arcs() {
        let net = fig3_network();
        let e = ExpandedMod::build(&net, NodeId(0), &chain4()).unwrap();
        // 1 source + 2 * 4 columns * 4 rows.
        assert_eq!(e.digraph().node_count(), 1 + 2 * 4 * 4);
        // Arcs: 4 source arcs + 16 virtual + 3 * 16 inter-column.
        assert_eq!(e.digraph().arc_count(), 4 + 16 + 3 * 16);
        assert_eq!(e.columns(), 4);
    }

    #[test]
    fn dijkstra_finds_the_optimal_chain_by_brute_force() {
        let net = fig3_network();
        let sfc = chain4();
        let e = ExpandedMod::build(&net, NodeId(0), &sfc).unwrap();
        let sp = e.shortest_paths();

        // Brute force over all 4^4 placements for each last node.
        let dist = net.dist();
        let servers: Vec<NodeId> = net.servers().collect();
        for (row, &t) in servers.iter().enumerate() {
            let mut best = f64::INFINITY;
            for a in 0..4_usize {
                for b in 0..4_usize {
                    for c in 0..4_usize {
                        let placement = [servers[a], servers[b], servers[c], t];
                        let mut cost = dist.distance(NodeId(0), placement[0]).unwrap();
                        for w in placement.windows(2) {
                            cost += dist.distance(w[0], w[1]).unwrap();
                        }
                        for (j, &n) in placement.iter().enumerate() {
                            cost += net.effective_setup_cost(sfc.stage(j + 1), n);
                        }
                        best = best.min(cost);
                    }
                }
            }
            let (placement, cost) = e.placement_for(&sp, row).unwrap();
            assert!((cost - best).abs() < 1e-9, "row {row}: {cost} vs {best}");
            assert_eq!(placement.len(), 4);
            assert_eq!(placement[3], t);
        }
    }

    #[test]
    fn placement_decode_tracks_path_columns() {
        let net = fig3_network();
        let sfc = chain4();
        let e = ExpandedMod::build(&net, NodeId(1), &sfc).unwrap();
        let sp = e.shortest_paths();
        let (placement, cost) = e.placement_for(&sp, 2).unwrap();
        assert_eq!(placement.len(), 4);
        assert_eq!(placement[3], NodeId(2));
        assert!(cost.is_finite());
    }

    #[test]
    fn empty_server_set_is_infeasible() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(1)).build().unwrap();
        assert!(matches!(
            ModNetwork::build(&net, &Sfc::new(vec![VnfId(0)]).unwrap()),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn single_stage_chain_has_no_intercolumn_arcs() {
        let net = fig3_network();
        let sfc = Sfc::new(vec![VnfId(0)]).unwrap();
        let e = ExpandedMod::build(&net, NodeId(0), &sfc).unwrap();
        assert_eq!(e.digraph().arc_count(), 4 + 4);
        let sp = e.shortest_paths();
        // Optimal single-stage placement on A: 0 (distance) + 1 (setup).
        let (p, c) = e.placement_for(&sp, 0).unwrap();
        assert_eq!(p, vec![NodeId(0)]);
        assert!((c - 1.0).abs() < 1e-12);
    }
}
