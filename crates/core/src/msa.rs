//! Stage 1 — the Modified Shortest-path Algorithm (MSA, paper Algorithm 2).
//!
//! For every candidate last-VNF server `v`, MSA:
//!
//! 1. reads the optimal chain embedding ending at `v` off a single Dijkstra
//!    over the expanded MOD network (Theorem 2);
//! 2. repairs capacity violations by moving overloaded stages (§IV-B);
//! 3. builds a Steiner tree connecting the (possibly moved) last VNF node
//!    to all destinations;
//!
//! and keeps the candidate with the smallest canonical delivery cost
//! (Theorem 3: the result is feasible).

use crate::chain::{repair_capacity, ChainSolution};
use crate::mod_network::ExpandedMod;
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::{NodeId, SteinerTree};
use std::collections::BTreeMap;

/// Which Steiner-tree construction stage 1 hangs off the last VNF node.
///
/// The paper uses KMB (its Theorem 5 charges KMB's complexity); the
/// Takahashi–Matsuyama variant is kept as an ablation of that design
/// choice — same approximation class, different tree shapes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SteinerMethod {
    /// Kou–Markowsky–Berman with the pre-computed distance matrix.
    #[default]
    Kmb,
    /// Takahashi–Matsuyama incremental path heuristic.
    Takahashi,
}

/// Runs MSA stage 1, returning the best chain-plus-tree solution.
///
/// # Errors
///
/// * Task/network mismatches ([`CoreError::NodeOutOfBounds`],
///   [`CoreError::VnfOutOfBounds`]).
/// * [`CoreError::Infeasible`] when no candidate yields a feasible
///   embedding (disconnected destinations or exhausted capacity).
pub fn stage_one(network: &Network, task: &MulticastTask) -> Result<ChainSolution, CoreError> {
    stage_one_with(network, task, SteinerMethod::Kmb)
}

/// Runs MSA stage 1 with an explicit Steiner construction (ablation hook).
///
/// # Errors
///
/// Same conditions as [`stage_one`].
pub fn stage_one_with(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
) -> Result<ChainSolution, CoreError> {
    task.check_against(network)?;
    let emod = ExpandedMod::build(network, task.source(), task.sfc())?;
    let sp = emod.shortest_paths();

    // Candidates frequently share their repaired last node; cache the
    // Steiner tree per root. `None` caches roots whose tree failed (e.g.
    // disconnected from some destination).
    let mut steiner_cache: BTreeMap<NodeId, Option<SteinerTree>> = BTreeMap::new();
    let mut best: Option<(f64, ChainSolution)> = None;

    for row in 0..emod.servers().len() {
        let Some((mut placement, _)) = emod.placement_for(&sp, row) else {
            continue;
        };
        if repair_capacity(network, task.source(), task.sfc(), &mut placement).is_err() {
            continue;
        }
        let w = *placement.last().expect("chain is non-empty");
        let tree = steiner_cache
            .entry(w)
            .or_insert_with(|| {
                let mut terminals = vec![w];
                terminals.extend_from_slice(task.destinations());
                match method {
                    SteinerMethod::Kmb => network
                        .graph()
                        .steiner_kmb_with_matrix(network.dist(), &terminals)
                        .ok(),
                    SteinerMethod::Takahashi => network.graph().steiner_takahashi(&terminals).ok(),
                }
            })
            .clone();
        let Some(tree) = tree else { continue };
        // Stage-1 candidate cost has a closed form: every destination
        // shares the chain segments, so per-segment dedup leaves exactly
        // "chain path costs + deduped setups + Steiner tree cost".
        let cost = chain_cost(network, task, &placement) + tree.cost;
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            best = Some((
                cost,
                ChainSolution {
                    placement,
                    steiner_edges: tree.edges,
                },
            ));
        }
    }

    best.map(|(_, c)| c).ok_or_else(|| CoreError::Infeasible {
        reason: "no feasible chain embedding for any last-VNF candidate".into(),
    })
}

/// Cost of an embedded chain alone: inter-stage shortest-path costs plus
/// setup costs of new instances, deduplicated by `(type, node)` — the
/// closed form of the canonical cost restricted to segments `0..k`.
fn chain_cost(network: &Network, task: &MulticastTask, placement: &[NodeId]) -> f64 {
    let dist = network.dist();
    let mut cost = 0.0;
    let mut prev = task.source();
    let mut seen = std::collections::BTreeSet::new();
    for (j, &n) in placement.iter().enumerate() {
        cost += dist
            .distance(prev, n)
            .expect("chain nodes reachable by construction");
        let f = task.sfc().stage(j + 1);
        if !network.is_deployed(f, n) && seen.insert((f, n)) {
            cost += network.setup_cost(f, n);
        }
        prev = n;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::delivery_cost;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::Graph;

    /// A ring of 6 nodes with one chord, all servers.
    fn ring_net(capacity: f64) -> Network {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0 + i as f64 * 0.1)
                .unwrap();
        }
        g.add_edge(NodeId(0), NodeId(3), 2.0).unwrap();
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn a_task() -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn produces_a_feasible_embedding() {
        let net = ring_net(5.0);
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        assert_eq!(chain.placement.len(), 2);
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }

    #[test]
    fn respects_tight_capacities() {
        let net = ring_net(1.0); // one instance per node
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        assert_ne!(chain.placement[0], chain.placement[1]);
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }

    #[test]
    fn reuses_deployed_instances_when_cheaper() {
        // Make new setups expensive; pre-deploy the whole chain along a
        // slightly longer route. MSA should ride the free instances.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap(); // short path side
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1.5).unwrap(); // deployed side
        g.add_edge(NodeId(2), NodeId(3), 1.5).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(3.0)
            .unwrap()
            .uniform_setup_cost(50.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(2))
            .unwrap()
            .deploy(VnfId(1), NodeId(2))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let chain = stage_one(&net, &task).unwrap();
        assert_eq!(chain.placement, vec![NodeId(2), NodeId(2)]);
        let emb = chain.to_embedding(&net, &task).unwrap();
        let cost = delivery_cost(&net, &task, &emb).unwrap();
        assert_eq!(cost.setup, 0.0);
    }

    #[test]
    fn infeasible_when_capacity_is_zero_everywhere() {
        let net = ring_net(0.0);
        let task = a_task();
        assert!(matches!(
            stage_one(&net, &task),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn takahashi_variant_is_feasible_and_comparable() {
        let net = ring_net(5.0);
        let task = a_task();
        let kmb = stage_one_with(&net, &task, SteinerMethod::Kmb).unwrap();
        let tm = stage_one_with(&net, &task, SteinerMethod::Takahashi).unwrap();
        for chain in [&kmb, &tm] {
            let emb = chain.to_embedding(&net, &task).unwrap();
            assert!(is_valid(&net, &task, &emb));
        }
        // Same approximation class: neither may be worse than 2x the other.
        let cost = |c: &ChainSolution| {
            let emb = c.to_embedding(&net, &task).unwrap();
            delivery_cost(&net, &task, &emb).unwrap().total()
        };
        let (a, b) = (cost(&kmb), cost(&tm));
        assert!(a <= 2.0 * b + 1e-9 && b <= 2.0 * a + 1e-9);
    }

    #[test]
    fn single_destination_single_stage() {
        let net = ring_net(2.0);
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(2)]).unwrap(),
        )
        .unwrap();
        let chain = stage_one(&net, &task).unwrap();
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }
}
