//! Stage 1 — the Modified Shortest-path Algorithm (MSA, paper Algorithm 2).
//!
//! For every candidate last-VNF server `v`, MSA:
//!
//! 1. reads the optimal chain embedding ending at `v` off a single Dijkstra
//!    over the expanded MOD network (Theorem 2);
//! 2. repairs capacity violations by moving overloaded stages (§IV-B);
//! 3. builds a Steiner tree connecting the (possibly moved) last VNF node
//!    to all destinations;
//!
//! and keeps the candidate with the smallest canonical delivery cost
//! (Theorem 3: the result is feasible).

use crate::chain::{repair_capacity, ChainSolution};
use crate::mod_network::ExpandedMod;
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::parallel::{run_partitioned, Parallelism};
use sft_graph::{CancelToken, NodeId, ShortestPaths, SteinerCache, SteinerTree, TreeCache};
use std::collections::BTreeMap;

/// Which Steiner-tree construction stage 1 hangs off the last VNF node.
///
/// The paper uses KMB (its Theorem 5 charges KMB's complexity); the
/// Takahashi–Matsuyama variant is kept as an ablation of that design
/// choice — same approximation class, different tree shapes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SteinerMethod {
    /// Kou–Markowsky–Berman with the pre-computed distance matrix.
    #[default]
    Kmb,
    /// Takahashi–Matsuyama incremental path heuristic.
    Takahashi,
}

/// Runs MSA stage 1, returning the best chain-plus-tree solution.
///
/// # Errors
///
/// * Task/network mismatches ([`CoreError::NodeOutOfBounds`],
///   [`CoreError::VnfOutOfBounds`]).
/// * [`CoreError::Infeasible`] when no candidate yields a feasible
///   embedding (disconnected destinations or exhausted capacity).
pub fn stage_one(network: &Network, task: &MulticastTask) -> Result<ChainSolution, CoreError> {
    stage_one_with(network, task, SteinerMethod::Kmb)
}

/// Runs MSA stage 1 with an explicit Steiner construction (ablation hook).
///
/// # Errors
///
/// Same conditions as [`stage_one`].
pub fn stage_one_with(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
) -> Result<ChainSolution, CoreError> {
    stage_one_with_options(network, task, method, Parallelism::auto())
}

/// Runs MSA stage 1 with an explicit Steiner construction and thread count.
///
/// The candidate sweep is embarrassingly parallel: each last-VNF server row
/// is evaluated independently (the per-root Steiner cache is a pure
/// memoization). Workers sweep contiguous row blocks with their own caches
/// and the block winners are merged in row order with the same strict-`<`
/// rule the sequential loop uses, so every thread count — including
/// [`Parallelism::sequential`], which runs the classic single-threaded
/// loop — returns bit-identical placements, Steiner edges and costs.
///
/// # Errors
///
/// Same conditions as [`stage_one`].
pub fn stage_one_with_options(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    parallelism: Parallelism,
) -> Result<ChainSolution, CoreError> {
    sweep::<SteinerCache>(network, task, method, parallelism, None, None)
}

/// [`stage_one_with_options`] with a cooperative [`CancelToken`].
///
/// The token is polled once per candidate row in the sweep (each worker
/// stops scanning its block as soon as it observes the trip) and inside
/// lazy distance-row computation, so a mid-solve cancellation interrupts
/// within one candidate evaluation. A cancelled sweep returns
/// [`CoreError::Cancelled`] — never a partial winner — and mutates no
/// shared state (persistent Steiner caches may retain trees finished
/// before the trip; they are valid either way).
///
/// # Errors
///
/// [`CoreError::Cancelled`] when `cancel` trips mid-solve, plus the same
/// conditions as [`stage_one`].
pub fn stage_one_cancellable(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    parallelism: Parallelism,
    cancel: Option<&CancelToken>,
) -> Result<ChainSolution, CoreError> {
    sweep::<SteinerCache>(network, task, method, parallelism, None, cancel)
}

/// Runs MSA stage 1 against a persistent, externally owned Steiner cache.
///
/// This is the long-running-service entry point: the cache outlives the
/// solve, so trees built for one task are reused by later tasks that share
/// a root and destination set. Entries are keyed `(root, destinations)`;
/// a Steiner tree depends only on the graph topology and edge weights —
/// never on capacities or deployments — so the cache stays valid across
/// committed embeddings and must only be flushed when the graph itself
/// changes (see [`sft_graph::cache`] for the full contract). Results are
/// bit-identical to [`stage_one_with_options`] at every thread count: a
/// cached tree is exactly the tree a fresh computation would build.
///
/// One cache must serve a single [`SteinerMethod`] — trees are keyed by
/// terminals only, so mixing constructions on one cache would conflate
/// their (different) trees.
///
/// # Errors
///
/// Same conditions as [`stage_one`].
pub fn stage_one_with_cache<C: TreeCache>(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    parallelism: Parallelism,
    cache: &C,
) -> Result<ChainSolution, CoreError> {
    sweep(network, task, method, parallelism, Some(cache), None)
}

/// [`stage_one_with_cache`] with a cooperative [`CancelToken`] — see
/// [`stage_one_cancellable`] for the cancellation contract.
///
/// # Errors
///
/// [`CoreError::Cancelled`] when `cancel` trips mid-solve, plus the same
/// conditions as [`stage_one`].
pub fn stage_one_with_cache_cancellable<C: TreeCache>(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    parallelism: Parallelism,
    cache: &C,
    cancel: Option<&CancelToken>,
) -> Result<ChainSolution, CoreError> {
    sweep(network, task, method, parallelism, Some(cache), cancel)
}

/// The shared sweep behind [`stage_one_with_options`] (per-solve local
/// caches) and [`stage_one_with_cache`] (one persistent shared cache).
fn sweep<C: TreeCache>(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    parallelism: Parallelism,
    shared: Option<&C>,
    cancel: Option<&CancelToken>,
) -> Result<ChainSolution, CoreError> {
    if let Some(token) = cancel {
        token.check()?;
    }
    task.check_against(network)?;
    let emod = ExpandedMod::build(network, task.source(), task.sfc())?;
    let sp = emod.shortest_paths();
    let rows = emod.servers().len();

    // Each worker sweeps a contiguous row block with its own Steiner cache
    // (or the shared one) and keeps its block's best candidate; the block
    // winners come back in row order. Ties break toward the lowest row both
    // inside a block (first strict improvement wins) and across blocks
    // (left fold below), exactly matching the sequential sweep. A tripped
    // cancel token makes each worker abandon its remaining rows; the
    // post-merge check below turns that into `CoreError::Cancelled`, so a
    // partial sweep can never pass off its best-so-far as the answer.
    let block_best = run_partitioned(parallelism, rows, |range| {
        let mut local: BTreeMap<NodeId, Option<SteinerTree>> = BTreeMap::new();
        let mut best: Option<(f64, ChainSolution)> = None;
        for row in range {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                break;
            }
            let Some((cost, chain)) = evaluate_candidate(
                network, task, method, &emod, &sp, &mut local, shared, cancel, row,
            ) else {
                continue;
            };
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, chain));
            }
        }
        best
    });

    if let Some(token) = cancel {
        token.check()?;
    }

    let best = block_best.into_iter().flatten().fold(
        None::<(f64, ChainSolution)>,
        |acc, (cost, chain)| {
            if acc.as_ref().is_none_or(|(b, _)| cost < *b) {
                Some((cost, chain))
            } else {
                acc
            }
        },
    );

    best.map(|(_, c)| c).ok_or_else(|| CoreError::Infeasible {
        reason: "no feasible chain embedding for any last-VNF candidate".into(),
    })
}

/// Enumerates every feasible stage-1 candidate as `(closed-form cost,
/// solution)` pairs in row order — the exact set the sweep minimizes over.
///
/// Exposed so tests can check the DESIGN §6 invariant that the closed-form
/// cost of each candidate equals the canonical [`crate::cost::delivery_cost`]
/// of its embedding.
///
/// # Errors
///
/// Task/network mismatches, as in [`stage_one`].
pub fn stage_one_candidates(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
) -> Result<Vec<(f64, ChainSolution)>, CoreError> {
    task.check_against(network)?;
    let emod = ExpandedMod::build(network, task.source(), task.sfc())?;
    let sp = emod.shortest_paths();
    let mut local: BTreeMap<NodeId, Option<SteinerTree>> = BTreeMap::new();
    let mut out = Vec::new();
    for row in 0..emod.servers().len() {
        if let Some(candidate) = evaluate_candidate(
            network,
            task,
            method,
            &emod,
            &sp,
            &mut local,
            None::<&SteinerCache>,
            None,
            row,
        ) {
            out.push(candidate);
        }
    }
    Ok(out)
}

/// Builds the delivery Steiner tree rooted at `w` reaching every task
/// destination (the pure computation both cache flavors memoize).
fn build_tree(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    w: NodeId,
    cancel: Option<&CancelToken>,
) -> Option<SteinerTree> {
    let mut terminals = vec![w];
    terminals.extend_from_slice(task.destinations());
    // `.ok()` also swallows a mid-build cancellation; that is safe — the
    // sweep re-checks the token after the merge, so a cancelled solve
    // still returns `CoreError::Cancelled` rather than a partial winner.
    match method {
        SteinerMethod::Kmb => network
            .graph()
            .steiner_kmb_with_provider(network.dist(), &terminals, cancel)
            .ok(),
        SteinerMethod::Takahashi => network.graph().steiner_takahashi(&terminals).ok(),
    }
}

/// Evaluates one last-VNF candidate row: chain readout, capacity repair,
/// Steiner tree, closed-form cost. Returns `None` when the row yields no
/// feasible embedding. Trees are memoized per (repaired) last node —
/// through `shared` when a persistent cache is plugged in, through the
/// per-worker `local` map otherwise; `None` entries record roots whose
/// tree construction failed (e.g. disconnected from some destination).
#[allow(clippy::too_many_arguments)]
fn evaluate_candidate<C: TreeCache>(
    network: &Network,
    task: &MulticastTask,
    method: SteinerMethod,
    emod: &ExpandedMod,
    sp: &ShortestPaths,
    local: &mut BTreeMap<NodeId, Option<SteinerTree>>,
    shared: Option<&C>,
    cancel: Option<&CancelToken>,
    row: usize,
) -> Option<(f64, ChainSolution)> {
    let (mut placement, _) = emod.placement_for(sp, row)?;
    if repair_capacity(network, task.source(), task.sfc(), &mut placement).is_err() {
        return None;
    }
    let w = *placement.last().expect("chain is non-empty");
    let tree = match shared {
        Some(cache) => match cache.lookup(w, task.destinations()) {
            Some(cached) => cached,
            None => {
                let built = build_tree(network, task, method, w, cancel);
                // A failure caused by cancellation must not be recorded:
                // the cache outlives this solve, and a later solve would
                // wrongly read the root as infeasible. (The per-solve
                // `local` map below has no such hazard — it dies with the
                // cancelled sweep.)
                if built.is_some() || !cancel.is_some_and(CancelToken::is_cancelled) {
                    cache.store(w, task.destinations(), built.clone());
                }
                built
            }
        },
        None => local
            .entry(w)
            .or_insert_with(|| build_tree(network, task, method, w, cancel))
            .clone(),
    }?;
    // Stage-1 candidate cost has a closed form: every destination
    // shares the chain segments, so per-segment dedup leaves exactly
    // "chain path costs + deduped setups + Steiner tree cost".
    let cost = chain_cost(network, task, &placement) + tree.cost;
    Some((
        cost,
        ChainSolution {
            placement,
            steiner_edges: tree.edges,
        },
    ))
}

/// Cost of an embedded chain alone: inter-stage shortest-path costs plus
/// setup costs of new instances, deduplicated by `(type, node)` — the
/// closed form of the canonical cost restricted to segments `0..k`.
fn chain_cost(network: &Network, task: &MulticastTask, placement: &[NodeId]) -> f64 {
    let dist = network.dist();
    let mut cost = 0.0;
    let mut prev = task.source();
    let mut seen = std::collections::BTreeSet::new();
    for (j, &n) in placement.iter().enumerate() {
        cost += dist
            .distance(prev, n)
            .expect("chain nodes reachable by construction");
        let f = task.sfc().stage(j + 1);
        if !network.is_deployed(f, n) && seen.insert((f, n)) {
            cost += network.setup_cost(f, n);
        }
        prev = n;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::delivery_cost;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::Graph;

    /// A ring of 6 nodes with one chord, all servers.
    fn ring_net(capacity: f64) -> Network {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0 + i as f64 * 0.1)
                .unwrap();
        }
        g.add_edge(NodeId(0), NodeId(3), 2.0).unwrap();
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn a_task() -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn produces_a_feasible_embedding() {
        let net = ring_net(5.0);
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        assert_eq!(chain.placement.len(), 2);
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }

    #[test]
    fn respects_tight_capacities() {
        let net = ring_net(1.0); // one instance per node
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        assert_ne!(chain.placement[0], chain.placement[1]);
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }

    #[test]
    fn reuses_deployed_instances_when_cheaper() {
        // Make new setups expensive; pre-deploy the whole chain along a
        // slightly longer route. MSA should ride the free instances.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap(); // short path side
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1.5).unwrap(); // deployed side
        g.add_edge(NodeId(2), NodeId(3), 1.5).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(3.0)
            .unwrap()
            .uniform_setup_cost(50.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(2))
            .unwrap()
            .deploy(VnfId(1), NodeId(2))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let chain = stage_one(&net, &task).unwrap();
        assert_eq!(chain.placement, vec![NodeId(2), NodeId(2)]);
        let emb = chain.to_embedding(&net, &task).unwrap();
        let cost = delivery_cost(&net, &task, &emb).unwrap();
        assert_eq!(cost.setup, 0.0);
    }

    #[test]
    fn infeasible_when_capacity_is_zero_everywhere() {
        let net = ring_net(0.0);
        let task = a_task();
        assert!(matches!(
            stage_one(&net, &task),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn takahashi_variant_is_feasible_and_comparable() {
        let net = ring_net(5.0);
        let task = a_task();
        let kmb = stage_one_with(&net, &task, SteinerMethod::Kmb).unwrap();
        let tm = stage_one_with(&net, &task, SteinerMethod::Takahashi).unwrap();
        for chain in [&kmb, &tm] {
            let emb = chain.to_embedding(&net, &task).unwrap();
            assert!(is_valid(&net, &task, &emb));
        }
        // Same approximation class: neither may be worse than 2x the other.
        let cost = |c: &ChainSolution| {
            let emb = c.to_embedding(&net, &task).unwrap();
            delivery_cost(&net, &task, &emb).unwrap().total()
        };
        let (a, b) = (cost(&kmb), cost(&tm));
        assert!(a <= 2.0 * b + 1e-9 && b <= 2.0 * a + 1e-9);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        for capacity in [1.0, 5.0] {
            let net = ring_net(capacity);
            let task = a_task();
            let seq =
                stage_one_with_options(&net, &task, SteinerMethod::Kmb, Parallelism::sequential())
                    .unwrap();
            for threads in [2usize, 3, 8] {
                let par = stage_one_with_options(
                    &net,
                    &task,
                    SteinerMethod::Kmb,
                    Parallelism::new(threads),
                )
                .unwrap();
                assert_eq!(seq.placement, par.placement, "threads={threads}");
                assert_eq!(seq.steiner_edges, par.steiner_edges, "threads={threads}");
            }
        }
    }

    #[test]
    fn shared_cache_is_bit_identical_and_reused_across_solves() {
        let net = ring_net(5.0);
        let task = a_task();
        let plain = stage_one(&net, &task).unwrap();
        let cache = SteinerCache::new();
        let first = stage_one_with_cache(
            &net,
            &task,
            SteinerMethod::Kmb,
            Parallelism::sequential(),
            &cache,
        )
        .unwrap();
        assert_eq!(plain, first);
        assert!(cache.misses() > 0, "first solve populates the cache");
        let hits_before = cache.hits();
        // Same task again, different thread count: every tree is served
        // from the cache and the answer does not change.
        for threads in [1usize, 2, 5] {
            let again = stage_one_with_cache(
                &net,
                &task,
                SteinerMethod::Kmb,
                Parallelism::new(threads),
                &cache,
            )
            .unwrap();
            assert_eq!(plain, again, "threads={threads}");
        }
        assert!(cache.hits() > hits_before, "repeat solves must hit");
    }

    #[test]
    fn a_tripped_token_cancels_the_sweep_and_a_live_one_changes_nothing() {
        let net = ring_net(5.0);
        let task = a_task();
        let token = CancelToken::new();
        token.cancel();
        for threads in [Parallelism::sequential(), Parallelism::new(3)] {
            let err = stage_one_cancellable(&net, &task, SteinerMethod::Kmb, threads, Some(&token))
                .unwrap_err();
            assert!(matches!(err, CoreError::Cancelled));
        }
        let live = CancelToken::new();
        let with = stage_one_cancellable(
            &net,
            &task,
            SteinerMethod::Kmb,
            Parallelism::new(2),
            Some(&live),
        )
        .unwrap();
        assert_eq!(with, stage_one(&net, &task).unwrap());
    }

    #[test]
    fn a_cancelled_build_is_not_recorded_in_a_shared_cache() {
        use sft_graph::DistanceMode;
        // A lazy provider propagates cancellation out of tree builds; the
        // resulting failure must not be stored as an "infeasible root" in
        // a cache that outlives the solve.
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0 + i as f64 * 0.1)
                .unwrap();
        }
        g.add_edge(NodeId(0), NodeId(3), 2.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(5.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .distance_mode(DistanceMode::Lazy)
            .build()
            .unwrap();
        let task = a_task();
        let emod = ExpandedMod::build(&net, task.source(), task.sfc()).unwrap();
        let sp = emod.shortest_paths();
        let cache = SteinerCache::new();
        // Building the MOD overlay memoized every row; drop them so the
        // tree build must recompute one and trips on the token. (Row 0's
        // placement feasibility is confirmed by the clean evaluate below.)
        for v in 0..net.node_count() {
            net.dist().invalidate_source(NodeId(v));
        }
        let token = CancelToken::new();
        token.cancel();
        let mut local: BTreeMap<NodeId, Option<SteinerTree>> = BTreeMap::new();
        let got = evaluate_candidate(
            &net,
            &task,
            SteinerMethod::Kmb,
            &emod,
            &sp,
            &mut local,
            Some(&cache),
            Some(&token),
            0,
        );
        assert!(got.is_none(), "cancelled row yields no candidate");
        assert_eq!(cache.len(), 0, "cancelled failure must not be cached");
        let mut warm: BTreeMap<NodeId, Option<SteinerTree>> = BTreeMap::new();
        assert!(evaluate_candidate(
            &net,
            &task,
            SteinerMethod::Kmb,
            &emod,
            &sp,
            &mut warm,
            None::<&SteinerCache>,
            None,
            0,
        )
        .is_some());
        // A clean solve over the same cache then succeeds normally.
        let chain = stage_one_with_cache(
            &net,
            &task,
            SteinerMethod::Kmb,
            Parallelism::sequential(),
            &cache,
        )
        .unwrap();
        assert_eq!(chain, stage_one(&net, &task).unwrap());
    }

    #[test]
    fn candidates_include_the_sweep_winner() {
        let net = ring_net(5.0);
        let task = a_task();
        let winner = stage_one(&net, &task).unwrap();
        let candidates = stage_one_candidates(&net, &task, SteinerMethod::Kmb).unwrap();
        assert!(!candidates.is_empty());
        let min = candidates
            .iter()
            .map(|(c, _)| *c)
            .fold(f64::INFINITY, f64::min);
        let best = candidates
            .iter()
            .find(|(c, _)| *c == min)
            .expect("min exists");
        assert_eq!(best.1.placement, winner.placement);
    }

    #[test]
    fn single_destination_single_stage() {
        let net = ring_net(2.0);
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(2)]).unwrap(),
        )
        .unwrap();
        let chain = stage_one(&net, &task).unwrap();
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }
}
