//! The target network: topology, server nodes, capacities, VNF setup costs
//! and pre-deployed instances.
//!
//! Mirrors the paper's §III-B model: `G = (V, E)` with `V = V_M ∪ V_S`
//! (servers and switches), per-server capacity `cap(v)`, per-edge link
//! connection cost `c_uv`, per-(VNF, node) setup cost `γ_{f,u}`, and the
//! deployment indicator `π_{f,u}` for instances that already exist (whose
//! reuse is free, §IV-D).

use crate::vnf::{VnfCatalog, VnfId};
use crate::CoreError;
use sft_graph::numeric::exceeds;
use sft_graph::{
    provider_for, DistanceMode, DistanceProvider, EdgeId, Graph, NodeId, ProviderKind,
};
use std::sync::Arc;

/// The exact state mutation committing one embedding applies: the set of
/// `(VNF, node)` pairs that need a **new** instance (`deploys`) plus the
/// pairs the embedding *reuses* (`refs`), each in canonical (sorted)
/// order. A delta is computed against a snapshot of the network
/// ([`Network::commit_delta`]), can be validated against any later state
/// without mutating it ([`Network::validate_delta`]), and is applied
/// all-or-nothing ([`Network::apply_delta`]) — the split transactional
/// commit pipelines (solve against a snapshot, validate-and-apply under a
/// short critical section) are built from.
///
/// Deployments are reference counted: every pair in `deploys` ∪ `refs`
/// adds one reference on apply, and [`Network::apply_release`] applies
/// the exact inverse, so an instance shared by two sessions survives the
/// first release and its capacity is freed only when the last reference
/// drops.
///
/// A delta also carries sorted **edge deltas** — the second half of the
/// unified resource model: `(edge, bandwidth)` entries charging the
/// session's bandwidth demand once per distinct capacitated tree edge,
/// applied and released with exactly the same all-or-nothing discipline
/// as node deltas. Uncapacitated edges never appear (their residual is
/// infinite), so bandwidth-free tasks produce the same delta as before.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CommitDelta {
    deploys: Vec<(VnfId, NodeId)>,
    refs: Vec<(VnfId, NodeId)>,
    edges: Vec<(EdgeId, f64)>,
}

impl CommitDelta {
    /// A delta from explicit new-deployment `(VNF, node)` pairs
    /// (deduplicated, sorted), with no reused pairs.
    pub fn new(deploys: Vec<(VnfId, NodeId)>) -> Self {
        CommitDelta::with_refs(deploys, Vec::new())
    }

    /// A delta from new-deployment pairs plus reused-instance pairs. Both
    /// sides are canonicalized; a pair listed in both is kept on the
    /// `deploys` side only (a new instance is trivially also referenced).
    pub fn with_refs(deploys: Vec<(VnfId, NodeId)>, refs: Vec<(VnfId, NodeId)>) -> Self {
        CommitDelta::with_usage(deploys, refs, Vec::new())
    }

    /// The fully general constructor: node deltas plus `(edge, bandwidth)`
    /// edge deltas. All three sides are canonicalized (sorted, exact
    /// duplicates removed).
    pub fn with_usage(
        mut deploys: Vec<(VnfId, NodeId)>,
        mut refs: Vec<(VnfId, NodeId)>,
        mut edges: Vec<(EdgeId, f64)>,
    ) -> Self {
        deploys.sort_unstable();
        deploys.dedup();
        refs.sort_unstable();
        refs.dedup();
        refs.retain(|p| deploys.binary_search(p).is_err());
        edges.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        CommitDelta {
            deploys,
            refs,
            edges,
        }
    }

    /// The `(edge, bandwidth)` deltas, in canonical [`EdgeId`] order.
    pub fn edges(&self) -> &[(EdgeId, f64)] {
        &self.edges
    }

    /// The distinct edges this delta touches, ascending — the edge
    /// analogue of [`CommitDelta::touched_nodes`] for version-vector
    /// conflict detection.
    pub fn touched_edges(&self) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = self.edges.iter().map(|&(e, _)| e).collect();
        out.dedup();
        out
    }

    /// The new deployments, in canonical `(VnfId, NodeId)` order.
    pub fn deploys(&self) -> &[(VnfId, NodeId)] {
        &self.deploys
    }

    /// The reused (reference-only) instances, in canonical order. These
    /// consume no capacity but pin their instance against release.
    pub fn refs(&self) -> &[(VnfId, NodeId)] {
        &self.refs
    }

    /// Every pair the delta references — `deploys` then `refs`, each in
    /// canonical order. This is the set whose reference counts change.
    pub fn usage(&self) -> impl Iterator<Item = (VnfId, NodeId)> + '_ {
        self.deploys.iter().chain(self.refs.iter()).copied()
    }

    /// Whether the commit would change anything (a fully-reused embedding
    /// with no pinned references and no bandwidth charge has an empty
    /// delta).
    pub fn is_empty(&self) -> bool {
        self.deploys.is_empty() && self.refs.is_empty() && self.edges.is_empty()
    }

    /// The distinct nodes this delta touches (new deployments *and*
    /// reused references — a reuse conflicts with a concurrent release of
    /// the instance it rides on), ascending.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.usage().map(|(_, v)| v).collect();
        nodes.sort_unstable_by_key(|v| v.0);
        nodes.dedup();
        nodes
    }

    /// Total capacity the delta consumes under `catalog` demands (new
    /// deployments only; reuse is capacity-free).
    pub fn total_demand(&self, catalog: &VnfCatalog) -> f64 {
        self.deploys.iter().map(|&(f, _)| catalog.demand(f)).sum()
    }

    /// Total bandwidth the delta charges, summed over all edges — what a
    /// release gives back to the links in aggregate (the wire protocol's
    /// `bw_freed`).
    pub fn total_bandwidth(&self) -> f64 {
        self.edges.iter().map(|&(_, b)| b).sum()
    }
}

/// An immutable (apart from explicit deployment commits) view of the target
/// network with everything the embedding algorithms need, including a
/// shared [`DistanceProvider`] over the link-connection costs (a dense
/// precomputed matrix on small/dense graphs, a lazy CSR-backed provider on
/// large ones — see [`NetworkBuilder::distance_mode`]).
#[derive(Clone, Debug)]
pub struct Network {
    graph: Graph,
    dist: Arc<dyn DistanceProvider>,
    servers: Vec<bool>,
    capacity: Vec<f64>,
    catalog: VnfCatalog,
    setup_cost: Vec<Vec<f64>>,
    /// Per-(VNF, node) live reference counts. An instance exists iff its
    /// count is positive; capacity is consumed once per live instance,
    /// not per reference. Builder pre-deployments enter with one pinned
    /// reference that no session owns, so they are never released.
    deployed: Vec<Vec<u32>>,
    /// Per-edge committed bandwidth, index-aligned with the graph's dense
    /// edge ids (0.0 for uncapacitated edges, which are never charged).
    edge_used: Vec<f64>,
    /// Per-edge live session counts — the bandwidth analogue of the
    /// instance refcounts. When the last session on an edge departs its
    /// usage snaps back to exactly 0.0, so a fully drained link always
    /// reports its full capacity regardless of float rounding.
    edge_sessions: Vec<u32>,
}

impl Network {
    /// Starts building a network over a topology and a VNF catalog.
    pub fn builder(graph: Graph, catalog: VnfCatalog) -> NetworkBuilder {
        let n = graph.node_count();
        let nf = catalog.len();
        NetworkBuilder {
            graph,
            catalog,
            servers: vec![false; n],
            capacity: vec![0.0; n],
            setup_cost: vec![vec![1.0; n]; nf],
            deployed: vec![vec![false; n]; nf],
            distance_mode: DistanceMode::Auto,
        }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes (servers + switches).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Shortest paths over link-connection costs. Depending on the
    /// builder's [`DistanceMode`] this is either a pre-computed all-pairs
    /// matrix or a lazy provider that materializes per-source rows on
    /// first query; both answer identically.
    pub fn dist(&self) -> &dyn DistanceProvider {
        &*self.dist
    }

    /// The same provider as [`Network::dist`], shareable across threads.
    pub fn dist_arc(&self) -> Arc<dyn DistanceProvider> {
        Arc::clone(&self.dist)
    }

    /// The VNF catalog.
    pub fn catalog(&self) -> &VnfCatalog {
        &self.catalog
    }

    /// Whether `v` is a server node (member of `V_M`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn is_server(&self, v: NodeId) -> bool {
        self.servers[v.0]
    }

    /// Iterator over all server nodes, in index order.
    pub fn servers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| NodeId(i))
    }

    /// Number of server nodes.
    pub fn server_count(&self) -> usize {
        self.servers.iter().filter(|&&s| s).count()
    }

    /// Deployment capacity `cap(v)` of a node (0 for switches).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn capacity(&self, v: NodeId) -> f64 {
        self.capacity[v.0]
    }

    /// Total resource demand of the instances already deployed on `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn deployed_load(&self, v: NodeId) -> f64 {
        self.catalog
            .ids()
            .filter(|&f| self.deployed[f.0][v.0] > 0)
            .map(|f| self.catalog.demand(f))
            .sum()
    }

    /// Capacity left on `v` after accounting for already-deployed
    /// instances — the budget available to *new* instances (constraint 1d).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn residual_capacity(&self, v: NodeId) -> f64 {
        self.capacity[v.0] - self.deployed_load(v)
    }

    /// Total capacity left across all servers after accounting for every
    /// deployed instance — the network-wide budget available to new
    /// instances. Admission layers compare this against
    /// [`Network::min_new_demand`] to shed tasks that cannot possibly fit.
    pub fn total_residual_capacity(&self) -> f64 {
        self.servers().map(|v| self.residual_capacity(v)).sum()
    }

    /// The largest single-server residual capacity. An instance can only
    /// be placed whole, so a task whose biggest undeployed VNF demand
    /// exceeds this cannot be embedded no matter how much total capacity
    /// remains.
    pub fn max_residual_capacity(&self) -> f64 {
        self.servers()
            .map(|v| self.residual_capacity(v))
            .fold(0.0, f64::max)
    }

    /// Residual bandwidth of an edge: its capacity minus the bandwidth
    /// committed by live sessions, or `f64::INFINITY` for uncapacitated
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_residual(&self, e: EdgeId) -> f64 {
        match self.graph.edge_capacity(e) {
            Some(cap) => cap - self.edge_used[e.0],
            None => f64::INFINITY,
        }
    }

    /// Live sessions currently charging bandwidth on an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_session_count(&self, e: EdgeId) -> u32 {
        self.edge_sessions[e.0]
    }

    /// Every edge with live bandwidth charges, as canonical
    /// `(edge, used bandwidth, sessions)` triples — the edge analogue of
    /// [`Network::deployment_refcounts`], used by replay-identity tests to
    /// compare networks *including* link state.
    pub fn edge_usage(&self) -> Vec<(EdgeId, f64, u32)> {
        (0..self.edge_sessions.len())
            .filter(|&i| self.edge_sessions[i] > 0)
            .map(|i| (EdgeId(i), self.edge_used[i], self.edge_sessions[i]))
            .collect()
    }

    /// The largest single-edge residual bandwidth across the whole
    /// topology (`f64::INFINITY` when any edge is uncapacitated). Any
    /// feasible session routes over at least one edge, so a bandwidth
    /// demand exceeding this bound cannot be embedded — the sound
    /// admission lower bound for links, mirroring
    /// [`Network::max_residual_capacity`] for nodes.
    pub fn max_edge_residual(&self) -> f64 {
        self.graph
            .edge_ids()
            .map(|e| self.edge_residual(e))
            .fold(0.0, f64::max)
    }

    /// A filtered copy of the network for solving a task with bandwidth
    /// demand `bandwidth`: every edge whose residual bandwidth cannot
    /// carry the demand is dropped, so MSA/KMB/OPA and the capacity
    /// repair route around saturated links without per-algorithm changes.
    ///
    /// Returns `Ok(None)` when no filtering is needed — the demand is
    /// zero, or every edge still has room — in which case callers solve
    /// on `self` directly (and keep their shared Steiner cache; a
    /// filtered view has a *different topology* and must never touch it).
    /// Node ids are preserved, so an embedding computed on the view is
    /// valid verbatim on the original network; only the dense edge ids
    /// differ, which is why [`Network::commit_delta`] recovers edges from
    /// node pairs on `self`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Graph`] if the filtered provider cannot be built.
    pub fn bandwidth_view(&self, bandwidth: f64) -> Result<Option<Network>, CoreError> {
        if bandwidth <= 0.0 || !self.graph.has_edge_capacities() {
            return Ok(None);
        }
        let saturated = |e: EdgeId| exceeds(bandwidth, self.edge_residual(e));
        if !self.graph.edge_ids().any(saturated) {
            return Ok(None);
        }
        let mut filtered = Graph::new(self.graph.node_count());
        for e in self.graph.edge_ids() {
            if saturated(e) {
                continue;
            }
            let edge = self.graph.edge(e);
            let id = filtered
                .add_edge_with_capacity(edge.u, edge.v, edge.weight, edge.capacity)
                .expect("edges stay unique under filtering");
            filtered
                .set_edge_latency(id, edge.latency)
                .expect("a stored latency is always valid");
        }
        let mode = match self.dist.kind() {
            ProviderKind::Dense => DistanceMode::Dense,
            ProviderKind::Lazy => DistanceMode::Lazy,
        };
        let dist = provider_for(&filtered, mode)?;
        let edge_count = filtered.edge_count();
        Ok(Some(Network {
            graph: filtered,
            dist,
            servers: self.servers.clone(),
            capacity: self.capacity.clone(),
            catalog: self.catalog.clone(),
            setup_cost: self.setup_cost.clone(),
            deployed: self.deployed.clone(),
            edge_used: vec![0.0; edge_count],
            edge_sessions: vec![0; edge_count],
        }))
    }

    /// A lower bound on the new capacity `task` must consume: the summed
    /// demand `μ_f` of every distinct chain VNF type with no deployed
    /// instance anywhere in the network. Such a type forces at least one
    /// new placement; types that are already deployed somewhere *may* be
    /// reused for free (§IV-D), so they contribute nothing to the bound.
    ///
    /// The bound is sound for admission control: it never exceeds the
    /// demand of any feasible embedding, so rejecting when it exceeds
    /// [`Network::total_residual_capacity`] never sheds a servable task.
    pub fn min_new_demand(&self, task: &crate::task::MulticastTask) -> f64 {
        self.undeployed_chain_types(task)
            .map(|f| self.catalog.demand(f))
            .sum()
    }

    /// The largest per-instance demand among the task's chain types that
    /// are deployed nowhere (0.0 when every type is reusable). Compare
    /// against [`Network::max_residual_capacity`]: each new instance must
    /// fit on a single server.
    pub fn max_new_instance_demand(&self, task: &crate::task::MulticastTask) -> f64 {
        self.undeployed_chain_types(task)
            .map(|f| self.catalog.demand(f))
            .fold(0.0, f64::max)
    }

    /// Distinct chain VNF types of `task` with no deployed instance on any
    /// node. Out-of-catalog ids are skipped (task validation reports them).
    fn undeployed_chain_types<'a>(
        &'a self,
        task: &'a crate::task::MulticastTask,
    ) -> impl Iterator<Item = VnfId> + 'a {
        self.catalog
            .ids()
            .filter(|&f| task.sfc().stages().contains(&f))
            .filter(|&f| !(0..self.node_count()).any(|v| self.deployed[f.0][v] > 0))
    }

    /// Whether an instance of `f` is already deployed on `v` (`π_{f,v}`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn is_deployed(&self, f: VnfId, v: NodeId) -> bool {
        self.deployed[f.0][v.0] > 0
    }

    /// The number of live references held against the instance of `f` on
    /// `v` (0 when no instance is deployed).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn refcount(&self, f: VnfId, v: NodeId) -> u32 {
        self.deployed[f.0][v.0]
    }

    /// Raw setup cost `γ_{f,v}` of placing a *new* instance of `f` on `v`,
    /// ignoring any existing deployment.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn setup_cost(&self, f: VnfId, v: NodeId) -> f64 {
        self.setup_cost[f.0][v.0]
    }

    /// Setup cost actually incurred by using `f` on `v`: zero when an
    /// instance is already deployed (§IV-D), `γ_{f,v}` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn effective_setup_cost(&self, f: VnfId, v: NodeId) -> f64 {
        if self.deployed[f.0][v.0] > 0 {
            0.0
        } else {
            self.setup_cost[f.0][v.0]
        }
    }

    /// The paper's `l_G`: the average shortest-path cost of the network,
    /// used by Table I to scale VNF deployment costs.
    pub fn average_path_cost(&self) -> f64 {
        self.dist.average_distance()
    }

    /// Records a new deployment of `f` on `v` (e.g. after committing an
    /// embedding so later tasks can reuse its instances). Idempotent for
    /// already-deployed pairs.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotAServer`] if `v` is a switch.
    /// * [`CoreError::CapacityExceeded`] if the instance does not fit.
    /// * [`CoreError::VnfOutOfBounds`] / [`CoreError::NodeOutOfBounds`] for
    ///   invalid ids.
    pub fn deploy(&mut self, f: VnfId, v: NodeId) -> Result<(), CoreError> {
        self.check_node(v)?;
        self.catalog.check(f)?;
        if !self.servers[v.0] {
            return Err(CoreError::NotAServer { node: v.0 });
        }
        if self.deployed[f.0][v.0] > 0 {
            return Ok(());
        }
        let load = self.deployed_load(v) + self.catalog.demand(f);
        if exceeds(load, self.capacity[v.0]) {
            return Err(CoreError::CapacityExceeded {
                node: v.0,
                capacity: self.capacity[v.0],
                load,
            });
        }
        self.deployed[f.0][v.0] = 1;
        Ok(())
    }

    /// The [`CommitDelta`] committing `embedding` would apply to the
    /// network **as it is right now**: every `(VNF, node)` instance the
    /// embedding uses, split into pairs that need a new instance
    /// (`deploys`) and pairs that reuse a live one (`refs`). Both sides
    /// take a reference on apply, so releasing the delta later gives back
    /// exactly what this session held — and nothing another session still
    /// uses.
    ///
    /// When `task` carries a bandwidth demand, the delta also charges it
    /// against every distinct *capacitated* edge the delivery routes
    /// traverse — once per edge per session, no matter how many
    /// destinations share the edge (tree edges are shared by design).
    /// Edges are recovered from consecutive node pairs on **this**
    /// network's graph, so deltas from a [`Network::bandwidth_view`]
    /// solve are valid here verbatim.
    pub fn commit_delta(
        &self,
        task: &crate::task::MulticastTask,
        embedding: &crate::embedding::Embedding,
    ) -> CommitDelta {
        let (deploys, refs) = embedding
            .typed_instances(task)
            .into_iter()
            .partition(|&(f, v)| !self.is_deployed(f, v));
        let mut edges = Vec::new();
        let bandwidth = task.bandwidth();
        if bandwidth > 0.0 && self.graph.has_edge_capacities() {
            for route in embedding.routes() {
                for segment in route.segments() {
                    for w in segment.windows(2) {
                        if w[0] == w[1] {
                            continue;
                        }
                        if let Some(e) = self.graph.find_edge(w[0], w[1]) {
                            if self.graph.edge_capacity(e).is_some() {
                                edges.push((e, bandwidth));
                            }
                        }
                    }
                }
            }
        }
        CommitDelta::with_usage(deploys, refs, edges)
    }

    /// Checks that `delta` can be applied to the **current** state without
    /// violating any invariant, mutating nothing. Pairs that are already
    /// deployed (a delta computed against an older snapshot) are treated
    /// as satisfied and consume no capacity.
    ///
    /// # Errors
    ///
    /// * [`CoreError::VnfOutOfBounds`] / [`CoreError::NodeOutOfBounds`]
    ///   for invalid ids.
    /// * [`CoreError::NotAServer`] if a pair targets a switch.
    /// * [`CoreError::CapacityExceeded`] if any node's aggregate new load
    ///   does not fit its residual capacity.
    /// * [`CoreError::EdgeOutOfBounds`] / [`CoreError::InvalidParameter`]
    ///   for invalid edge deltas.
    /// * [`CoreError::LinkCapacityExceeded`] if any edge's aggregate new
    ///   bandwidth does not fit its residual.
    pub fn validate_delta(&self, delta: &CommitDelta) -> Result<(), CoreError> {
        for (f, v) in delta.usage() {
            self.catalog.check(f)?;
            self.check_node(v)?;
            if !self.servers[v.0] {
                return Err(CoreError::NotAServer { node: v.0 });
            }
        }
        for v in delta.touched_nodes() {
            // A pair with no live instance consumes fresh capacity no
            // matter which side of the delta it sits on: a `ref` whose
            // instance has meanwhile been released re-creates it.
            let new_load: f64 = delta
                .usage()
                .filter(|&(f, u)| u == v && self.deployed[f.0][u.0] == 0)
                .map(|(f, _)| self.catalog.demand(f))
                .sum();
            let load = self.deployed_load(v) + new_load;
            if exceeds(load, self.capacity[v.0]) {
                return Err(CoreError::CapacityExceeded {
                    node: v.0,
                    capacity: self.capacity[v.0],
                    load,
                });
            }
        }
        self.validate_edge_charges(delta)?;
        Ok(())
    }

    /// The edge half of [`Network::validate_delta`]: aggregate the charge
    /// per distinct edge (deltas are sorted, so groups are contiguous)
    /// and check it against the edge's residual bandwidth.
    fn validate_edge_charges(&self, delta: &CommitDelta) -> Result<(), CoreError> {
        let edges = delta.edges();
        let mut i = 0;
        while i < edges.len() {
            let e = edges[i].0;
            self.check_edge(e)?;
            let mut amount = 0.0;
            while i < edges.len() && edges[i].0 == e {
                let b = edges[i].1;
                if !b.is_finite() || b < 0.0 {
                    return Err(CoreError::InvalidParameter {
                        context: "edge bandwidth delta",
                        value: b,
                    });
                }
                amount += b;
                i += 1;
            }
            if let Some(cap) = self.graph.edge_capacity(e) {
                let load = self.edge_used[e.0] + amount;
                if exceeds(load, cap) {
                    return Err(CoreError::LinkCapacityExceeded {
                        edge: e.0,
                        capacity: cap,
                        load,
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies `delta` atomically: validates every pair first, then adds
    /// one reference per used pair (creating instances where the count
    /// was zero) and charges every edge delta against its link. On error
    /// **nothing** is mutated — the all-or-nothing half of the
    /// transactional commit split.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::validate_delta`].
    pub fn apply_delta(&mut self, delta: &CommitDelta) -> Result<(), CoreError> {
        self.validate_delta(delta)?;
        for (f, v) in delta.usage() {
            self.deployed[f.0][v.0] += 1;
        }
        for &(e, b) in delta.edges() {
            self.edge_used[e.0] += b;
            self.edge_sessions[e.0] += 1;
        }
        Ok(())
    }

    /// Checks that `delta` can be released against the **current** state:
    /// every pair it references (new deployments and reuses alike) must
    /// hold at least one live reference. Mutates nothing.
    ///
    /// # Errors
    ///
    /// * [`CoreError::VnfOutOfBounds`] / [`CoreError::NodeOutOfBounds`]
    ///   for invalid ids.
    /// * [`CoreError::InstanceNotDeployed`] if any referenced pair has no
    ///   live reference to give back.
    /// * [`CoreError::EdgeOutOfBounds`] for an invalid edge id.
    /// * [`CoreError::LinkCapacityExceeded`] if an edge delta would
    ///   release more sessions than the edge carries (the inverse
    ///   overflow: it would drive the usage below zero).
    pub fn validate_release(&self, delta: &CommitDelta) -> Result<(), CoreError> {
        for (f, v) in delta.usage() {
            self.catalog.check(f)?;
            self.check_node(v)?;
            if self.deployed[f.0][v.0] == 0 {
                return Err(CoreError::InstanceNotDeployed {
                    vnf: f.0,
                    node: v.0,
                });
            }
        }
        let edges = delta.edges();
        let mut i = 0;
        while i < edges.len() {
            let e = edges[i].0;
            self.check_edge(e)?;
            let mut entries = 0u32;
            let mut amount = 0.0;
            while i < edges.len() && edges[i].0 == e {
                amount += edges[i].1;
                entries += 1;
                i += 1;
            }
            if self.edge_sessions[e.0] < entries {
                return Err(CoreError::LinkCapacityExceeded {
                    edge: e.0,
                    capacity: self.graph.edge_capacity(e).unwrap_or(f64::INFINITY),
                    load: self.edge_used[e.0] - amount,
                });
            }
        }
        Ok(())
    }

    /// Applies the exact inverse of [`Network::apply_delta`] atomically:
    /// drops one reference per pair the delta uses, removing instances
    /// whose count reaches zero. Returns the removed pairs in canonical
    /// order — only their capacity is freed; an instance another session
    /// still references survives untouched. On error nothing is mutated.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::validate_release`].
    pub fn apply_release(
        &mut self,
        delta: &CommitDelta,
    ) -> Result<Vec<(VnfId, NodeId)>, CoreError> {
        self.validate_release(delta)?;
        let mut freed = Vec::new();
        for (f, v) in delta.usage() {
            self.deployed[f.0][v.0] -= 1;
            if self.deployed[f.0][v.0] == 0 {
                freed.push((f, v));
            }
        }
        freed.sort_unstable();
        for &(e, b) in delta.edges() {
            self.edge_sessions[e.0] -= 1;
            if self.edge_sessions[e.0] == 0 {
                // Last session off the link: snap to exactly zero so the
                // full capacity is restored regardless of float rounding
                // across intervening commits and releases.
                self.edge_used[e.0] = 0.0;
            } else {
                self.edge_used[e.0] -= b;
            }
        }
        Ok(freed)
    }

    /// Commits every new instance of an embedding as a deployment, so that
    /// later multicast tasks can reuse them for free — the paper's
    /// "network with deployed VNFs" scenario (§IV-D) arises from exactly
    /// this kind of instance accretion across tasks. Implemented as
    /// [`Network::commit_delta`] + [`Network::apply_delta`], so the commit
    /// is all-or-nothing: on error the network is unchanged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::validate_delta`].
    pub fn commit_embedding(
        &mut self,
        task: &crate::task::MulticastTask,
        embedding: &crate::embedding::Embedding,
    ) -> Result<(), CoreError> {
        let delta = self.commit_delta(task, embedding);
        self.apply_delta(&delta)
    }

    /// Every deployed `(VNF, node)` pair, in canonical order — the
    /// comparable fingerprint of the mutable network state (capacities and
    /// costs are immutable after build, so two networks built alike with
    /// equal deployment sets are byte-equivalent for every solver).
    pub fn deployed_pairs(&self) -> Vec<(VnfId, NodeId)> {
        let mut out = Vec::new();
        for f in self.catalog.ids() {
            for v in 0..self.node_count() {
                if self.deployed[f.0][v] > 0 {
                    out.push((f, NodeId(v)));
                }
            }
        }
        out
    }

    /// Every live `(VNF, node, refcount)` triple, in canonical order —
    /// the refcount-aware extension of [`Network::deployed_pairs`], used
    /// by replay-identity tests to compare networks *including* how many
    /// sessions share each instance.
    pub fn deployment_refcounts(&self) -> Vec<(VnfId, NodeId, u32)> {
        let mut out = Vec::new();
        for f in self.catalog.ids() {
            for v in 0..self.node_count() {
                if self.deployed[f.0][v] > 0 {
                    out.push((f, NodeId(v), self.deployed[f.0][v]));
                }
            }
        }
        out
    }

    /// Validates an edge id against this network.
    ///
    /// # Errors
    ///
    /// [`CoreError::EdgeOutOfBounds`] otherwise.
    pub fn check_edge(&self, e: EdgeId) -> Result<(), CoreError> {
        if e.0 < self.graph.edge_count() {
            Ok(())
        } else {
            Err(CoreError::EdgeOutOfBounds {
                edge: e.0,
                len: self.graph.edge_count(),
            })
        }
    }

    /// Validates a node id against this network.
    ///
    /// # Errors
    ///
    /// [`CoreError::NodeOutOfBounds`] otherwise.
    pub fn check_node(&self, v: NodeId) -> Result<(), CoreError> {
        if v.0 < self.node_count() {
            Ok(())
        } else {
            Err(CoreError::NodeOutOfBounds {
                node: v.0,
                len: self.node_count(),
            })
        }
    }
}

/// Builder for [`Network`]. See [`Network::builder`].
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    graph: Graph,
    catalog: VnfCatalog,
    servers: Vec<bool>,
    capacity: Vec<f64>,
    setup_cost: Vec<Vec<f64>>,
    deployed: Vec<Vec<bool>>,
    distance_mode: DistanceMode,
}

impl NetworkBuilder {
    /// Selects how shortest-path distances are provided (default
    /// [`DistanceMode::Auto`]: dense precomputation below
    /// [`sft_graph::LAZY_THRESHOLD`] nodes, lazy per-source rows above).
    /// Force [`DistanceMode::Dense`] to precompute everything regardless of
    /// size, or [`DistanceMode::Lazy`] to keep memory proportional to the
    /// rows actually queried.
    #[must_use]
    pub fn distance_mode(mut self, mode: DistanceMode) -> Self {
        self.distance_mode = mode;
        self
    }
    /// Marks `v` as a server node with the given deployment capacity.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NodeOutOfBounds`] for an invalid node.
    /// * [`CoreError::InvalidParameter`] for a negative or non-finite
    ///   capacity.
    pub fn server(mut self, v: NodeId, capacity: f64) -> Result<Self, CoreError> {
        if v.0 >= self.graph.node_count() {
            return Err(CoreError::NodeOutOfBounds {
                node: v.0,
                len: self.graph.node_count(),
            });
        }
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "server capacity",
                value: capacity,
            });
        }
        self.servers[v.0] = true;
        self.capacity[v.0] = capacity;
        Ok(self)
    }

    /// Marks every node as a server with the same capacity — the common
    /// configuration in the paper's synthetic evaluation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a negative or non-finite
    /// capacity.
    pub fn all_servers(mut self, capacity: f64) -> Result<Self, CoreError> {
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "server capacity",
                value: capacity,
            });
        }
        self.servers.iter_mut().for_each(|s| *s = true);
        self.capacity.iter_mut().for_each(|c| *c = capacity);
        Ok(self)
    }

    /// Sets the setup cost `γ_{f,v}` for one (VNF, node) pair.
    ///
    /// # Errors
    ///
    /// Invalid ids or a negative / non-finite cost.
    pub fn setup_cost(mut self, f: VnfId, v: NodeId, cost: f64) -> Result<Self, CoreError> {
        self.catalog.check(f)?;
        if v.0 >= self.graph.node_count() {
            return Err(CoreError::NodeOutOfBounds {
                node: v.0,
                len: self.graph.node_count(),
            });
        }
        if !cost.is_finite() || cost < 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "VNF setup cost",
                value: cost,
            });
        }
        self.setup_cost[f.0][v.0] = cost;
        Ok(self)
    }

    /// Sets the same setup cost for every (VNF, node) pair.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a negative / non-finite cost.
    pub fn uniform_setup_cost(mut self, cost: f64) -> Result<Self, CoreError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "VNF setup cost",
                value: cost,
            });
        }
        for row in &mut self.setup_cost {
            row.iter_mut().for_each(|c| *c = cost);
        }
        Ok(self)
    }

    /// Records a pre-deployed instance of `f` on `v` (the paper's
    /// `π_{f,v} = 1`). Capacity is validated at [`NetworkBuilder::build`].
    ///
    /// # Errors
    ///
    /// Invalid ids.
    pub fn deploy(mut self, f: VnfId, v: NodeId) -> Result<Self, CoreError> {
        self.catalog.check(f)?;
        if v.0 >= self.graph.node_count() {
            return Err(CoreError::NodeOutOfBounds {
                node: v.0,
                len: self.graph.node_count(),
            });
        }
        self.deployed[f.0][v.0] = true;
        Ok(self)
    }

    /// Finalizes the network: validates deployments against server flags
    /// and capacities, and computes the all-pairs shortest-path matrix.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotAServer`] if an instance is deployed on a switch.
    /// * [`CoreError::CapacityExceeded`] if pre-deployments overload a node.
    pub fn build(self) -> Result<Network, CoreError> {
        for f in self.catalog.ids() {
            for v in 0..self.graph.node_count() {
                if self.deployed[f.0][v] && !self.servers[v] {
                    return Err(CoreError::NotAServer { node: v });
                }
            }
        }
        for v in 0..self.graph.node_count() {
            let load: f64 = self
                .catalog
                .ids()
                .filter(|&f| self.deployed[f.0][v])
                .map(|f| self.catalog.demand(f))
                .sum();
            if exceeds(load, self.capacity[v]) {
                return Err(CoreError::CapacityExceeded {
                    node: v,
                    capacity: self.capacity[v],
                    load,
                });
            }
        }
        // Provider dispatch lives in `sft_graph::provider_for`: dense
        // precomputation (density-dispatched between per-source Dijkstra
        // and Floyd–Warshall) below the lazy threshold, on-demand CSR rows
        // above it. Every variant answers bit-identically, so embeddings
        // price the same either way.
        let dist = provider_for(&self.graph, self.distance_mode)?;
        let deployed = self
            .deployed
            .iter()
            .map(|row| row.iter().map(|&d| u32::from(d)).collect())
            .collect();
        let edge_count = self.graph.edge_count();
        Ok(Network {
            graph: self.graph,
            dist,
            servers: self.servers,
            capacity: self.capacity,
            catalog: self.catalog,
            setup_cost: self.setup_cost,
            deployed,
            edge_used: vec![0.0; edge_count],
            edge_sessions: vec![0; edge_count],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_graph::Graph;

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        g
    }

    #[test]
    fn commit_delta_sorts_dedups_and_aggregates() {
        let catalog = VnfCatalog::uniform(3);
        let delta = CommitDelta::new(vec![
            (VnfId(2), NodeId(1)),
            (VnfId(0), NodeId(3)),
            (VnfId(2), NodeId(1)), // duplicate
            (VnfId(1), NodeId(3)),
        ]);
        assert_eq!(
            delta.deploys(),
            &[
                (VnfId(0), NodeId(3)),
                (VnfId(1), NodeId(3)),
                (VnfId(2), NodeId(1))
            ]
        );
        assert_eq!(delta.touched_nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(delta.total_demand(&catalog), 3.0);
        assert!(CommitDelta::default().is_empty());
    }

    #[test]
    fn apply_delta_is_all_or_nothing() {
        let mut net = Network::builder(line_graph(3), VnfCatalog::uniform(2))
            .all_servers(1.0)
            .unwrap()
            .build()
            .unwrap();
        // Two unit-demand instances on one capacity-1.0 server: validation
        // must reject the aggregate even though each pair fits alone.
        let delta = CommitDelta::new(vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(1))]);
        let err = net.apply_delta(&delta).unwrap_err();
        assert!(matches!(err, CoreError::CapacityExceeded { node: 1, .. }));
        assert!(net.deployed_pairs().is_empty(), "nothing may be committed");
        assert_eq!(net.residual_capacity(NodeId(1)), 1.0);

        // Split across servers the same pairs fit, and already-deployed
        // pairs are capacity-free on re-apply (a second reference, not a
        // second instance).
        let ok = CommitDelta::new(vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(2))]);
        net.apply_delta(&ok).unwrap();
        assert_eq!(net.deployed_pairs(), ok.deploys().to_vec());
        net.apply_delta(&ok).unwrap();
        assert_eq!(net.residual_capacity(NodeId(1)), 0.0);
        assert_eq!(net.residual_capacity(NodeId(2)), 0.0);
        assert_eq!(net.refcount(VnfId(0), NodeId(1)), 2);
    }

    #[test]
    fn with_refs_canonicalizes_and_keeps_sides_disjoint() {
        let delta = CommitDelta::with_refs(
            vec![(VnfId(1), NodeId(0)), (VnfId(0), NodeId(2))],
            vec![
                (VnfId(1), NodeId(0)), // also a deploy: dropped from refs
                (VnfId(2), NodeId(1)),
                (VnfId(2), NodeId(1)), // duplicate
            ],
        );
        assert_eq!(
            delta.deploys(),
            &[(VnfId(0), NodeId(2)), (VnfId(1), NodeId(0))]
        );
        assert_eq!(delta.refs(), &[(VnfId(2), NodeId(1))]);
        assert_eq!(
            delta.touched_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2)],
            "reused nodes are touched too"
        );
        assert_eq!(delta.total_demand(&VnfCatalog::uniform(3)), 2.0);
    }

    #[test]
    fn release_frees_capacity_only_when_the_last_reference_drops() {
        let mut net = Network::builder(line_graph(3), VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        // Session A deploys f0@1; session B reuses it and deploys f1@1.
        let a = CommitDelta::new(vec![(VnfId(0), NodeId(1))]);
        net.apply_delta(&a).unwrap();
        let b = CommitDelta::with_refs(vec![(VnfId(1), NodeId(1))], vec![(VnfId(0), NodeId(1))]);
        net.apply_delta(&b).unwrap();
        assert_eq!(net.refcount(VnfId(0), NodeId(1)), 2);
        assert_eq!(net.residual_capacity(NodeId(1)), 0.0);

        // A departs: the shared instance survives (B still references it),
        // so only B's exclusive instance would free capacity — and here A
        // frees nothing at all.
        let freed = net.apply_release(&a).unwrap();
        assert!(freed.is_empty(), "shared instance must survive");
        assert!(net.is_deployed(VnfId(0), NodeId(1)));
        assert_eq!(net.residual_capacity(NodeId(1)), 0.0);

        // B departs: both instances drop to zero references and vanish.
        let freed = net.apply_release(&b).unwrap();
        assert_eq!(freed, vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(1))]);
        assert!(net.deployed_pairs().is_empty());
        assert_eq!(net.residual_capacity(NodeId(1)), 2.0);
    }

    #[test]
    fn release_of_unreferenced_pairs_is_rejected_atomically() {
        let mut net = Network::builder(line_graph(3), VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        let live = CommitDelta::new(vec![(VnfId(0), NodeId(1))]);
        net.apply_delta(&live).unwrap();
        // One live pair + one dead pair: the whole release must be refused
        // and the live reference left untouched.
        let mixed = CommitDelta::new(vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(2))]);
        assert!(matches!(
            net.apply_release(&mixed),
            Err(CoreError::InstanceNotDeployed { vnf: 1, node: 2 })
        ));
        assert_eq!(net.refcount(VnfId(0), NodeId(1)), 1);
    }

    #[test]
    fn commit_then_release_restores_the_network_exactly() {
        let mut net = Network::builder(line_graph(4), VnfCatalog::uniform(3))
            .all_servers(2.0)
            .unwrap()
            .deploy(VnfId(2), NodeId(3))
            .unwrap()
            .build()
            .unwrap();
        let before = net.deployment_refcounts();
        let delta = CommitDelta::with_refs(
            vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(2))],
            vec![(VnfId(2), NodeId(3))],
        );
        net.apply_delta(&delta).unwrap();
        assert_eq!(net.refcount(VnfId(2), NodeId(3)), 2, "pinned + session");
        net.apply_release(&delta).unwrap();
        assert_eq!(net.deployment_refcounts(), before);
        assert!(
            net.is_deployed(VnfId(2), NodeId(3)),
            "builder pre-deployments are never released"
        );
    }

    #[test]
    fn validate_delta_rejects_switches_and_bad_ids() {
        let net = Network::builder(line_graph(3), VnfCatalog::uniform(2))
            .server(NodeId(1), 2.0)
            .unwrap()
            .build()
            .unwrap();
        let on_switch = CommitDelta::new(vec![(VnfId(0), NodeId(0))]);
        assert!(matches!(
            net.validate_delta(&on_switch),
            Err(CoreError::NotAServer { node: 0 })
        ));
        let bad_vnf = CommitDelta::new(vec![(VnfId(9), NodeId(1))]);
        assert!(matches!(
            net.validate_delta(&bad_vnf),
            Err(CoreError::VnfOutOfBounds { .. })
        ));
        let bad_node = CommitDelta::new(vec![(VnfId(0), NodeId(9))]);
        assert!(matches!(
            net.validate_delta(&bad_node),
            Err(CoreError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn builder_marks_servers_and_capacities() {
        let net = Network::builder(line_graph(4), VnfCatalog::uniform(2))
            .server(NodeId(1), 3.0)
            .unwrap()
            .server(NodeId(2), 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(!net.is_server(NodeId(0)));
        assert!(net.is_server(NodeId(1)));
        assert_eq!(net.capacity(NodeId(1)), 3.0);
        assert_eq!(net.capacity(NodeId(0)), 0.0);
        assert_eq!(net.server_count(), 2);
        assert_eq!(
            net.servers().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn deployment_zeroes_effective_setup_cost() {
        let net = Network::builder(line_graph(3), VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .uniform_setup_cost(5.0)
            .unwrap()
            .deploy(VnfId(1), NodeId(2))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(net.setup_cost(VnfId(1), NodeId(2)), 5.0);
        assert_eq!(net.effective_setup_cost(VnfId(1), NodeId(2)), 0.0);
        assert_eq!(net.effective_setup_cost(VnfId(0), NodeId(2)), 5.0);
        assert!(net.is_deployed(VnfId(1), NodeId(2)));
        assert_eq!(net.deployed_load(NodeId(2)), 1.0);
        assert_eq!(net.residual_capacity(NodeId(2)), 1.0);
    }

    #[test]
    fn build_rejects_deployment_on_switch() {
        let err = Network::builder(line_graph(3), VnfCatalog::uniform(1))
            .server(NodeId(0), 1.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(1))
            .unwrap()
            .build();
        assert!(matches!(err, Err(CoreError::NotAServer { node: 1 })));
    }

    #[test]
    fn build_rejects_overloaded_deployments() {
        let err = Network::builder(line_graph(2), VnfCatalog::uniform(3))
            .all_servers(1.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(0))
            .unwrap()
            .deploy(VnfId(1), NodeId(0))
            .unwrap()
            .build();
        assert!(matches!(
            err,
            Err(CoreError::CapacityExceeded { node: 0, .. })
        ));
    }

    #[test]
    fn post_build_deploy_validates_capacity() {
        let mut net = Network::builder(line_graph(2), VnfCatalog::uniform(3))
            .all_servers(1.0)
            .unwrap()
            .build()
            .unwrap();
        net.deploy(VnfId(0), NodeId(0)).unwrap();
        net.deploy(VnfId(0), NodeId(0)).unwrap(); // idempotent
        assert!(matches!(
            net.deploy(VnfId(1), NodeId(0)),
            Err(CoreError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn distances_and_average_path_cost() {
        let net = Network::builder(line_graph(4), VnfCatalog::uniform(1))
            .all_servers(1.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(net.dist().distance(NodeId(0), NodeId(3)), Some(3.0));
        // Ordered pairs of a 4-path: distances 1,1,1,2,2,3 each twice -> avg 10/6.
        assert!((net.average_path_cost() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn demand_estimation_counts_only_undeployed_chain_types() {
        use crate::task::MulticastTask;
        use crate::vnf::Sfc;
        let net = Network::builder(line_graph(4), VnfCatalog::uniform(3))
            .all_servers(2.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(1))
            .unwrap()
            .build()
            .unwrap();
        // 4 servers x 2.0 capacity, one unit instance deployed.
        assert!((net.total_residual_capacity() - 7.0).abs() < 1e-12);
        assert_eq!(net.max_residual_capacity(), 2.0);
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(1), VnfId(2)]).unwrap(),
        )
        .unwrap();
        // f0 is deployed somewhere (reusable); f1 and f2 force new units.
        assert_eq!(net.min_new_demand(&task), 2.0);
        assert_eq!(net.max_new_instance_demand(&task), 1.0);
        // A chain of only the deployed type demands nothing new.
        let reuse = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        assert_eq!(net.min_new_demand(&reuse), 0.0);
        assert_eq!(net.max_new_instance_demand(&reuse), 0.0);
        // A repeated type counts once: the bound is over distinct types.
        let repeated = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(1), VnfId(2), VnfId(1)]).unwrap(),
        )
        .unwrap();
        assert_eq!(net.min_new_demand(&repeated), 2.0);
    }

    fn capacitated_line(n: usize, bw: f64) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge_with_capacity(NodeId(i), NodeId(i + 1), 1.0, Some(bw))
                .unwrap();
        }
        g
    }

    #[test]
    fn edge_deltas_charge_and_release_bandwidth_refcount_style() {
        let mut net = Network::builder(capacitated_line(3, 10.0), VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        let e = EdgeId(0);
        assert_eq!(net.edge_residual(e), 10.0);
        assert_eq!(net.max_edge_residual(), 10.0);

        // Two sessions share the link; the second uses a value whose sum
        // is not exactly representable, to exercise the snap-to-zero.
        let a = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(e, 0.1)]);
        let b = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(e, 0.2)]);
        net.apply_delta(&a).unwrap();
        net.apply_delta(&b).unwrap();
        assert_eq!(net.edge_session_count(e), 2);
        assert_eq!(net.edge_usage(), vec![(e, 0.1 + 0.2, 2)]);
        assert!((net.edge_residual(e) - 9.7).abs() < 1e-12);

        net.apply_release(&b).unwrap();
        assert_eq!(net.edge_session_count(e), 1);
        // Last session off the link: usage snaps to exactly 0.0 even
        // though 0.1 + 0.2 - 0.2 - 0.1 != 0.0 in floats.
        net.apply_release(&a).unwrap();
        assert_eq!(net.edge_residual(e), 10.0);
        assert!(net.edge_usage().is_empty());
    }

    #[test]
    fn apply_delta_rejects_link_oversubscription_atomically() {
        let mut net = Network::builder(capacitated_line(3, 1.0), VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        let fill = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(EdgeId(0), 1.0)]);
        net.apply_delta(&fill).unwrap();
        // Node side fits, edge side does not: the node reference must not
        // be taken either.
        let over = CommitDelta::with_usage(
            vec![(VnfId(0), NodeId(1))],
            Vec::new(),
            vec![(EdgeId(0), 0.5)],
        );
        assert!(matches!(
            net.apply_delta(&over),
            Err(CoreError::LinkCapacityExceeded {
                edge: 0,
                capacity: c,
                load: l,
            }) if c == 1.0 && l == 1.5
        ));
        assert!(net.deployed_pairs().is_empty());
        assert_eq!(net.edge_residual(EdgeId(0)), 0.0);

        // An uncharged edge elsewhere still accepts commits.
        let other = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(EdgeId(1), 1.0)]);
        net.apply_delta(&other).unwrap();
    }

    #[test]
    fn edge_release_validation_rejects_over_release() {
        let mut net = Network::builder(capacitated_line(3, 1.0), VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        let d = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(EdgeId(0), 0.5)]);
        assert!(matches!(
            net.apply_release(&d),
            Err(CoreError::LinkCapacityExceeded { edge: 0, .. })
        ));
        let bad_edge = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(EdgeId(9), 0.5)]);
        assert!(matches!(
            net.validate_delta(&bad_edge),
            Err(CoreError::EdgeOutOfBounds { edge: 9, len: 2 })
        ));
        assert!(matches!(
            net.validate_release(&bad_edge),
            Err(CoreError::EdgeOutOfBounds { edge: 9, len: 2 })
        ));
    }

    #[test]
    fn uncapacitated_edges_accept_any_charge() {
        let mut net = Network::builder(line_graph(3), VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(net.edge_residual(EdgeId(0)), f64::INFINITY);
        assert_eq!(net.max_edge_residual(), f64::INFINITY);
        let d = CommitDelta::with_usage(Vec::new(), Vec::new(), vec![(EdgeId(0), 1e12)]);
        net.apply_delta(&d).unwrap();
        assert_eq!(net.edge_residual(EdgeId(0)), f64::INFINITY);
        net.apply_release(&d).unwrap();
        assert!(net.edge_usage().is_empty());
    }

    #[test]
    fn bandwidth_view_filters_saturated_links_only_when_needed() {
        // Triangle: 0-1 (cheap, narrow), 0-2 and 2-1 (wide detour).
        let mut g = Graph::new(3);
        g.add_edge_with_capacity(NodeId(0), NodeId(1), 1.0, Some(1.0))
            .unwrap();
        g.add_edge_with_capacity(NodeId(0), NodeId(2), 1.0, Some(10.0))
            .unwrap();
        g.add_edge_with_capacity(NodeId(2), NodeId(1), 1.0, Some(10.0))
            .unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();

        // No demand, or demand every link can carry: no view is built.
        assert!(net.bandwidth_view(0.0).unwrap().is_none());
        assert!(net.bandwidth_view(1.0).unwrap().is_none());

        // Demand 2.0 saturates the narrow link: the view drops it and the
        // shortest 0->1 path detours through 2 at cost 2.
        let view = net.bandwidth_view(2.0).unwrap().expect("must filter");
        assert_eq!(view.graph().edge_count(), 2);
        assert_eq!(view.dist().distance(NodeId(0), NodeId(1)), Some(2.0));
        assert_eq!(net.dist().distance(NodeId(0), NodeId(1)), Some(1.0));
        // The view itself needs no further filtering for the same demand.
        assert!(view.bandwidth_view(2.0).unwrap().is_none());

        // Demand wider than every link: the view disconnects the graph.
        let empty = net.bandwidth_view(20.0).unwrap().expect("must filter");
        assert_eq!(empty.graph().edge_count(), 0);
    }

    #[test]
    fn commit_delta_charges_capacitated_tree_edges_once() {
        use crate::embedding::{DestinationRoute, Embedding};
        use crate::task::MulticastTask;
        use crate::vnf::Sfc;
        let mut g = Graph::new(4);
        g.add_edge_with_capacity(NodeId(0), NodeId(1), 1.0, Some(5.0))
            .unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap(); // uncapacitated
        g.add_edge_with_capacity(NodeId(1), NodeId(3), 1.0, Some(5.0))
            .unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(3)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap()
        .with_bandwidth(2.0)
        .unwrap();
        // Both destinations route over the shared 0-1 edge; it must be
        // charged once, the uncapacitated 1-2 edge not at all.
        let embedding = Embedding::new(vec![
            DestinationRoute::new(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]]),
            DestinationRoute::new(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(3)]]),
        ]);
        let delta = net.commit_delta(&task, &embedding);
        assert_eq!(delta.edges(), &[(EdgeId(0), 2.0), (EdgeId(2), 2.0)]);
        assert_eq!(delta.touched_edges(), vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(delta.total_bandwidth(), 4.0);

        // The same embedding with a zero-bandwidth task carries no edge
        // deltas — byte-identical legacy behavior.
        let legacy = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(3)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        assert!(net.commit_delta(&legacy, &embedding).edges().is_empty());
    }

    #[test]
    fn builder_validates_parameters() {
        let b = Network::builder(line_graph(2), VnfCatalog::uniform(1));
        assert!(matches!(
            b.clone().server(NodeId(9), 1.0),
            Err(CoreError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            b.clone().server(NodeId(0), -1.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.clone().setup_cost(VnfId(0), NodeId(0), f64::NAN),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.clone().setup_cost(VnfId(5), NodeId(0), 1.0),
            Err(CoreError::VnfOutOfBounds { .. })
        ));
        assert!(matches!(
            b.clone().deploy(VnfId(0), NodeId(7)),
            Err(CoreError::NodeOutOfBounds { .. })
        ));
    }
}
