//! Stage 2 — the Optimize Phase Algorithm (OPA, paper Algorithm 3).
//!
//! OPA turns the stage-1 chain ("SFC + Steiner tree") into a service
//! function *tree* by replicating VNF instances in inverted chain order
//! (Theorem 4: predecessor VNFs never have more instances than successors):
//!
//! 1. Root the Steiner tree at the last-VNF node `W` and classify each
//!    destination's delivery path as *dependent* (shares an edge with the
//!    embedded chain) or *independent*.
//! 2. Independent destinations are grouped by their *connection node* — the
//!    first destination on the tree path from `W` (§IV-C, Fig. 6).
//! 3. For chain stages `j = k, k-1, …`: for every active branch with
//!    current connection node `c`, find the server `x` minimizing
//!    `dist(c, x) + dist(x, w_{j-1}) + setup(l_j, x)` and accept the new
//!    instance when the paper's local test beats `dist(c, w_j)` **and** the
//!    canonically recomputed delivery cost strictly decreases (the local
//!    test is a heuristic proxy; the global check guarantees
//!    `c(X_alg) ≤ c(X'_alg)`, as used in the Theorem 6 proof).
//! 4. Stop at the first stage adding no instance (Algorithm 3's `break`).

use crate::chain::ChainSolution;
use crate::cost::delivery_cost;
use crate::embedding::{DestinationRoute, Embedding};
use crate::network::Network;
use crate::task::MulticastTask;
use crate::vnf::VnfId;
use crate::CoreError;
use sft_graph::{EdgeId, NodeId, RootedTree};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of OPA: the optimized embedding plus what changed.
#[derive(Clone, Debug)]
pub struct OpaResult {
    /// The optimized (SFT-shaped) embedding.
    pub embedding: Embedding,
    /// Final delivery cost.
    pub cost: f64,
    /// Cost of the stage-1 input it improved upon.
    pub initial_cost: f64,
    /// Branch instances added, as `(stage, node)` pairs.
    pub added_instances: Vec<(usize, NodeId)>,
}

/// A branch of the SFT under construction: destinations grouped under one
/// connection node, plus the replicated instances serving them.
#[derive(Clone, Debug)]
struct Branch {
    /// The branch's connection node `c` in the original Steiner tree.
    conn: NodeId,
    /// Destination indices (into the task's list) served by this branch.
    dests: Vec<usize>,
    /// Replicated instances, pushed from stage `k` downwards.
    instances: Vec<(usize, NodeId)>,
    /// Whether the branch is still eligible for deeper replication.
    active: bool,
}

/// Tuning knobs for OPA — ablation hooks around the paper's rules.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpaConfig {
    /// Also optimize *dependent* paths (the paper excludes tree paths
    /// sharing an edge with the chain, §IV-C). Our reproduction found the
    /// exclusion blocks a share of genuine improvements (EXPERIMENTS.md,
    /// "SFT vs SFC"); the canonical-cost acceptance check keeps the
    /// relaxation safe — a candidate that double-counts shared edges is
    /// simply rejected.
    pub include_dependent: bool,
}

/// Runs OPA on a stage-1 chain solution with the paper's exact rules.
///
/// # Errors
///
/// Propagates conversion errors from the chain solution
/// ([`CoreError::Infeasible`], [`CoreError::Graph`]); a valid stage-1 input
/// always yields a valid embedding whose cost is ≤ the input's cost.
pub fn optimize(
    network: &Network,
    task: &MulticastTask,
    chain: &ChainSolution,
) -> Result<OpaResult, CoreError> {
    optimize_with(network, task, chain, &OpaConfig::default())
}

/// Runs OPA with explicit configuration (see [`OpaConfig`]).
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_with(
    network: &Network,
    task: &MulticastTask,
    chain: &ChainSolution,
    config: &OpaConfig,
) -> Result<OpaResult, CoreError> {
    let k = task.sfc().len();
    let dist = network.dist();
    let tree = RootedTree::from_edges(network.graph(), chain.last_node(), &chain.steiner_edges)?;

    // Physical edges of the embedded chain (segments 0..k-1).
    let mut chain_edges: BTreeSet<EdgeId> = BTreeSet::new();
    {
        let mut prev = task.source();
        for &n in &chain.placement {
            let path = dist.path(prev, n).ok_or_else(|| CoreError::Infeasible {
                reason: format!("no path between chain nodes {prev} and {n}"),
            })?;
            for e in network.graph().path_edges(&path)? {
                chain_edges.insert(e);
            }
            prev = n;
        }
    }

    // Classify destinations and group the independent ones into branches.
    let mut branches: Vec<Branch> = Vec::new();
    let mut branch_of: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut dest_branch: Vec<Option<usize>> = vec![None; task.destination_count()];
    let dest_set: BTreeSet<NodeId> = task.destinations().iter().copied().collect();
    for (di, &d) in task.destinations().iter().enumerate() {
        let rp = tree
            .path_from_root(d)
            .ok_or_else(|| CoreError::Infeasible {
                reason: format!("destination {d} not covered by the Steiner tree"),
            })?;
        let edges = tree
            .path_edges_from_root(d)
            .expect("destination is in tree");
        let independent = edges.iter().all(|e| !chain_edges.contains(e));
        if !independent && !config.include_dependent {
            continue;
        }
        // Connection node: first destination on the path below the root.
        let Some(&conn) = rp.iter().skip(1).find(|n| dest_set.contains(n)) else {
            continue; // d == root; trivially delivered by the main chain
        };
        let bi = *branch_of.entry(conn).or_insert_with(|| {
            branches.push(Branch {
                conn,
                dests: Vec::new(),
                instances: Vec::new(),
                active: true,
            });
            branches.len() - 1
        });
        branches[bi].dests.push(di);
        dest_branch[di] = Some(bi);
    }

    // Instance set in use (for capacity and setup dedup): chain placements
    // plus accepted branch instances.
    let mut used: BTreeSet<(VnfId, NodeId)> = chain
        .placement
        .iter()
        .enumerate()
        .map(|(i, &n)| (task.sfc().stage(i + 1), n))
        .collect();

    let build = |branches: &[Branch]| -> Result<Embedding, CoreError> {
        build_embedding(network, task, chain, &tree, branches, &dest_branch)
    };

    let initial_embedding = build(&branches)?;
    let initial_cost = delivery_cost(network, task, &initial_embedding)?.total();
    let mut best_embedding = initial_embedding;
    let mut best_cost = initial_cost;
    let mut added: Vec<(usize, NodeId)> = Vec::new();

    let servers: Vec<NodeId> = network.servers().collect();
    const EPS: f64 = 1e-9;

    for j in (1..=k).rev() {
        let mut any_added = false;
        for bi in 0..branches.len() {
            if !branches[bi].active {
                continue;
            }
            let f = task.sfc().stage(j);
            let demand = network.catalog().demand(f);
            let cb = branches[bi]
                .instances
                .last()
                .map_or(branches[bi].conn, |&(_, n)| n);
            let w_j = chain.placement[j - 1];
            let w_prev = if j == 1 {
                task.source()
            } else {
                chain.placement[j - 2]
            };
            let Some(current_serve) = dist.distance(cb, w_j) else {
                branches[bi].active = false;
                continue;
            };

            // Best replication target by the paper's local rule.
            let mut best_x: Option<(f64, NodeId)> = None;
            for &x in &servers {
                if x == w_j {
                    continue; // replicating onto the trunk is never a gain
                }
                let counted = network.is_deployed(f, x) || used.contains(&(f, x));
                if !counted && !fits(network, &used, x, demand) {
                    continue;
                }
                let (Some(d_in), Some(d_out)) = (dist.distance(cb, x), dist.distance(x, w_prev))
                else {
                    continue;
                };
                let setup = if counted {
                    0.0
                } else {
                    network.setup_cost(f, x)
                };
                let score = d_in + d_out + setup;
                if best_x.is_none_or(|(b, _)| score < b) {
                    best_x = Some((score, x));
                }
            }
            let Some((score, x)) = best_x else {
                branches[bi].active = false;
                continue;
            };
            if score >= current_serve - EPS {
                branches[bi].active = false;
                continue;
            }

            // Global acceptance check on the canonical cost.
            branches[bi].instances.push((j, x));
            let candidate = build(&branches)?;
            let cost = delivery_cost(network, task, &candidate)?.total();
            if cost < best_cost - EPS {
                best_cost = cost;
                best_embedding = candidate;
                used.insert((f, x));
                added.push((j, x));
                any_added = true;
            } else {
                branches[bi].instances.pop();
                branches[bi].active = false;
            }
        }
        if !any_added {
            break; // Theorem 4 justifies stopping at the first dry stage
        }
    }

    Ok(OpaResult {
        embedding: best_embedding,
        cost: best_cost,
        initial_cost,
        added_instances: added,
    })
}

/// Whether a new instance of demand `demand` fits on `x` given the
/// instances already in use.
fn fits(network: &Network, used: &BTreeSet<(VnfId, NodeId)>, x: NodeId, demand: f64) -> bool {
    let new_load: f64 = used
        .iter()
        .filter(|&&(f, n)| n == x && !network.is_deployed(f, n))
        .map(|&(f, _)| network.catalog().demand(f))
        .sum();
    network.deployed_load(x) + new_load + demand <= network.capacity(x) + 1e-9
}

/// Assembles the canonical embedding for the current branch state.
fn build_embedding(
    network: &Network,
    task: &MulticastTask,
    chain: &ChainSolution,
    tree: &RootedTree,
    branches: &[Branch],
    dest_branch: &[Option<usize>],
) -> Result<Embedding, CoreError> {
    let k = task.sfc().len();
    let dist = network.dist();
    let path_between = |a: NodeId, b: NodeId| -> Result<Vec<NodeId>, CoreError> {
        dist.path(a, b).ok_or_else(|| CoreError::Infeasible {
            reason: format!("no path between {a} and {b}"),
        })
    };

    let mut routes = Vec::with_capacity(task.destination_count());
    for (di, &d) in task.destinations().iter().enumerate() {
        // The instance node per stage for this destination.
        let mut nodes = Vec::with_capacity(k + 1);
        nodes.push(task.source());
        let branch = dest_branch[di].map(|bi| &branches[bi]);
        match branch {
            Some(b) if !b.instances.is_empty() => {
                // Branch instances are pushed from stage k downwards; the
                // lowest replicated stage attaches to the trunk below it.
                let lowest = b.instances.last().expect("non-empty").0;
                for j in 1..lowest {
                    nodes.push(chain.placement[j - 1]);
                }
                for &(j, x) in b.instances.iter().rev() {
                    debug_assert!(j >= lowest);
                    nodes.push(x);
                    let _ = j;
                }
            }
            _ => {
                for j in 1..=k {
                    nodes.push(chain.placement[j - 1]);
                }
            }
        }
        debug_assert_eq!(nodes.len(), k + 1);

        let mut segments = Vec::with_capacity(k + 1);
        for w in nodes.windows(2) {
            segments.push(path_between(w[0], w[1])?);
        }

        // Delivery segment: from the stage-k node to the destination.
        let last = *nodes.last().expect("chain nodes non-empty");
        let delivery = match branch {
            Some(b) if !b.instances.is_empty() => {
                // Ride to the branch's connection node, then down the tree.
                let mut path = path_between(last, b.conn)?;
                let rp = tree
                    .path_from_root(d)
                    .ok_or_else(|| CoreError::Infeasible {
                        reason: format!("destination {d} not covered by the Steiner tree"),
                    })?;
                let pos = rp
                    .iter()
                    .position(|&n| n == b.conn)
                    .expect("connection node lies on the destination's tree path");
                path.extend_from_slice(&rp[pos + 1..]);
                path
            }
            _ => tree
                .path_from_root(d)
                .ok_or_else(|| CoreError::Infeasible {
                    reason: format!("destination {d} not covered by the Steiner tree"),
                })?,
        };
        segments.push(delivery);
        routes.push(DestinationRoute::new(segments));
    }
    Ok(Embedding::new(routes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog};
    use sft_graph::Graph;

    /// A topology engineered so branching pays off: the source-side chain
    /// serves destination d1 cheaply, while d2 sits far away but next to a
    /// cheap server where replicating the last VNF wins.
    ///
    /// ```text
    ///  S=0 - 1(f1 chain) - 2(W, f2 chain) - 3 = d1
    ///                |                      (cheap local: 6 - 5 = d2)
    ///                +------- 5 ------------ 4=d2?
    /// ```
    fn branching_fixture() -> (Network, MulticastTask) {
        let mut g = Graph::new(7);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap(); // d1 near W
        g.add_edge(NodeId(2), NodeId(4), 20.0).unwrap(); // expensive to d2 from W
        g.add_edge(NodeId(1), NodeId(5), 1.0).unwrap(); // cheap server near d2
        g.add_edge(NodeId(5), NodeId(4), 1.0).unwrap();
        g.add_edge(NodeId(5), NodeId(6), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(4.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(4)],
            Sfc::new(vec![crate::vnf::VnfId(0), crate::vnf::VnfId(1)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    #[test]
    fn opa_never_increases_cost_and_stays_valid() {
        let (net, task) = branching_fixture();
        let chain = crate::msa::stage_one(&net, &task).unwrap();
        let base = chain.to_embedding(&net, &task).unwrap();
        let base_cost = delivery_cost(&net, &task, &base).unwrap().total();
        let out = optimize(&net, &task, &chain).unwrap();
        assert!(out.cost <= base_cost + 1e-9);
        assert!((out.initial_cost - base_cost).abs() < 1e-9);
        assert!(is_valid(&net, &task, &out.embedding));
        let recomputed = delivery_cost(&net, &task, &out.embedding).unwrap().total();
        assert!((recomputed - out.cost).abs() < 1e-9);
    }

    /// A Fig.-6-style instance where stage 1 is pinned (deployed VNFs) and
    /// the delivery tree must cross an expensive edge that replication
    /// avoids: S=0 -1- A=1 -7- W=2; W -1- d1=3; W -8- d2=4; A -1- 5 -1- d2.
    fn fig6_style() -> (Network, MulticastTask, ChainSolution) {
        let mut g = Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 7.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(4), 8.0).unwrap();
        g.add_edge(NodeId(1), NodeId(5), 1.0).unwrap();
        g.add_edge(NodeId(5), NodeId(4), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(4.0)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap()
            .deploy(crate::vnf::VnfId(0), NodeId(1))
            .unwrap()
            .deploy(crate::vnf::VnfId(1), NodeId(2))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(4)],
            Sfc::new(vec![crate::vnf::VnfId(0), crate::vnf::VnfId(1)]).unwrap(),
        )
        .unwrap();
        let chain = ChainSolution {
            placement: vec![NodeId(1), NodeId(2)],
            steiner_edges: vec![
                net.graph().find_edge(NodeId(2), NodeId(3)).unwrap(),
                net.graph().find_edge(NodeId(2), NodeId(4)).unwrap(),
            ],
        };
        (net, task, chain)
    }

    #[test]
    fn opa_replicates_when_branching_wins() {
        let (net, task, chain) = fig6_style();
        let out = optimize(&net, &task, &chain).unwrap();
        // Stage-1 cost: seg0=1, seg1=7, delivery 1+8 -> 17 (setup 0).
        assert!((out.initial_cost - 17.0).abs() < 1e-9);
        // Replicating f2 near d2 (node 4 or 5) re-routes its delivery off
        // the cost-8 edge: 1 + (7 + 1 + 1) + 1 + setup 2 = 13.
        assert_eq!(out.added_instances.len(), 1);
        assert_eq!(out.added_instances[0].0, 2, "replication at stage 2");
        assert!((out.cost - 13.0).abs() < 1e-9, "cost {}", out.cost);
        assert!(is_valid(&net, &task, &out.embedding));
    }

    #[test]
    fn opa_classifies_dependent_paths_and_leaves_them_alone() {
        let (net, task, chain) = fig6_style();
        let out = optimize(&net, &task, &chain).unwrap();
        // d1 (node 3) rides the trunk: its route must end with W -> d1 and
        // its stage-2 instance must still be W (node 2).
        let r1 = &out.embedding.routes()[0];
        assert_eq!(r1.instance_node(2), Some(NodeId(2)));
        // d2 is served by the replicated instance, not W.
        let r2 = &out.embedding.routes()[1];
        assert_ne!(r2.instance_node(2), Some(NodeId(2)));
    }

    #[test]
    fn theorem4_successors_have_at_least_as_many_instances() {
        let (net, task) = branching_fixture();
        let chain = crate::msa::stage_one(&net, &task).unwrap();
        let out = optimize(&net, &task, &chain).unwrap();
        let k = task.sfc().len();
        let mut counts = vec![0usize; k + 1];
        for (stage, _) in out.embedding.instances() {
            counts[stage] += 1;
        }
        for j in 1..k {
            assert!(
                counts[j] <= counts[j + 1],
                "stage {j} has {} instances but stage {} has {}",
                counts[j],
                j + 1,
                counts[j + 1]
            );
        }
    }

    #[test]
    fn opa_is_a_noop_when_chain_already_serves_everyone_well() {
        // A simple line: no branching can ever help.
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(1))
            .all_servers(2.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![crate::vnf::VnfId(0)]).unwrap(),
        )
        .unwrap();
        let chain = crate::msa::stage_one(&net, &task).unwrap();
        let out = optimize(&net, &task, &chain).unwrap();
        assert!(out.added_instances.is_empty());
        assert!((out.cost - out.initial_cost).abs() < 1e-12);
    }

    /// Two-level replication: a side corridor S-A-P-Q-d2 lets OPA first
    /// replicate the last VNF near d2 (stage 3) and then the middle VNF at
    /// the corridor (stage 2). Hand-computed costs: stage-1 36, one level
    /// 28, two levels 23.
    fn two_level_fixture() -> (Network, MulticastTask, ChainSolution) {
        let mut g = sft_graph::Graph::new(8);
        let e = |g: &mut sft_graph::Graph, u: usize, v: usize, w: f64| {
            g.add_edge(NodeId(u), NodeId(v), w).unwrap();
        };
        e(&mut g, 0, 1, 1.0); // S - A
        e(&mut g, 1, 2, 7.0); // A - B
        e(&mut g, 2, 3, 7.0); // B - W
        e(&mut g, 3, 4, 1.0); // W - d1
        e(&mut g, 3, 5, 20.0); // W - d2 (expensive direct)
        e(&mut g, 1, 6, 1.0); // A - P
        e(&mut g, 6, 7, 1.0); // P - Q
        e(&mut g, 7, 5, 1.0); // Q - d2 (cheap corridor)
        let net = Network::builder(g, crate::vnf::VnfCatalog::uniform(3))
            .all_servers(4.0)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap()
            .deploy(crate::vnf::VnfId(0), NodeId(1))
            .unwrap()
            .deploy(crate::vnf::VnfId(1), NodeId(2))
            .unwrap()
            .deploy(crate::vnf::VnfId(2), NodeId(3))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(4), NodeId(5)],
            Sfc::new(vec![
                crate::vnf::VnfId(0),
                crate::vnf::VnfId(1),
                crate::vnf::VnfId(2),
            ])
            .unwrap(),
        )
        .unwrap();
        let chain = ChainSolution {
            placement: vec![NodeId(1), NodeId(2), NodeId(3)],
            steiner_edges: vec![
                net.graph().find_edge(NodeId(3), NodeId(4)).unwrap(),
                net.graph().find_edge(NodeId(3), NodeId(5)).unwrap(),
            ],
        };
        (net, task, chain)
    }

    #[test]
    fn opa_recursion_replicates_two_levels_deep() {
        let (net, task, chain) = two_level_fixture();
        let out = optimize(&net, &task, &chain).unwrap();
        assert!(
            (out.initial_cost - 36.0).abs() < 1e-9,
            "{}",
            out.initial_cost
        );
        assert!((out.cost - 23.0).abs() < 1e-9, "{}", out.cost);
        let stages: Vec<usize> = out.added_instances.iter().map(|&(j, _)| j).collect();
        assert_eq!(stages, vec![3, 2], "inverted-order two-level replication");
        assert!(is_valid(&net, &task, &out.embedding));
        // The logical tree now has two instances at stages 2 and 3.
        let tree = crate::SftTree::extract(&task, &out.embedding).unwrap();
        assert_eq!(tree.instance_count(3), 2);
        assert_eq!(tree.instance_count(2), 2);
        assert_eq!(tree.instance_count(1), 1);
        assert!(tree.satisfies_theorem4());
    }

    #[test]
    fn include_dependent_never_hurts_and_sometimes_helps() {
        // On the Fig.-6 fixture both variants agree; on workloads where the
        // dependence rule blocks an improvement, the permissive variant may
        // only be cheaper — never more expensive (global check guards it).
        let (net, task, chain) = fig6_style();
        let strict = optimize(&net, &task, &chain).unwrap();
        let permissive = optimize_with(
            &net,
            &task,
            &chain,
            &OpaConfig {
                include_dependent: true,
            },
        )
        .unwrap();
        assert!(permissive.cost <= strict.cost + 1e-9);
        assert!(is_valid(&net, &task, &permissive.embedding));
    }

    #[test]
    fn opa_respects_capacity_when_replicating() {
        // Same fixture but with node 5 already full: replication must go
        // elsewhere or not happen; capacity must hold either way.
        let mut g = Graph::new(7);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(4), 20.0).unwrap();
        g.add_edge(NodeId(1), NodeId(5), 1.0).unwrap();
        g.add_edge(NodeId(5), NodeId(4), 1.0).unwrap();
        g.add_edge(NodeId(5), NodeId(6), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(1.0)
            .unwrap()
            .uniform_setup_cost(1.0)
            .unwrap()
            .deploy(crate::vnf::VnfId(2), NodeId(5)) // fills node 5
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(4)],
            Sfc::new(vec![crate::vnf::VnfId(0), crate::vnf::VnfId(1)]).unwrap(),
        )
        .unwrap();
        let chain = crate::msa::stage_one(&net, &task).unwrap();
        let out = optimize(&net, &task, &chain).unwrap();
        assert!(is_valid(&net, &task, &out.embedding));
    }
}
