//! Stage-1 baseline — the Randomly Selecting Algorithm (RSA, paper §V-A).
//!
//! "RSA randomly selects VNFs that have been deployed. While for those VNFs
//! that have not been deployed, RSA randomly selects nodes with sufficient
//! capacities to deploy them. After all requested VNFs having been
//! deployed, RSA connects them in order with the shortest paths." The
//! second stage (OPA) is shared with MSA and SCA.

use crate::chain::{new_instance_usage, repair_capacity, ChainSolution};
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use rand::{Rng, RngExt};
use sft_graph::NodeId;

/// Runs RSA stage 1 with the caller's RNG (pass a seeded
/// `rand::rngs::StdRng` for reproducible experiments).
///
/// # Errors
///
/// * Task/network mismatches ([`CoreError::NodeOutOfBounds`],
///   [`CoreError::VnfOutOfBounds`]).
/// * [`CoreError::Infeasible`] when no feasible placement or delivery tree
///   exists.
pub fn stage_one<R: Rng + ?Sized>(
    network: &Network,
    task: &MulticastTask,
    rng: &mut R,
) -> Result<ChainSolution, CoreError> {
    task.check_against(network)?;
    let sfc = task.sfc();
    let k = sfc.len();
    let servers: Vec<NodeId> = network.servers().collect();
    if servers.is_empty() {
        return Err(CoreError::Infeasible {
            reason: "network has no server nodes".into(),
        });
    }

    let mut placement: Vec<NodeId> = Vec::with_capacity(k);
    for j in 1..=k {
        let f = sfc.stage(j);
        let deployed: Vec<NodeId> = servers
            .iter()
            .copied()
            .filter(|&v| network.is_deployed(f, v))
            .collect();
        let choice = if deployed.is_empty() {
            // Random among servers that can still fit a new instance given
            // what we've placed so far.
            let feasible: Vec<NodeId> = servers
                .iter()
                .copied()
                .filter(|&v| {
                    let mut trial = placement.clone();
                    trial.push(v);
                    let prefix =
                        crate::vnf::Sfc::new(sfc.stages()[..j].to_vec()).expect("non-empty prefix");
                    new_instance_usage(network, &prefix, &trial)
                        .iter()
                        .all(|(&n, &u)| network.deployed_load(n) + u <= network.capacity(n) + 1e-9)
                })
                .collect();
            if feasible.is_empty() {
                return Err(CoreError::Infeasible {
                    reason: format!("RSA found no feasible host for stage {j}"),
                });
            }
            feasible[rng.random_range(0..feasible.len())]
        } else {
            deployed[rng.random_range(0..deployed.len())]
        };
        placement.push(choice);
    }

    repair_capacity(network, task.source(), sfc, &mut placement)?;
    let w = *placement.last().expect("non-empty chain");
    let mut terminals = vec![w];
    terminals.extend_from_slice(task.destinations());
    let tree = network
        .graph()
        .steiner_kmb_with_provider(network.dist(), &terminals, None)?;
    Ok(ChainSolution {
        placement,
        steiner_edges: tree.edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sft_graph::Graph;

    fn ring_net(capacity: f64, deployments: &[(usize, usize)]) -> Network {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap();
        }
        let mut b = Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap();
        for &(f, n) in deployments {
            b = b.deploy(VnfId(f), NodeId(n)).unwrap();
        }
        b.build().unwrap()
    }

    fn a_task() -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn produces_feasible_embeddings_across_seeds() {
        let net = ring_net(3.0, &[]);
        let task = a_task();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let chain = stage_one(&net, &task, &mut rng).unwrap();
            let emb = chain.to_embedding(&net, &task).unwrap();
            assert!(is_valid(&net, &task, &emb), "seed {seed}");
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let net = ring_net(3.0, &[]);
        let task = a_task();
        let a = stage_one(&net, &task, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = stage_one(&net, &task, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn always_reuses_deployed_instances() {
        // f0 deployed only on node 5: RSA must pick it for stage 1.
        let net = ring_net(3.0, &[(0, 5)]);
        let task = a_task();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let chain = stage_one(&net, &task, &mut rng).unwrap();
            assert_eq!(chain.placement[0], NodeId(5), "seed {seed}");
        }
    }

    #[test]
    fn explores_different_placements() {
        let net = ring_net(3.0, &[]);
        let task = a_task();
        let placements: std::collections::BTreeSet<Vec<NodeId>> = (0..20)
            .map(|s| {
                stage_one(&net, &task, &mut StdRng::seed_from_u64(s))
                    .unwrap()
                    .placement
            })
            .collect();
        assert!(placements.len() > 1, "randomness should vary placements");
    }

    #[test]
    fn infeasible_with_zero_capacity() {
        let net = ring_net(0.0, &[]);
        let task = a_task();
        assert!(matches!(
            stage_one(&net, &task, &mut StdRng::seed_from_u64(0)),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
