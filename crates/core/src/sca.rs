//! Stage-1 baseline — the minimum Set Cover Algorithm (SCA, paper §V-A).
//!
//! "SCA tries to occupy as few nodes as possible when embedding the SFC in
//! the first stage. It chooses the minimum number of nodes to cover as many
//! VNFs as possible. If some VNF has no existing instance in the network,
//! SCA will deploy a new instance upon the nearest node to the predecessor
//! VNF." The second stage (OPA) is shared with MSA and RSA.

use crate::chain::{new_instance_usage, repair_capacity, ChainSolution};
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::NodeId;

/// Runs SCA stage 1.
///
/// # Errors
///
/// * Task/network mismatches ([`CoreError::NodeOutOfBounds`],
///   [`CoreError::VnfOutOfBounds`]).
/// * [`CoreError::Infeasible`] when no feasible placement or delivery tree
///   exists.
pub fn stage_one(network: &Network, task: &MulticastTask) -> Result<ChainSolution, CoreError> {
    task.check_against(network)?;
    let sfc = task.sfc();
    let k = sfc.len();
    let servers: Vec<NodeId> = network.servers().collect();
    if servers.is_empty() {
        return Err(CoreError::Infeasible {
            reason: "network has no server nodes".into(),
        });
    }

    // Greedy set cover: repeatedly grab the server whose deployed instances
    // cover the most still-uncovered chain stages.
    let mut assignment: Vec<Option<NodeId>> = vec![None; k];
    loop {
        let mut best: Option<(usize, NodeId, Vec<usize>)> = None;
        for &v in &servers {
            let covered: Vec<usize> = (1..=k)
                .filter(|&j| assignment[j - 1].is_none() && network.is_deployed(sfc.stage(j), v))
                .collect();
            if covered.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|(n, _, _)| covered.len() > *n) {
                best = Some((covered.len(), v, covered));
            }
        }
        let Some((_, v, covered)) = best else { break };
        for j in covered {
            assignment[j - 1] = Some(v);
        }
    }

    // Remaining stages: place each on the nearest capacity-feasible server
    // to the predecessor stage's node, in chain order.
    let dist = network.dist();
    let mut placement: Vec<NodeId> = Vec::with_capacity(k);
    for j in 1..=k {
        match assignment[j - 1] {
            Some(v) => placement.push(v),
            None => {
                let f = sfc.stage(j);
                let prev = if j == 1 {
                    task.source()
                } else {
                    placement[j - 2]
                };
                // Capacity feasibility accounts for what we placed so far.
                let mut trial = placement.clone();
                trial.push(NodeId(0)); // placeholder, replaced per candidate
                let mut best: Option<(f64, f64, NodeId)> = None;
                for &v in &servers {
                    *trial.last_mut().expect("placeholder") = v;
                    let prefix_sfc =
                        crate::vnf::Sfc::new(sfc.stages()[..j].to_vec()).expect("non-empty prefix");
                    let usage = new_instance_usage(network, &prefix_sfc, &trial);
                    let fits = usage
                        .iter()
                        .all(|(&n, &u)| network.deployed_load(n) + u <= network.capacity(n) + 1e-9);
                    if !fits {
                        continue;
                    }
                    let Some(d) = dist.distance(prev, v) else {
                        continue;
                    };
                    let setup = network.effective_setup_cost(f, v);
                    // Nearest first; ties broken by cheaper setup.
                    if best.is_none_or(|(bd, bs, _)| d < bd || (d == bd && setup < bs)) {
                        best = Some((d, setup, v));
                    }
                }
                let Some((_, _, v)) = best else {
                    return Err(CoreError::Infeasible {
                        reason: format!("SCA found no feasible host for stage {j}"),
                    });
                };
                placement.push(v);
            }
        }
    }

    // The cover may have over-packed reused nodes with *new* stages; run the
    // shared repair to restore feasibility, then hang the delivery tree.
    repair_capacity(network, task.source(), sfc, &mut placement)?;
    let w = *placement.last().expect("non-empty chain");
    let mut terminals = vec![w];
    terminals.extend_from_slice(task.destinations());
    let tree = network
        .graph()
        .steiner_kmb_with_provider(network.dist(), &terminals, None)?;
    Ok(ChainSolution {
        placement,
        steiner_edges: tree.edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::delivery_cost;
    use crate::validate::is_valid;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::Graph;

    fn ring_net(deployments: &[(usize, usize)]) -> Network {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap();
        }
        let mut b = Network::builder(g, VnfCatalog::uniform(4))
            .all_servers(4.0)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap();
        for &(f, n) in deployments {
            b = b.deploy(VnfId(f), NodeId(n)).unwrap();
        }
        b.build().unwrap()
    }

    fn a_task() -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(5)],
            Sfc::new(vec![VnfId(0), VnfId(1), VnfId(2)]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn covers_with_deployed_instances_first() {
        // Node 2 hosts the whole chain pre-deployed: SCA must use it for
        // every stage (maximum cover, zero setup).
        let net = ring_net(&[(0, 2), (1, 2), (2, 2)]);
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        assert_eq!(chain.placement, vec![NodeId(2); 3]);
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
        assert_eq!(delivery_cost(&net, &task, &emb).unwrap().setup, 0.0);
    }

    #[test]
    fn prefers_bigger_covers() {
        // Node 1 covers one stage, node 4 covers two: greedy takes node 4
        // for stages 1 and 3, node 1 for stage 2.
        let net = ring_net(&[(0, 4), (2, 4), (1, 1)]);
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        assert_eq!(chain.placement[0], NodeId(4));
        assert_eq!(chain.placement[2], NodeId(4));
        assert_eq!(chain.placement[1], NodeId(1));
    }

    #[test]
    fn deploys_missing_vnfs_near_predecessor() {
        // Nothing deployed: every stage is placed nearest to its
        // predecessor, which collapses onto the source's node ring-wise.
        let net = ring_net(&[]);
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }

    #[test]
    fn feasible_under_tight_capacity() {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(4))
            .all_servers(1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = a_task();
        let chain = stage_one(&net, &task).unwrap();
        let emb = chain.to_embedding(&net, &task).unwrap();
        assert!(is_valid(&net, &task, &emb));
    }
}
