//! Sequential multicast embedding with instance accretion (§IV-D at
//! scale).
//!
//! The paper's "network with deployed VNFs" situation arises from running
//! tasks one after another while instances stay deployed ("like some
//! public clouds handle base load by physical hardware and spillover load
//! by virtual service instances"). [`SequentialEmbedder`] owns a network,
//! embeds incoming tasks with the two-stage algorithm, commits each
//! result's instances, and keeps per-task statistics — so the reuse
//! benefit can be measured across a task sequence.

use crate::api::{solve_with_rng, SolveResult, StageTwo, Strategy};
use crate::network::Network;
use crate::task::MulticastTask;
use crate::CoreError;
use rand::Rng;

/// Statistics recorded for one embedded task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Final traffic delivery cost.
    pub cost: f64,
    /// Setup component of the cost (shrinks as the network fills).
    pub setup: f64,
    /// Number of new instances this task had to place.
    pub new_instances: usize,
    /// Number of pre-existing instances it reused.
    pub reused_instances: usize,
}

/// Embeds a sequence of multicast tasks against an evolving network.
#[derive(Clone, Debug)]
pub struct SequentialEmbedder {
    network: Network,
    strategy: Strategy,
    history: Vec<TaskRecord>,
}

impl SequentialEmbedder {
    /// Creates an embedder that owns `network` and solves every task with
    /// `strategy` (+ OPA).
    pub fn new(network: Network, strategy: Strategy) -> Self {
        SequentialEmbedder {
            network,
            strategy,
            history: Vec::new(),
        }
    }

    /// The current network state (with all committed instances).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Records of all embedded tasks, in arrival order.
    pub fn history(&self) -> &[TaskRecord] {
        &self.history
    }

    /// Embeds one task, commits its new instances, and records stats.
    ///
    /// # Errors
    ///
    /// Solve errors ([`CoreError::Infeasible`] once capacity runs dry,
    /// id mismatches); the network is only mutated on success.
    pub fn embed<R: Rng + ?Sized>(
        &mut self,
        task: &MulticastTask,
        rng: &mut R,
    ) -> Result<SolveResult, CoreError> {
        let result = solve_with_rng(&self.network, task, self.strategy, StageTwo::Opa, rng)?;
        let typed = result.embedding.typed_instances(task);
        let new = result.embedding.new_instances(&self.network, task);
        let record = TaskRecord {
            cost: result.cost.total(),
            setup: result.cost.setup,
            new_instances: new.len(),
            reused_instances: typed.len() - new.len(),
        };
        self.network.commit_embedding(task, &result.embedding)?;
        self.history.push(record);
        Ok(result)
    }

    /// Fraction of instance uses that were reuses, across the history
    /// (0.0 when nothing has been embedded).
    pub fn reuse_ratio(&self) -> f64 {
        let (new, reused) = self.history.iter().fold((0usize, 0usize), |(n, r), t| {
            (n + t.new_instances, r + t.reused_instances)
        });
        if new + reused == 0 {
            0.0
        } else {
            reused as f64 / (new + reused) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sft_graph::NodeId;

    fn ring_network(n: usize, capacity: f64) -> Network {
        let mut g = sft_graph::Graph::new(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0).unwrap();
        }
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(3.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn random_task<R: Rng>(n: usize, rng: &mut R) -> MulticastTask {
        let source = NodeId(rng.random_range(0..n));
        let mut dests = Vec::new();
        while dests.len() < 2 {
            let d = NodeId(rng.random_range(0..n));
            if d != source && !dests.contains(&d) {
                dests.push(d);
            }
        }
        MulticastTask::new(source, dests, Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap()).unwrap()
    }

    #[test]
    fn instances_accrete_and_reuse_grows() {
        let mut emb = SequentialEmbedder::new(ring_network(10, 3.0), Strategy::Msa);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..8 {
            let task = random_task(10, &mut rng);
            emb.embed(&task, &mut rng).unwrap();
        }
        assert_eq!(emb.history().len(), 8);
        // Later tasks must reuse: the ring only has 2 chain types deployed
        // everywhere after a few tasks.
        assert!(emb.reuse_ratio() > 0.3, "reuse ratio {}", emb.reuse_ratio());
        let first_setup = emb.history()[0].setup;
        let last_setup = emb.history().last().unwrap().setup;
        assert!(last_setup <= first_setup, "setup must not grow over time");
    }

    #[test]
    fn repeating_the_same_task_pays_setup_once() {
        let mut emb = SequentialEmbedder::new(ring_network(8, 2.0), Strategy::Msa);
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(5)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let first = emb.embed(&task, &mut rng).unwrap();
        assert!(first.cost.setup > 0.0);
        let second = emb.embed(&task, &mut rng).unwrap();
        assert_eq!(second.cost.setup, 0.0, "second run reuses everything");
        assert!(second.cost.total() <= first.cost.total());
        assert_eq!(emb.history()[1].new_instances, 0);
    }

    #[test]
    fn failure_leaves_network_unchanged() {
        // Zero capacity: embedding must fail and commit nothing.
        let mut emb = SequentialEmbedder::new(ring_network(6, 0.0), Strategy::Msa);
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(emb.embed(&task, &mut rng).is_err());
        assert!(emb.history().is_empty());
        assert_eq!(emb.reuse_ratio(), 0.0);
        for v in emb.network().graph().nodes() {
            assert_eq!(emb.network().deployed_load(v), 0.0);
        }
    }
}
