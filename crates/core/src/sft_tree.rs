//! The *logical* service function tree of an embedding (paper Fig. 5).
//!
//! An [`Embedding`] stores physical walks; this module recovers the
//! logical structure the paper draws: nodes are VNF instances (plus the
//! source and the destinations), edges are "serves next stage" relations.
//! Useful for inspection, for asserting Theorem 4 structurally, and for
//! DOT export ([`crate::viz`]).

use crate::embedding::Embedding;
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::NodeId;
use std::collections::BTreeMap;

/// A node of the logical SFT.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SftNode {
    /// The multicast source.
    Source(NodeId),
    /// A VNF instance: 1-based chain stage and hosting server.
    Instance {
        /// Chain stage (1-based).
        stage: usize,
        /// Hosting server node.
        node: NodeId,
    },
    /// A destination endpoint.
    Destination(NodeId),
}

/// The logical service function tree: instances layered by stage, with
/// parent links following the flow (source → stage 1 → … → destination).
#[derive(Clone, Debug)]
pub struct SftTree {
    edges: Vec<(SftNode, SftNode)>,
    instance_counts: Vec<usize>,
}

impl SftTree {
    /// Extracts the logical tree of an embedding.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidTask`] if the embedding's shape does not match
    /// the task (wrong route or segment counts).
    pub fn extract(task: &MulticastTask, embedding: &Embedding) -> Result<Self, CoreError> {
        let k = task.sfc().len();
        if embedding.routes().len() != task.destination_count() {
            return Err(CoreError::InvalidTask {
                reason: "embedding has the wrong number of routes".into(),
            });
        }
        let mut edges: BTreeMap<(SftNode, SftNode), ()> = BTreeMap::new();
        for (di, route) in embedding.routes().iter().enumerate() {
            if route.segments().len() != k + 1 {
                return Err(CoreError::InvalidTask {
                    reason: format!("route {di} has the wrong number of segments"),
                });
            }
            let mut prev = SftNode::Source(task.source());
            for stage in 1..=k {
                let node = route
                    .instance_node(stage)
                    .ok_or_else(|| CoreError::InvalidTask {
                        reason: format!("route {di} lacks a stage-{stage} instance"),
                    })?;
                let cur = SftNode::Instance { stage, node };
                edges.insert((prev, cur), ());
                prev = cur;
            }
            let dest = SftNode::Destination(task.destinations()[di]);
            edges.insert((prev, dest), ());
        }
        let mut instance_counts = vec![0usize; k + 1];
        let mut seen = BTreeMap::new();
        for (_, to) in edges.keys() {
            if let SftNode::Instance { stage, node } = to {
                if seen.insert((*stage, *node), ()).is_none() {
                    instance_counts[*stage] += 1;
                }
            }
        }
        Ok(SftTree {
            edges: edges.into_keys().collect(),
            instance_counts,
        })
    }

    /// The logical edges, sorted.
    pub fn edges(&self) -> &[(SftNode, SftNode)] {
        &self.edges
    }

    /// Number of distinct instances serving each stage
    /// (`instance_count(0)` is always 0; stages are 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `stage` exceeds the chain length.
    pub fn instance_count(&self, stage: usize) -> usize {
        self.instance_counts[stage]
    }

    /// Whether the instance counts are non-decreasing along the chain —
    /// the structural property of Theorem 4 ("the number of predecessor
    /// VNFs is smaller than [or equal to] that of successor VNFs").
    pub fn satisfies_theorem4(&self) -> bool {
        self.instance_counts
            .windows(2)
            .skip(1) // stage 0 is the source, not an instance layer
            .all(|w| w[0] <= w[1])
    }

    /// Whether the logical structure branches anywhere (any node with two
    /// or more children) — i.e. is a genuine *tree* rather than a chain.
    pub fn is_branching(&self) -> bool {
        let mut out_degree: BTreeMap<&SftNode, usize> = BTreeMap::new();
        for (from, _) in &self.edges {
            *out_degree.entry(from).or_insert(0) += 1;
        }
        out_degree.values().any(|&d| d > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::DestinationRoute;
    use crate::vnf::{Sfc, VnfId};

    fn task2() -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(5), NodeId(6)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap()
    }

    /// Chain-shaped: both destinations share the instances.
    fn chain_embedding() -> Embedding {
        let mk = |d: usize| {
            DestinationRoute::new(vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(d)],
            ])
        };
        Embedding::new(vec![mk(5), mk(6)])
    }

    /// Tree-shaped: destination 6 is served by a replicated stage-2
    /// instance on node 3.
    fn branched_embedding() -> Embedding {
        Embedding::new(vec![
            DestinationRoute::new(vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(5)],
            ]),
            DestinationRoute::new(vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(3)],
                vec![NodeId(3), NodeId(6)],
            ]),
        ])
    }

    #[test]
    fn chain_extracts_one_instance_per_stage() {
        let t = SftTree::extract(&task2(), &chain_embedding()).unwrap();
        assert_eq!(t.instance_count(1), 1);
        assert_eq!(t.instance_count(2), 1);
        assert!(t.satisfies_theorem4());
        // source->f1, f1->f2, f2->d5, f2->d6.
        assert_eq!(t.edges().len(), 4);
        assert!(t.is_branching(), "the fan-out to two destinations branches");
    }

    #[test]
    fn branched_embedding_shows_replication() {
        let t = SftTree::extract(&task2(), &branched_embedding()).unwrap();
        assert_eq!(t.instance_count(1), 1);
        assert_eq!(t.instance_count(2), 2);
        assert!(t.satisfies_theorem4());
        assert!(t.is_branching());
        assert!(t.edges().contains(&(
            SftNode::Instance {
                stage: 1,
                node: NodeId(1)
            },
            SftNode::Instance {
                stage: 2,
                node: NodeId(3)
            }
        )));
    }

    #[test]
    fn theorem4_violation_is_detectable() {
        // Artificial: two stage-1 instances feeding one stage-2 instance.
        let emb = Embedding::new(vec![
            DestinationRoute::new(vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(5)],
            ]),
            DestinationRoute::new(vec![
                vec![NodeId(0), NodeId(3)],
                vec![NodeId(3), NodeId(2)],
                vec![NodeId(2), NodeId(6)],
            ]),
        ]);
        let t = SftTree::extract(&task2(), &emb).unwrap();
        assert_eq!(t.instance_count(1), 2);
        assert_eq!(t.instance_count(2), 1);
        assert!(!t.satisfies_theorem4());
    }

    #[test]
    fn mismatched_embeddings_are_rejected() {
        let t = task2();
        let emb = Embedding::new(vec![]);
        assert!(matches!(
            SftTree::extract(&t, &emb),
            Err(CoreError::InvalidTask { .. })
        ));
        let wrong_segments = Embedding::new(vec![
            DestinationRoute::new(vec![vec![NodeId(0)]]),
            DestinationRoute::new(vec![vec![NodeId(0)]]),
        ]);
        assert!(matches!(
            SftTree::extract(&t, &wrong_segments),
            Err(CoreError::InvalidTask { .. })
        ));
    }

    #[test]
    fn real_pipeline_produces_theorem4_trees() {
        // End-to-end: the OPA fixture from the opa module must extract.
        let mut g = sft_graph::Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 7.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(4), 8.0).unwrap();
        g.add_edge(NodeId(1), NodeId(5), 1.0).unwrap();
        g.add_edge(NodeId(5), NodeId(4), 1.0).unwrap();
        let net = crate::Network::builder(g, crate::VnfCatalog::uniform(2))
            .all_servers(4.0)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(1))
            .unwrap()
            .deploy(VnfId(1), NodeId(2))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(4)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        let chain = crate::chain::ChainSolution {
            placement: vec![NodeId(1), NodeId(2)],
            steiner_edges: vec![
                net.graph().find_edge(NodeId(2), NodeId(3)).unwrap(),
                net.graph().find_edge(NodeId(2), NodeId(4)).unwrap(),
            ],
        };
        let out = crate::opa::optimize(&net, &task, &chain).unwrap();
        let t = SftTree::extract(&task, &out.embedding).unwrap();
        assert!(t.satisfies_theorem4());
        assert_eq!(t.instance_count(2), 2, "OPA replicated the last stage");
    }
}
