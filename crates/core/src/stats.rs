//! Solution statistics: everything an operator would want to know about
//! an embedding at a glance, collected in one pass.

use crate::cost::{delivery_cost, segment_link_costs, CostBreakdown};
use crate::embedding::Embedding;
use crate::network::Network;
use crate::sft_tree::SftTree;
use crate::task::MulticastTask;
use crate::CoreError;

/// Aggregated statistics of one embedding.
#[derive(Clone, Debug)]
pub struct EmbeddingStats {
    /// Full cost breakdown.
    pub cost: CostBreakdown,
    /// Link cost per chain segment (`0..=k`).
    pub segment_link_costs: Vec<f64>,
    /// Distinct `(type, node)` instances in use.
    pub instances_used: usize,
    /// Of those, how many had to be newly placed.
    pub instances_new: usize,
    /// Physical hops of the longest source→destination walk.
    pub max_route_hops: usize,
    /// Mean physical hops across destinations.
    pub mean_route_hops: f64,
    /// Whether the logical structure branches (a true SFT, not a chain).
    pub is_branching: bool,
    /// Number of distinct instances per stage (index 0 unused).
    pub instances_per_stage: Vec<usize>,
}

impl EmbeddingStats {
    /// Collects statistics for an embedding.
    ///
    /// # Errors
    ///
    /// Propagates cost-model and tree-extraction errors for malformed
    /// embeddings.
    pub fn collect(
        network: &Network,
        task: &MulticastTask,
        embedding: &Embedding,
    ) -> Result<Self, CoreError> {
        let cost = delivery_cost(network, task, embedding)?;
        let segment_link_costs = segment_link_costs(network, task, embedding)?;
        let typed = embedding.typed_instances(task);
        let new = embedding.new_instances(network, task);
        let tree = SftTree::extract(task, embedding)?;

        let mut max_hops = 0usize;
        let mut total_hops = 0usize;
        for route in embedding.routes() {
            let hops: usize = route
                .segments()
                .iter()
                .map(|s| s.len().saturating_sub(1))
                .sum();
            max_hops = max_hops.max(hops);
            total_hops += hops;
        }
        let k = task.sfc().len();
        Ok(EmbeddingStats {
            cost,
            segment_link_costs,
            instances_used: typed.len(),
            instances_new: new.len(),
            max_route_hops: max_hops,
            mean_route_hops: total_hops as f64 / embedding.routes().len().max(1) as f64,
            is_branching: tree.is_branching(),
            instances_per_stage: (0..=k).map(|j| tree.instance_count(j)).collect(),
        })
    }

    /// Reuse ratio: fraction of used instances that were pre-deployed.
    pub fn reuse_ratio(&self) -> f64 {
        if self.instances_used == 0 {
            0.0
        } else {
            (self.instances_used - self.instances_new) as f64 / self.instances_used as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use crate::{solve, StageTwo, Strategy};
    use sft_graph::{Graph, NodeId};

    fn fixture() -> (Network, MulticastTask) {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0 + i as f64 * 0.2)
                .unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(2))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3), NodeId(5)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (net, task) = fixture();
        let r = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        let s = EmbeddingStats::collect(&net, &task, &r.embedding).unwrap();
        // Cost agrees with the solve result.
        assert!((s.cost.total() - r.cost.total()).abs() < 1e-9);
        // Segment costs sum to the link total.
        let sum: f64 = s.segment_link_costs.iter().sum();
        assert!((sum - s.cost.link).abs() < 1e-9);
        assert_eq!(s.segment_link_costs.len(), task.sfc().len() + 1);
        // Instance accounting.
        assert!(s.instances_new <= s.instances_used);
        assert!(s.reuse_ratio() >= 0.0 && s.reuse_ratio() <= 1.0);
        // Hop accounting.
        assert!(s.mean_route_hops <= s.max_route_hops as f64 + 1e-9);
        assert!(s.max_route_hops >= 1);
        // Stage layering matches the chain length.
        assert_eq!(s.instances_per_stage.len(), task.sfc().len() + 1);
        assert_eq!(s.instances_per_stage[0], 0);
    }

    #[test]
    fn reuse_ratio_reflects_deployments() {
        let (net, task) = fixture();
        let r = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        let s = EmbeddingStats::collect(&net, &task, &r.embedding).unwrap();
        // f0 is deployed on node 2; if the solver used it, reuse > 0.
        let used_deployed = r
            .embedding
            .typed_instances(&task)
            .iter()
            .any(|&(f, n)| net.is_deployed(f, n));
        assert_eq!(used_deployed, s.reuse_ratio() > 0.0);
    }
}
