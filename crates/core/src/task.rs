//! Multicast tasks (the paper's Definition 2).
//!
//! A task `δ = (S, D, ℓ)` asks for one flow from the source `S` to every
//! destination in `D`, each traversing the SFC `ℓ` in order.

use crate::network::Network;
use crate::vnf::Sfc;
use crate::CoreError;
use sft_graph::NodeId;

/// A multicast task `δ = (S, D, ℓ)` with an optional per-session
/// bandwidth demand `b` and an optional end-to-end delay budget.
#[derive(Clone, Debug, PartialEq)]
pub struct MulticastTask {
    source: NodeId,
    destinations: Vec<NodeId>,
    sfc: Sfc,
    bandwidth: f64,
    delay_budget: Option<f64>,
}

impl MulticastTask {
    /// Creates a task, validating its internal shape (non-empty, duplicate
    /// free destinations that exclude the source).
    ///
    /// Use [`MulticastTask::check_against`] to additionally validate the
    /// task against a concrete network.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidTask`] for an empty destination set, duplicated
    /// destinations, or a destination equal to the source.
    pub fn new(
        source: NodeId,
        destinations: impl Into<Vec<NodeId>>,
        sfc: Sfc,
    ) -> Result<Self, CoreError> {
        let destinations = destinations.into();
        if destinations.is_empty() {
            return Err(CoreError::InvalidTask {
                reason: "destination set must be non-empty".into(),
            });
        }
        let mut seen = destinations.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(CoreError::InvalidTask {
                reason: "destination set contains duplicates".into(),
            });
        }
        if destinations.contains(&source) {
            return Err(CoreError::InvalidTask {
                reason: format!("source {source} listed as a destination"),
            });
        }
        Ok(MulticastTask {
            source,
            destinations,
            sfc,
            bandwidth: 0.0,
            delay_budget: None,
        })
    }

    /// Returns the task with a per-session bandwidth demand. Every edge
    /// of the delivery tree charges `bandwidth` against its residual once
    /// per session. Zero (the default) means the task consumes no link
    /// bandwidth — the legacy uncapacitated behavior.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a negative or non-finite demand.
    pub fn with_bandwidth(mut self, bandwidth: f64) -> Result<Self, CoreError> {
        if !bandwidth.is_finite() || bandwidth < 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "task bandwidth",
                value: bandwidth,
            });
        }
        self.bandwidth = bandwidth;
        Ok(self)
    }

    /// The per-session bandwidth demand `b` (0 = none).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Returns the task with an end-to-end delay budget: every
    /// source→destination route of the delivery tree (through the placed
    /// chain) must accumulate at most this much effective edge latency.
    /// `None` (the default) leaves routing unconstrained — the legacy
    /// behavior.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a non-positive or non-finite
    /// budget.
    pub fn with_delay_budget(mut self, budget: f64) -> Result<Self, CoreError> {
        if !budget.is_finite() || budget <= 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "task delay budget",
                value: budget,
            });
        }
        self.delay_budget = Some(budget);
        Ok(self)
    }

    /// The end-to-end delay budget, or `None` when unconstrained.
    pub fn delay_budget(&self) -> Option<f64> {
        self.delay_budget
    }

    /// The source node `S`.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The destination set `D`, in construction order.
    pub fn destinations(&self) -> &[NodeId] {
        &self.destinations
    }

    /// Number of destinations `|D|`.
    pub fn destination_count(&self) -> usize {
        self.destinations.len()
    }

    /// The SFC requirement `ℓ`.
    pub fn sfc(&self) -> &Sfc {
        &self.sfc
    }

    /// Validates the task against a network: all nodes exist, all chain
    /// VNFs exist in the catalog, and every destination is reachable from
    /// the source.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NodeOutOfBounds`] / [`CoreError::VnfOutOfBounds`] for
    ///   invalid ids.
    /// * [`CoreError::Infeasible`] for unreachable destinations.
    pub fn check_against(&self, network: &Network) -> Result<(), CoreError> {
        network.check_node(self.source)?;
        for &d in &self.destinations {
            network.check_node(d)?;
        }
        for (_, f) in self.sfc.iter() {
            network.catalog().check(f)?;
        }
        for &d in &self.destinations {
            if network.dist().distance(self.source, d).is_none() {
                return Err(CoreError::Infeasible {
                    reason: format!("destination {d} unreachable from source {}", self.source),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::{VnfCatalog, VnfId};
    use sft_graph::Graph;

    fn sfc() -> Sfc {
        Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap()
    }

    #[test]
    fn valid_task_roundtrips() {
        let t = MulticastTask::new(NodeId(0), vec![NodeId(2), NodeId(1)], sfc()).unwrap();
        assert_eq!(t.source(), NodeId(0));
        assert_eq!(t.destinations(), &[NodeId(2), NodeId(1)]);
        assert_eq!(t.destination_count(), 2);
        assert_eq!(t.sfc().len(), 2);
        assert_eq!(t.bandwidth(), 0.0);
    }

    #[test]
    fn bandwidth_is_validated_and_carried() {
        let t = MulticastTask::new(NodeId(0), vec![NodeId(1)], sfc())
            .unwrap()
            .with_bandwidth(2.5)
            .unwrap();
        assert_eq!(t.bandwidth(), 2.5);
        let base = MulticastTask::new(NodeId(0), vec![NodeId(1)], sfc()).unwrap();
        assert!(base.clone().with_bandwidth(-1.0).is_err());
        assert!(base.clone().with_bandwidth(f64::NAN).is_err());
        assert!(base.with_bandwidth(f64::INFINITY).is_err());
    }

    #[test]
    fn delay_budget_is_validated_and_carried() {
        let base = MulticastTask::new(NodeId(0), vec![NodeId(1)], sfc()).unwrap();
        assert_eq!(base.delay_budget(), None);
        let t = base.clone().with_delay_budget(12.5).unwrap();
        assert_eq!(t.delay_budget(), Some(12.5));
        assert!(base.clone().with_delay_budget(0.0).is_err());
        assert!(base.clone().with_delay_budget(-3.0).is_err());
        assert!(base.clone().with_delay_budget(f64::NAN).is_err());
        assert!(base.with_delay_budget(f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_malformed_destination_sets() {
        assert!(matches!(
            MulticastTask::new(NodeId(0), Vec::new(), sfc()),
            Err(CoreError::InvalidTask { .. })
        ));
        assert!(matches!(
            MulticastTask::new(NodeId(0), vec![NodeId(1), NodeId(1)], sfc()),
            Err(CoreError::InvalidTask { .. })
        ));
        assert!(matches!(
            MulticastTask::new(NodeId(0), vec![NodeId(0), NodeId(1)], sfc()),
            Err(CoreError::InvalidTask { .. })
        ));
    }

    #[test]
    fn check_against_validates_ids_and_reachability() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        // Node 2, 3 disconnected from 0.
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(5.0)
            .unwrap()
            .build()
            .unwrap();

        let ok = MulticastTask::new(NodeId(0), vec![NodeId(1)], sfc()).unwrap();
        assert!(ok.check_against(&net).is_ok());

        let unreachable = MulticastTask::new(NodeId(0), vec![NodeId(2)], sfc()).unwrap();
        assert!(matches!(
            unreachable.check_against(&net),
            Err(CoreError::Infeasible { .. })
        ));

        let bad_node = MulticastTask::new(NodeId(0), vec![NodeId(9)], sfc()).unwrap();
        assert!(matches!(
            bad_node.check_against(&net),
            Err(CoreError::NodeOutOfBounds { .. })
        ));

        let bad_vnf = MulticastTask::new(
            NodeId(0),
            vec![NodeId(1)],
            Sfc::new(vec![VnfId(7)]).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            bad_vnf.check_against(&net),
            Err(CoreError::VnfOutOfBounds { .. })
        ));
    }
}
