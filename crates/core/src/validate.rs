//! Feasibility validation of embeddings, independent of how they were
//! produced.
//!
//! Every algorithm output in this crate is checked against the same rules,
//! which mirror the ILP constraints: routes are contiguous physical walks
//! from the source through the chain stages to each destination (1b, 1c,
//! 1e), instances sit on server nodes, and no server exceeds its capacity
//! (1d).

use crate::embedding::Embedding;
use crate::network::Network;
use crate::task::MulticastTask;
use sft_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// A single validation failure. An embedding may have several.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationIssue {
    /// The number of routes differs from the number of destinations.
    RouteCountMismatch {
        /// Routes present.
        routes: usize,
        /// Destinations expected.
        destinations: usize,
    },
    /// A route does not have exactly `k + 1` segments.
    SegmentCountMismatch {
        /// Destination index (into the task's destination list).
        dest: usize,
        /// Segments present.
        segments: usize,
        /// Segments expected (`k + 1`).
        expected: usize,
    },
    /// A segment contains no nodes.
    EmptySegment {
        /// Destination index.
        dest: usize,
        /// Segment index.
        segment: usize,
    },
    /// The first segment does not start at the task source.
    WrongStart {
        /// Destination index.
        dest: usize,
        /// Node where the route actually starts.
        found: NodeId,
    },
    /// The last segment does not end at the destination.
    WrongEnd {
        /// Destination index.
        dest: usize,
        /// Node where the route actually ends.
        found: NodeId,
    },
    /// Consecutive segments do not share their junction node.
    DisconnectedSegments {
        /// Destination index.
        dest: usize,
        /// The later of the two segment indices.
        segment: usize,
    },
    /// Two consecutive nodes of a segment are not adjacent in the topology.
    NotAWalk {
        /// Destination index.
        dest: usize,
        /// Segment index.
        segment: usize,
        /// First node of the offending step.
        from: NodeId,
        /// Second node of the offending step.
        to: NodeId,
    },
    /// A VNF instance is placed on a switch node.
    InstanceOnSwitch {
        /// 1-based chain stage.
        stage: usize,
        /// The offending node.
        node: NodeId,
    },
    /// New instances overload a server (constraint 1d).
    CapacityExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Its capacity.
        capacity: f64,
        /// Total load including pre-deployed instances.
        load: f64,
    },
    /// A route's end-to-end delay exceeds the task's delay budget.
    DelayBudgetExceeded {
        /// Destination index.
        dest: usize,
        /// The route's accumulated effective latency.
        delay: f64,
        /// The task's delay budget.
        budget: f64,
    },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::RouteCountMismatch {
                routes,
                destinations,
            } => {
                write!(f, "{routes} routes for {destinations} destinations")
            }
            ValidationIssue::SegmentCountMismatch {
                dest,
                segments,
                expected,
            } => {
                write!(
                    f,
                    "destination {dest}: {segments} segments, expected {expected}"
                )
            }
            ValidationIssue::EmptySegment { dest, segment } => {
                write!(f, "destination {dest}: segment {segment} is empty")
            }
            ValidationIssue::WrongStart { dest, found } => {
                write!(
                    f,
                    "destination {dest}: route starts at {found}, not the source"
                )
            }
            ValidationIssue::WrongEnd { dest, found } => {
                write!(
                    f,
                    "destination {dest}: route ends at {found}, not the destination"
                )
            }
            ValidationIssue::DisconnectedSegments { dest, segment } => {
                write!(
                    f,
                    "destination {dest}: segments {} and {segment} do not join",
                    segment - 1
                )
            }
            ValidationIssue::NotAWalk {
                dest,
                segment,
                from,
                to,
            } => {
                write!(
                    f,
                    "destination {dest}: segment {segment} steps over non-edge {from}-{to}"
                )
            }
            ValidationIssue::InstanceOnSwitch { stage, node } => {
                write!(f, "stage {stage} instance on switch node {node}")
            }
            ValidationIssue::CapacityExceeded {
                node,
                capacity,
                load,
            } => {
                write!(f, "node {node} capacity {capacity} exceeded by load {load}")
            }
            ValidationIssue::DelayBudgetExceeded {
                dest,
                delay,
                budget,
            } => {
                write!(
                    f,
                    "destination {dest}: route delay {delay} exceeds budget {budget}"
                )
            }
        }
    }
}

/// Checks an embedding against a network and task. Returns every issue
/// found (empty means the embedding is feasible).
pub fn validate(
    network: &Network,
    task: &MulticastTask,
    embedding: &Embedding,
) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let k = task.sfc().len();
    let routes = embedding.routes();
    if routes.len() != task.destination_count() {
        issues.push(ValidationIssue::RouteCountMismatch {
            routes: routes.len(),
            destinations: task.destination_count(),
        });
        return issues; // nothing else is meaningfully indexable
    }

    for (di, route) in routes.iter().enumerate() {
        let segs = route.segments();
        if segs.len() != k + 1 {
            issues.push(ValidationIssue::SegmentCountMismatch {
                dest: di,
                segments: segs.len(),
                expected: k + 1,
            });
            continue;
        }
        let mut shape_ok = true;
        for (si, seg) in segs.iter().enumerate() {
            if seg.is_empty() {
                issues.push(ValidationIssue::EmptySegment {
                    dest: di,
                    segment: si,
                });
                shape_ok = false;
                continue;
            }
            for w in seg.windows(2) {
                if network.graph().find_edge(w[0], w[1]).is_none() {
                    issues.push(ValidationIssue::NotAWalk {
                        dest: di,
                        segment: si,
                        from: w[0],
                        to: w[1],
                    });
                }
            }
        }
        if !shape_ok {
            continue;
        }
        if segs[0][0] != task.source() {
            issues.push(ValidationIssue::WrongStart {
                dest: di,
                found: segs[0][0],
            });
        }
        let last = *segs[k].last().expect("non-empty checked above");
        if last != task.destinations()[di] {
            issues.push(ValidationIssue::WrongEnd {
                dest: di,
                found: last,
            });
        }
        for si in 1..segs.len() {
            let junction_ok = segs[si - 1].last() == segs[si].first();
            if !junction_ok {
                issues.push(ValidationIssue::DisconnectedSegments {
                    dest: di,
                    segment: si,
                });
            }
        }
    }

    // End-to-end delay budget: every route's accumulated effective
    // latency must fit the task's budget. Routes already flagged as
    // non-walks are skipped (path_latency cannot price a missing edge).
    if let Some(budget) = task.delay_budget() {
        for (di, route) in routes.iter().enumerate() {
            let mut delay = 0.0;
            let mut priced = true;
            for seg in route.segments() {
                match network.graph().path_latency(seg) {
                    Ok(d) => delay += d,
                    Err(_) => {
                        priced = false;
                        break;
                    }
                }
            }
            if priced && sft_graph::numeric::exceeds(delay, budget) {
                issues.push(ValidationIssue::DelayBudgetExceeded {
                    dest: di,
                    delay,
                    budget,
                });
            }
        }
    }

    // Instance placement and capacity.
    for (stage, node) in embedding.instances() {
        if stage <= k && !network.is_server(node) {
            issues.push(ValidationIssue::InstanceOnSwitch { stage, node });
        }
    }
    let mut extra_load: BTreeMap<NodeId, f64> = BTreeMap::new();
    for (f, n) in embedding.new_instances(network, task) {
        *extra_load.entry(n).or_insert(0.0) += network.catalog().demand(f);
    }
    for (n, extra) in extra_load {
        let load = network.deployed_load(n) + extra;
        if sft_graph::numeric::exceeds(load, network.capacity(n)) {
            issues.push(ValidationIssue::CapacityExceeded {
                node: n,
                capacity: network.capacity(n),
                load,
            });
        }
    }

    issues
}

/// Convenience wrapper: `true` when [`validate`] finds no issues.
pub fn is_valid(network: &Network, task: &MulticastTask, embedding: &Embedding) -> bool {
    validate(network, task, embedding).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::DestinationRoute;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use sft_graph::Graph;

    /// Line 0-1-2-3; node 2 is a switch; capacities 1 elsewhere.
    fn fixture() -> (Network, MulticastTask) {
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .server(NodeId(0), 1.0)
            .unwrap()
            .server(NodeId(1), 1.0)
            .unwrap()
            .server(NodeId(3), 1.0)
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    fn good_route() -> DestinationRoute {
        // f0@0 (source is a server), f1@1, deliver to 3.
        DestinationRoute::new(vec![
            vec![NodeId(0)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
        ])
    }

    #[test]
    fn valid_embedding_passes() {
        let (net, task) = fixture();
        let emb = Embedding::new(vec![good_route()]);
        assert_eq!(validate(&net, &task, &emb), Vec::new());
        assert!(is_valid(&net, &task, &emb));
    }

    #[test]
    fn route_count_mismatch_short_circuits() {
        let (net, task) = fixture();
        let emb = Embedding::new(vec![]);
        let issues = validate(&net, &task, &emb);
        assert_eq!(
            issues,
            vec![ValidationIssue::RouteCountMismatch {
                routes: 0,
                destinations: 1
            }]
        );
    }

    #[test]
    fn detects_wrong_endpoints_and_segment_counts() {
        let (net, task) = fixture();
        let wrong_start = DestinationRoute::new(vec![
            vec![NodeId(1)],
            vec![NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
        ]);
        let issues = validate(&net, &task, &Embedding::new(vec![wrong_start]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::WrongStart { .. })));

        let wrong_end = DestinationRoute::new(vec![
            vec![NodeId(0)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2)],
        ]);
        let issues = validate(&net, &task, &Embedding::new(vec![wrong_end]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::WrongEnd { .. })));

        let too_few = DestinationRoute::new(vec![vec![NodeId(0)], vec![NodeId(0), NodeId(3)]]);
        let issues = validate(&net, &task, &Embedding::new(vec![too_few]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SegmentCountMismatch { .. })));
    }

    #[test]
    fn detects_disconnected_segments_and_non_walks() {
        let (net, task) = fixture();
        let gap = DestinationRoute::new(vec![
            vec![NodeId(0)],
            vec![NodeId(1)], // junction mismatch: segment 0 ends at 0
            vec![NodeId(1), NodeId(2), NodeId(3)],
        ]);
        let issues = validate(&net, &task, &Embedding::new(vec![gap]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DisconnectedSegments { segment: 1, .. })));

        let jump = DestinationRoute::new(vec![
            vec![NodeId(0)],
            vec![NodeId(0), NodeId(3)], // 0-3 is not an edge
            vec![NodeId(3)],
        ]);
        let issues = validate(&net, &task, &Embedding::new(vec![jump]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::NotAWalk { .. })));
    }

    #[test]
    fn detects_switch_placement() {
        let (net, task) = fixture();
        let on_switch = DestinationRoute::new(vec![
            vec![NodeId(0), NodeId(1), NodeId(2)], // f0@2 but 2 is a switch
            vec![NodeId(2)],
            vec![NodeId(2), NodeId(3)],
        ]);
        let issues = validate(&net, &task, &Embedding::new(vec![on_switch]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::InstanceOnSwitch { stage: 1, .. })));
    }

    #[test]
    fn detects_capacity_violation() {
        let (net, task) = fixture();
        // Both stages on node 1 (capacity 1, demands 1 each -> load 2).
        let overload = DestinationRoute::new(vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
        ]);
        let issues = validate(&net, &task, &Embedding::new(vec![overload]));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::CapacityExceeded { .. })));
    }

    #[test]
    fn detects_delay_budget_violation() {
        let (net, task) = fixture();
        // Route delay on the latency-free fixture equals its cost: 3 hops.
        let task = task.with_delay_budget(2.0).unwrap();
        let issues = validate(&net, &task, &Embedding::new(vec![good_route()]));
        assert_eq!(
            issues,
            vec![ValidationIssue::DelayBudgetExceeded {
                dest: 0,
                delay: 3.0,
                budget: 2.0
            }]
        );
        // A loose budget accepts the same embedding.
        let loose = task.with_delay_budget(10.0).unwrap();
        assert!(is_valid(&net, &loose, &Embedding::new(vec![good_route()])));
    }

    #[test]
    fn reused_deployed_instances_do_not_consume_new_capacity() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(1.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(0))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(1)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        // Reuses the deployed f0@0: no new load, fits capacity 1.
        let emb = Embedding::new(vec![DestinationRoute::new(vec![
            vec![NodeId(0)],
            vec![NodeId(0), NodeId(1)],
        ])]);
        assert!(is_valid(&net, &task, &emb));
    }
}
