//! Graphviz (DOT) export for networks, embeddings, and logical SFTs.
//!
//! `dot -Tsvg network.dot -o network.svg` renders the output with any
//! stock Graphviz install; the writers only produce strings, so the crate
//! itself stays I/O-free.

use crate::embedding::Embedding;
use crate::network::Network;
use crate::sft_tree::{SftNode, SftTree};
use crate::task::MulticastTask;
use crate::CoreError;
use sft_graph::EdgeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Renders the physical network: servers as boxes (labelled with their
/// capacity and deployed VNFs), switches as circles, edges with their
/// link-connection costs.
pub fn network_dot(network: &Network) -> String {
    let mut out = String::from("graph network {\n  layout=neato;\n  overlap=false;\n");
    for v in network.graph().nodes() {
        if network.is_server(v) {
            let deployed: Vec<String> = network
                .catalog()
                .ids()
                .filter(|&f| network.is_deployed(f, v))
                .map(|f| network.catalog().name(f).to_string())
                .collect();
            let extra = if deployed.is_empty() {
                String::new()
            } else {
                format!("\\n[{}]", deployed.join(","))
            };
            let _ = writeln!(
                out,
                "  n{} [shape=box,label=\"{}\\ncap {}{}\"];",
                v.index(),
                v.index(),
                network.capacity(v),
                extra
            );
        } else {
            let _ = writeln!(
                out,
                "  n{} [shape=circle,label=\"{}\"];",
                v.index(),
                v.index()
            );
        }
    }
    for e in network.graph().edges() {
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{:.1}\"];",
            e.u.index(),
            e.v.index(),
            e.weight
        );
    }
    out.push_str("}\n");
    out
}

/// Renders an embedding over its network: used edges are colored by the
/// chain segment(s) that cross them, instance nodes are highlighted, and
/// the source/destinations are marked.
///
/// # Errors
///
/// [`CoreError::Graph`] if a route walks a non-edge.
pub fn embedding_dot(
    network: &Network,
    task: &MulticastTask,
    embedding: &Embedding,
) -> Result<String, CoreError> {
    // Segment indices using each edge.
    let mut edge_segments: BTreeMap<EdgeId, BTreeSet<usize>> = BTreeMap::new();
    for route in embedding.routes() {
        for (j, seg) in route.segments().iter().enumerate() {
            for id in network.graph().path_edges(seg)? {
                edge_segments.entry(id).or_default().insert(j);
            }
        }
    }
    let palette = [
        "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    ];
    let instances = embedding.instances();
    let dests: BTreeSet<_> = task.destinations().iter().copied().collect();

    let mut out = String::from("graph embedding {\n  layout=neato;\n  overlap=false;\n");
    for v in network.graph().nodes() {
        let stages: Vec<String> = instances
            .iter()
            .filter(|&&(_, n)| n == v)
            .map(|&(s, _)| format!("l{s}"))
            .collect();
        let (shape, style, label) = if v == task.source() {
            (
                "doublecircle",
                ",style=filled,fillcolor=\"#ffd700\"",
                format!("S{}", v.index()),
            )
        } else if !stages.is_empty() {
            (
                "box",
                ",style=filled,fillcolor=\"#c6e2ff\"",
                format!("{}\\n{}", v.index(), stages.join(",")),
            )
        } else if dests.contains(&v) {
            (
                "doubleoctagon",
                ",style=filled,fillcolor=\"#b4eeb4\"",
                format!("d{}", v.index()),
            )
        } else {
            ("circle", "", v.index().to_string())
        };
        let _ = writeln!(
            out,
            "  n{} [shape={shape}{style},label=\"{label}\"];",
            v.index()
        );
    }
    for e in network.graph().edges() {
        let id = network
            .graph()
            .find_edge(e.u, e.v)
            .expect("edge iterates over existing edges");
        match edge_segments.get(&id) {
            Some(segs) => {
                let colors: Vec<&str> = segs.iter().map(|&j| palette[j % palette.len()]).collect();
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [penwidth=2.5,color=\"{}\",label=\"{:.1}\"];",
                    e.u.index(),
                    e.v.index(),
                    colors.join(":"),
                    e.weight
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [color=\"#cccccc\",label=\"{:.1}\"];",
                    e.u.index(),
                    e.v.index(),
                    e.weight
                );
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Renders the *logical* SFT (paper Fig. 5): instances layered by stage.
pub fn sft_dot(tree: &SftTree) -> String {
    let name = |n: &SftNode| -> String {
        match n {
            SftNode::Source(v) => format!("S{}", v.index()),
            SftNode::Instance { stage, node } => format!("f{}_{}", stage, node.index()),
            SftNode::Destination(v) => format!("d{}", v.index()),
        }
    };
    let label = |n: &SftNode| -> String {
        match n {
            SftNode::Source(v) => format!("S ({})", v.index()),
            SftNode::Instance { stage, node } => format!("l{} @ {}", stage, node.index()),
            SftNode::Destination(v) => format!("d ({})", v.index()),
        }
    };
    let mut nodes: BTreeSet<SftNode> = BTreeSet::new();
    for (a, b) in tree.edges() {
        nodes.insert(*a);
        nodes.insert(*b);
    }
    let mut out = String::from("digraph sft {\n  rankdir=TB;\n");
    for n in &nodes {
        let shape = match n {
            SftNode::Source(_) => "doublecircle",
            SftNode::Instance { .. } => "box",
            SftNode::Destination(_) => "doubleoctagon",
        };
        let _ = writeln!(out, "  {} [shape={shape},label=\"{}\"];", name(n), label(n));
    }
    for (a, b) in tree.edges() {
        let _ = writeln!(out, "  {} -> {};", name(a), name(b));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::{Sfc, VnfCatalog, VnfId};
    use crate::{solve, StageTwo, Strategy};
    use sft_graph::{Graph, NodeId};

    fn fixture() -> (Network, MulticastTask) {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 5), 1.0 + i as f64)
                .unwrap();
        }
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(2.0)
            .unwrap()
            .deploy(VnfId(0), NodeId(1))
            .unwrap()
            .build()
            .unwrap();
        let task = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(3)],
            Sfc::new(vec![VnfId(0), VnfId(1)]).unwrap(),
        )
        .unwrap();
        (net, task)
    }

    #[test]
    fn network_dot_lists_every_node_and_edge() {
        let (net, _) = fixture();
        let dot = network_dot(&net);
        assert!(dot.starts_with("graph network {"));
        for v in 0..5 {
            assert!(dot.contains(&format!("n{v} [")), "node {v} missing");
        }
        assert_eq!(dot.matches(" -- ").count(), net.graph().edge_count());
        assert!(dot.contains("f0"), "deployed VNF label missing");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn embedding_dot_highlights_instances_and_endpoints() {
        let (net, task) = fixture();
        let r = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        let dot = embedding_dot(&net, &task, &r.embedding).unwrap();
        assert!(dot.contains("doublecircle"), "source marker missing");
        assert!(dot.contains("doubleoctagon"), "destination marker missing");
        assert!(dot.contains("penwidth=2.5"), "no used edges highlighted");
    }

    #[test]
    fn sft_dot_is_a_digraph_of_the_logical_tree() {
        let (net, task) = fixture();
        let r = solve(&net, &task, Strategy::Msa, StageTwo::Opa).unwrap();
        let tree = SftTree::extract(&task, &r.embedding).unwrap();
        let dot = sft_dot(&tree);
        assert!(dot.starts_with("digraph sft {"));
        assert!(dot.contains("S ("));
        assert!(dot.contains("l1 @"));
        assert_eq!(dot.matches(" -> ").count(), tree.edges().len());
    }
}
