//! VNF types, the VNF catalog, and service function chains.
//!
//! The paper's model (§III-B): a universe `Φ = {f₁ … f_n}` of VNF types,
//! each with a resource demand `μ_f`; a multicast task requests a *service
//! function chain* `ℓ = (l₁ → l₂ → … → l_k)`, `l_i ∈ Φ`, that every flow
//! must traverse in order.

use crate::CoreError;
use std::fmt;

/// Identifier of a VNF *type* within a [`VnfCatalog`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VnfId(pub usize);

impl VnfId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for VnfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for VnfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The universe of VNF types available for deployment (the paper's `Φ`),
/// with each type's resource demand `μ_f`.
#[derive(Clone, Debug, Default)]
pub struct VnfCatalog {
    names: Vec<String>,
    demands: Vec<f64>,
}

impl VnfCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        VnfCatalog::default()
    }

    /// Creates a catalog of `n` types named `f0 … f{n-1}`, all with unit
    /// resource demand — the configuration the paper's evaluation uses
    /// (node capacities count "how many VNFs fit", Table I).
    pub fn uniform(n: usize) -> Self {
        VnfCatalog {
            names: (0..n).map(|i| format!("f{i}")).collect(),
            demands: vec![1.0; n],
        }
    }

    /// Registers a VNF type with the given resource demand and returns its
    /// id.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the demand is negative or not
    /// finite.
    pub fn add(&mut self, name: impl Into<String>, demand: f64) -> Result<VnfId, CoreError> {
        if !demand.is_finite() || demand < 0.0 {
            return Err(CoreError::InvalidParameter {
                context: "VNF resource demand",
                value: demand,
            });
        }
        self.names.push(name.into());
        self.demands.push(demand);
        Ok(VnfId(self.names.len() - 1))
    }

    /// Number of VNF types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a VNF type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn name(&self, f: VnfId) -> &str {
        &self.names[f.0]
    }

    /// Resource demand `μ_f` of a VNF type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn demand(&self, f: VnfId) -> f64 {
        self.demands[f.0]
    }

    /// Iterator over all type ids.
    pub fn ids(&self) -> impl Iterator<Item = VnfId> + '_ {
        (0..self.len()).map(VnfId)
    }

    /// Validates that an id belongs to this catalog.
    ///
    /// # Errors
    ///
    /// [`CoreError::VnfOutOfBounds`] otherwise.
    pub fn check(&self, f: VnfId) -> Result<(), CoreError> {
        if f.0 < self.len() {
            Ok(())
        } else {
            Err(CoreError::VnfOutOfBounds {
                vnf: f.0,
                len: self.len(),
            })
        }
    }
}

/// An ordered service function chain `ℓ = (l₁ → … → l_k)`.
///
/// The same VNF type may appear more than once (each occurrence is a
/// distinct *stage*), although the paper's evaluation always uses distinct
/// types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sfc {
    stages: Vec<VnfId>,
}

impl Sfc {
    /// Creates a chain from the ordered list of VNF types.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidTask`] if the chain is empty.
    pub fn new(stages: impl Into<Vec<VnfId>>) -> Result<Self, CoreError> {
        let stages = stages.into();
        if stages.is_empty() {
            return Err(CoreError::InvalidTask {
                reason: "service function chain must contain at least one VNF".into(),
            });
        }
        Ok(Sfc { stages })
    }

    /// Chain length `k`.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Chains are never empty; this always returns `false` and exists for
    /// API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The VNF type at 1-based stage `j` (`1 ..= len()`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or greater than the chain length.
    pub fn stage(&self, j: usize) -> VnfId {
        assert!(j >= 1 && j <= self.stages.len(), "stage {j} out of range");
        self.stages[j - 1]
    }

    /// The stages in order, 0-indexed slice (`stages()[0]` is `l₁`).
    pub fn stages(&self) -> &[VnfId] {
        &self.stages
    }

    /// Iterator over `(stage_number, vnf)` pairs, stage numbers 1-based.
    pub fn iter(&self) -> impl Iterator<Item = (usize, VnfId)> + '_ {
        self.stages.iter().enumerate().map(|(i, &f)| (i + 1, f))
    }
}

impl fmt::Display for Sfc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog_has_unit_demands() {
        let c = VnfCatalog::uniform(30);
        assert_eq!(c.len(), 30);
        assert!(!c.is_empty());
        for f in c.ids() {
            assert_eq!(c.demand(f), 1.0);
        }
        assert_eq!(c.name(VnfId(3)), "f3");
    }

    #[test]
    fn add_validates_demand() {
        let mut c = VnfCatalog::new();
        let dpi = c.add("dpi", 2.5).unwrap();
        assert_eq!(c.demand(dpi), 2.5);
        assert_eq!(c.name(dpi), "dpi");
        assert!(matches!(
            c.add("bad", -1.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            c.add("bad", f64::NAN),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn check_rejects_foreign_ids() {
        let c = VnfCatalog::uniform(2);
        assert!(c.check(VnfId(1)).is_ok());
        assert!(matches!(
            c.check(VnfId(2)),
            Err(CoreError::VnfOutOfBounds { .. })
        ));
    }

    #[test]
    fn sfc_orders_and_indexes_stages() {
        let sfc = Sfc::new(vec![VnfId(4), VnfId(0), VnfId(4)]).unwrap();
        assert_eq!(sfc.len(), 3);
        assert_eq!(sfc.stage(1), VnfId(4));
        assert_eq!(sfc.stage(2), VnfId(0));
        assert_eq!(sfc.stage(3), VnfId(4));
        let collected: Vec<_> = sfc.iter().collect();
        assert_eq!(collected, vec![(1, VnfId(4)), (2, VnfId(0)), (3, VnfId(4))]);
        assert_eq!(sfc.to_string(), "f4 -> f0 -> f4");
    }

    #[test]
    fn empty_sfc_is_rejected() {
        assert!(matches!(
            Sfc::new(Vec::new()),
            Err(CoreError::InvalidTask { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_zero_panics() {
        let sfc = Sfc::new(vec![VnfId(0)]).unwrap();
        sfc.stage(0);
    }
}
