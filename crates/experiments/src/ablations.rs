//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * [`opa_gain`] — **SFT vs SFC**: the same stage-1 chains with and
//!   without the stage-2 tree transformation. This quantifies the paper's
//!   central claim that "embedding an SFT for the multicast task can
//!   outperform embedding an SFC" (§IV-C).
//! * [`steiner_choice`] — stage 1 with KMB (the paper's choice) vs the
//!   Takahashi–Matsuyama heuristic.
//! * [`warm_start_effect`] — branch-and-bound effort with and without the
//!   heuristic warm start when solving the exact ILP.

use crate::record::FigureData;
use crate::{Effort, ExperimentError};
use sft_core::ilp::IlpModel;
use sft_core::msa::{self, SteinerMethod};
use sft_core::{opa, CoreError, StageTwo, Strategy};
use sft_lp::MipConfig;
use sft_topology::{generate, palmetto, workload, ScenarioConfig};
use std::time::{Duration, Instant};

/// SFT vs SFC: MSA stage 1 followed by OPA, against the same stage-1
/// output frozen as a chain.
///
/// Runs on two workload families: the paper's Table-I random scenarios
/// (where — a reproduction finding, see EXPERIMENTS.md — OPA essentially
/// never fires, because metric costs plus MSA's exhaustive last-node sweep
/// leave no replication slack) and the `clustered` Fig.-6-style family
/// built to contain genuine branching opportunities.
pub fn opa_gain(effort: Effort) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(
        "ablation_opa",
        "SFT vs SFC: the stage-2 (OPA) gain over the same stage-1 chains, per workload family",
        "family",
        &["SFC (stage1)", "SFT (stage1+OPA)"],
    );
    let reps = match effort {
        Effort::Quick => 4,
        Effort::Paper => 20,
    };

    let run_family = |fig: &mut FigureData,
                      row: usize,
                      label: &str,
                      make: &dyn Fn(u64) -> Result<sft_topology::Scenario, CoreError>|
     -> Result<(usize, usize), ExperimentError> {
        let mut improved = 0;
        for seed in 0..reps as u64 {
            let s = make(seed)?;
            let t0 = Instant::now();
            let chain = msa::stage_one(&s.network, &s.task)?;
            let stage1_ms = t0.elapsed().as_secs_f64() * 1e3;
            let sfc = chain.to_embedding(&s.network, &s.task)?;
            let sfc_cost = sft_core::delivery_cost(&s.network, &s.task, &sfc)?.total();
            let t1 = Instant::now();
            let out = opa::optimize(&s.network, &s.task, &chain)?;
            let opa_ms = t1.elapsed().as_secs_f64() * 1e3;
            fig.record(row, "SFC (stage1)", sfc_cost, stage1_ms)?;
            fig.record(row, "SFT (stage1+OPA)", out.cost, stage1_ms + opa_ms)?;
            if out.cost < sfc_cost - 1e-9 {
                improved += 1;
            }
        }
        fig.notes.push(format!("x={}: {label}", fig.xs[row]));
        Ok((improved, reps))
    };

    // Family 1: Table-I random scenarios.
    let table1 = ScenarioConfig {
        network_size: 80,
        dest_ratio: 0.3,
        sfc_len: 5,
        ..ScenarioConfig::default()
    };
    let row = fig.push_x(1.0);
    let (imp1, tot1) = run_family(
        &mut fig,
        row,
        "Table-I ER workloads (paper's evaluation setup)",
        &|seed| generate(&table1, seed),
    )?;

    // Family 2: the clustered Fig.-6 geometry.
    let fam2 = sft_topology::workload::ClusteredConfig::default();
    let row = fig.push_x(2.0);
    let (imp2, tot2) = run_family(
        &mut fig,
        row,
        "clustered Fig.-6 geometry (pinned chain + side clusters)",
        &|seed| sft_topology::workload::clustered(&fam2, seed),
    )?;

    fig.notes.push(format!(
        "OPA strictly improved {imp1}/{tot1} Table-I instances and {imp2}/{tot2} clustered instances"
    ));
    if let Some((avg, max)) = fig.saving_vs("SFT (stage1+OPA)", "SFC (stage1)") {
        fig.notes.push(format!(
            "overall stage-2 saving: avg {:.2}% (max {:.2}%)",
            avg * 100.0,
            max * 100.0
        ));
    }
    Ok(fig)
}

/// KMB vs Takahashi–Matsuyama as the stage-1 Steiner construction.
pub fn steiner_choice(effort: Effort) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(
        "ablation_steiner",
        "stage-1 Steiner construction: KMB (paper) vs Takahashi-Matsuyama, vs network size",
        "|V|",
        &["MSA+KMB", "MSA+TM"],
    );
    let sizes = match effort {
        Effort::Quick => vec![50, 100],
        Effort::Paper => vec![50, 100, 150, 200],
    };
    for (pi, n) in sizes.iter().enumerate() {
        let row = fig.push_x(*n as f64);
        let config = ScenarioConfig {
            network_size: *n,
            dest_ratio: 0.2,
            sfc_len: 5,
            ..ScenarioConfig::default()
        };
        for rep in 0..effort.reps() {
            let seed = 700 * (pi as u64 + 1) + rep as u64;
            let s = generate(&config, seed)?;
            for (label, method) in [
                ("MSA+KMB", SteinerMethod::Kmb),
                ("MSA+TM", SteinerMethod::Takahashi),
            ] {
                let t = Instant::now();
                let chain = msa::stage_one_with(&s.network, &s.task, method)?;
                let out = opa::optimize(&s.network, &s.task, &chain)?;
                let ms = t.elapsed().as_secs_f64() * 1e3;
                fig.record(row, label, out.cost, ms)?;
            }
        }
    }
    if let Some((avg, _)) = fig.saving_vs("MSA+KMB", "MSA+TM") {
        fig.notes.push(format!(
            "KMB vs TM final-cost delta: {:.2}% (positive = KMB cheaper)",
            avg * 100.0
        ));
    }
    Ok(fig)
}

/// The dependent-path exclusion rule (§IV-C): the paper's OPA skips tree
/// paths that share any edge with the embedded chain. Our reproduction
/// found this blocks a share of genuine improvements; this ablation runs
/// OPA with and without the rule on the clustered (Fig.-6) family, where
/// the canonical-cost acceptance check keeps the permissive variant safe.
pub fn dependence_rule(effort: Effort) -> Result<FigureData, ExperimentError> {
    use sft_core::opa::OpaConfig;
    let mut fig = FigureData::new(
        "ablation_dependence",
        "OPA with the paper's dependent-path exclusion vs without it (clustered family)",
        "seed block",
        &["OPA (paper)", "OPA (incl. dependent)"],
    );
    let reps = match effort {
        Effort::Quick => 5,
        Effort::Paper => 20,
    };
    let config = sft_topology::workload::ClusteredConfig::default();
    let row = fig.push_x(1.0);
    let (mut fired_strict, mut fired_perm) = (0, 0);
    for seed in 0..reps as u64 {
        let s = sft_topology::workload::clustered(&config, seed)?;
        let chain = msa::stage_one(&s.network, &s.task)?;
        let t0 = Instant::now();
        let strict = opa::optimize(&s.network, &s.task, &chain)?;
        let strict_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let perm = opa::optimize_with(
            &s.network,
            &s.task,
            &chain,
            &OpaConfig {
                include_dependent: true,
            },
        )?;
        let perm_ms = t1.elapsed().as_secs_f64() * 1e3;
        fig.record(row, "OPA (paper)", strict.cost, strict_ms)?;
        fig.record(row, "OPA (incl. dependent)", perm.cost, perm_ms)?;
        if strict.cost < strict.initial_cost - 1e-9 {
            fired_strict += 1;
        }
        if perm.cost < perm.initial_cost - 1e-9 {
            fired_perm += 1;
        }
    }
    fig.notes.push(format!(
        "stage 2 fired on {fired_strict}/{reps} instances with the exclusion, {fired_perm}/{reps} without it"
    ));
    if let Some((avg, max)) = fig.saving_vs("OPA (incl. dependent)", "OPA (paper)") {
        fig.notes.push(format!(
            "dropping the exclusion saves a further {:.2}% on average (max {:.2}%)",
            avg * 100.0,
            max * 100.0
        ));
    }
    Ok(fig)
}

/// Branch-and-bound effort with vs without the heuristic warm start.
pub fn warm_start_effect(effort: Effort) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(
        "ablation_warmstart",
        "exact ILP solve effort with vs without the heuristic warm start (reduced Palmetto)",
        "|D|",
        &["cold B&B", "warm B&B"],
    );
    let dests = match effort {
        Effort::Quick => vec![2],
        Effort::Paper => vec![2, 3],
    };
    let reps = match effort {
        Effort::Quick => 1,
        Effort::Paper => 2,
    };
    let mut node_note = Vec::new();
    for (pi, d) in dests.iter().enumerate() {
        let row = fig.push_x(*d as f64);
        let config = ScenarioConfig {
            dest_ratio: *d as f64 / 10.0,
            sfc_len: 2,
            ..ScenarioConfig::default()
        };
        for rep in 0..reps {
            let seed = 900 * (pi as u64 + 1) + rep as u64;
            let s = workload::on_graph(palmetto::reduced_graph(10), &config, seed)?;
            let model = IlpModel::build(&s.network, &s.task)?;
            let heuristic = sft_core::solve(&s.network, &s.task, Strategy::Msa, StageTwo::Opa)?;
            for (label, warm) in [
                ("cold B&B", None),
                (
                    "warm B&B",
                    model.warm_start(&s.network, &s.task, &heuristic.embedding),
                ),
            ] {
                let mip = MipConfig {
                    max_nodes: 4000,
                    time_limit: Some(Duration::from_secs(180)),
                    warm_start: warm,
                    ..MipConfig::default()
                };
                let t = Instant::now();
                let out = model.solve(&s.network, &s.task, &mip)?;
                let ms = t.elapsed().as_secs_f64() * 1e3;
                if let Some(obj) = out.objective {
                    fig.record(row, label, obj, ms)?;
                }
                node_note.push(format!("{label} |D|={d} seed {seed}: {} nodes", out.nodes));
            }
        }
    }
    fig.notes.extend(node_note);
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opa_gain_reports_both_columns() {
        let fig = opa_gain(Effort::Quick).unwrap();
        assert_eq!(fig.algos.len(), 2);
        for row in 0..fig.xs.len() {
            let sfc = fig.mean_cost(row, "SFC (stage1)").unwrap();
            let sft = fig.mean_cost(row, "SFT (stage1+OPA)").unwrap();
            assert!(sft <= sfc + 1e-9, "OPA must not worsen");
        }
    }

    #[test]
    fn steiner_ablation_runs() {
        let fig = steiner_choice(Effort::Quick).unwrap();
        assert_eq!(fig.xs.len(), 2);
        assert!(fig.mean_cost(0, "MSA+KMB").is_some());
        assert!(fig.mean_cost(0, "MSA+TM").is_some());
    }
}
