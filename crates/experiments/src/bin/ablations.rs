//! Runs the ablation studies (SFT vs SFC, Steiner construction choice,
//! ILP warm-start effect). Pass `--quick` for a fast smoke sweep.

use sft_experiments::{ablations, Effort};

fn main() {
    let effort = Effort::from_args();
    let figs = [
        ablations::opa_gain(effort),
        ablations::steiner_choice(effort),
        ablations::dependence_rule(effort),
        ablations::warm_start_effect(effort),
    ];
    for fig in figs {
        match fig {
            Ok(fig) => {
                print!("{}", fig.render());
                match fig.write_csv(std::path::Path::new("results")) {
                    Ok(p) => println!("csv: {}", p.display()),
                    Err(e) => eprintln!("could not write csv: {e}"),
                }
                println!();
            }
            Err(e) => eprintln!("ablation failed: {e}"),
        }
    }
}
