//! Regenerates every figure of the paper's evaluation in sequence.
//! Pass `--quick` for a fast smoke sweep of all of them.

use sft_experiments::{figures, Effort, FigureData};

type FigureBuilder = fn(Effort) -> Result<FigureData, sft_experiments::ExperimentError>;

fn main() {
    let effort = Effort::from_args();
    let builders: Vec<(&str, FigureBuilder)> = vec![
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13_heuristics),
        ("fig13_opt", figures::fig13_opt),
        ("fig14", figures::fig14),
    ];
    for (name, build) in builders {
        eprintln!(">> running {name}");
        match build(effort) {
            Ok(fig) => {
                print!("{}", fig.render());
                match fig.write_csv(std::path::Path::new("results")) {
                    Ok(p) => println!("csv: {}", p.display()),
                    Err(e) => eprintln!("could not write csv: {e}"),
                }
                println!();
            }
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
}
