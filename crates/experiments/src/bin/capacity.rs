//! Extension experiment: the impact of node capacity.
//!
//! Table I sets node capacities in [1, 5] but the paper never sweeps the
//! parameter. This experiment does: fixed capacity c ∈ {1, …, 5} across
//! all servers, everything else at Table-I defaults. Tight capacities
//! force the chain to spread over more nodes (more link cost, more
//! distinct setups), so cost should fall as capacity grows and plateau
//! once co-location is unconstrained.
//!
//! Pass `--quick` for fewer seeds.

use sft_experiments::{record::FigureData, runner, Effort};
use sft_graph::parallel::{run_partitioned, Parallelism};
use sft_topology::{generate, ScenarioConfig};

fn main() {
    let effort = Effort::from_args();
    let mut fig = FigureData::new(
        "capacity",
        "traffic delivery cost vs uniform node capacity (|V| = 100, k = 5, mu = 2, ratio 0.2)",
        "capacity",
        &runner::HEURISTICS,
    );
    for cap in 1..=5u32 {
        let row = fig.push_x(cap as f64);
        let config = ScenarioConfig {
            network_size: 100,
            capacity_range: (cap, cap),
            dest_ratio: 0.2,
            sfc_len: 5,
            ..ScenarioConfig::default()
        };
        // Seeds are independent: run them on worker threads, record in
        // seed order so the figure matches the serial sweep exactly.
        let per_seed = run_partitioned(Parallelism::auto(), effort.reps(), |range| {
            range
                .map(|rep| {
                    let seed = 40 * cap as u64 + rep as u64;
                    (
                        seed,
                        generate(&config, seed).and_then(|s| runner::run_heuristics(&s)),
                    )
                })
                .collect::<Vec<_>>()
        });
        for (seed, result) in per_seed.into_iter().flatten() {
            match result {
                Ok(runs) => {
                    for run in runs {
                        if let Err(e) = fig.record(row, run.algo, run.cost, run.ms) {
                            eprintln!("capacity {cap} seed {seed}: {e}");
                        }
                    }
                }
                Err(e) => eprintln!("capacity {cap} seed {seed}: {e}"),
            }
        }
    }
    // Qualitative check baked into the notes.
    if let (Some(tight), Some(loose)) = (fig.mean_cost(0, "MSA"), fig.mean_cost(4, "MSA")) {
        fig.notes.push(format!(
            "MSA cost at capacity 1 vs 5: {tight:.1} vs {loose:.1} ({:+.1}% from co-location)",
            100.0 * (loose - tight) / tight
        ));
    }
    print!("{}", fig.render());
    match fig.write_csv(std::path::Path::new("results")) {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
