//! Arrival/departure churn sweep: blocking probability and occupancy
//! against offered load (Erlangs), with a per-run leak check.
//! Pass `--quick` for a short stream.

use sft_experiments::churn;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let points = match churn::sweep(quick) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("churn sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("offered_erlangs  admitted  blocked  p_block  mean_live  peak_live  leak_free");
    for p in &points {
        println!(
            "{:>15.1}  {:>8}  {:>7}  {:>7.3}  {:>9.2}  {:>9}  {}",
            p.offered_erlangs,
            p.admitted,
            p.blocked,
            p.blocking_probability,
            p.mean_live,
            p.peak_live,
            p.leak_free
        );
    }
    if points.iter().any(|p| !p.leak_free) {
        eprintln!("LEAK: a drained run did not return to the seed network");
        std::process::exit(1);
    }
}
