//! Regenerates the LP-format corpus under `crates/lp/tests/corpus/`.
//!
//! Each file is a real `sft-core` ILP (paper model (1a)–(1g)) built on a
//! small topology and dumped with [`sft_lp::export::to_lp_format`]. The
//! LP differential suite re-imports them and pins the revised simplex
//! against the dense oracle on production problems, not just random LPs.
//!
//! Run from anywhere in the workspace:
//! `cargo run -p sft-experiments --bin export_corpus`

use sft_core::ilp::IlpModel;
use sft_topology::{palmetto, workload, ScenarioConfig};
use std::path::PathBuf;

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../lp/tests/corpus");
    std::fs::create_dir_all(&dir).expect("create corpus dir");

    // (file stem, palmetto prefix size, destinations, chain length, seed)
    let instances = [
        ("palmetto08_d2_k1", 8usize, 2usize, 1usize, 11u64),
        ("palmetto10_d2_k2", 10, 2, 2, 23),
        ("palmetto10_d3_k1", 10, 3, 1, 37),
        ("palmetto12_d3_k2", 12, 3, 2, 41),
        ("palmetto14_d4_k2", 14, 4, 2, 53),
    ];
    for (stem, nodes, dests, k, seed) in instances {
        let config = ScenarioConfig {
            dest_ratio: dests as f64 / nodes as f64,
            deployment_cost_mu: 2.0,
            sfc_len: k,
            ..ScenarioConfig::default()
        };
        let scenario = workload::on_graph(palmetto::reduced_graph(nodes), &config, seed)
            .expect("scenario generation");
        let model = IlpModel::build(&scenario.network, &scenario.task).expect("ILP construction");
        let text = sft_lp::export::to_lp_format(model.problem());
        let path = dir.join(format!("{stem}.lp"));
        std::fs::write(&path, text).expect("write corpus file");
        println!(
            "{}: {} variables, {} constraints",
            path.display(),
            model.problem().var_count(),
            model.problem().constraint_count()
        );
    }
}
