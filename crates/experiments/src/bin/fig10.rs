//! Regenerates paper Fig. 10. Pass `--quick` for a fast smoke sweep.

use sft_experiments::{figures, Effort};

fn main() {
    let effort = Effort::from_args();
    let fig = figures::fig10(effort).expect("figure sweep failed");
    print!("{}", fig.render());
    match fig.write_csv(std::path::Path::new("results")) {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
