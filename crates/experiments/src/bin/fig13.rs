//! Regenerates paper Fig. 13: the Palmetto heuristic sweep plus the exact
//! ILP (OPT) comparison on reduced instances. Pass `--quick` for a fast
//! smoke sweep.

use sft_experiments::{figures, Effort};

fn main() {
    let effort = Effort::from_args();
    for fig in [
        figures::fig13_heuristics(effort).expect("fig13 sweep failed"),
        figures::fig13_opt(effort).expect("fig13 OPT sweep failed"),
    ] {
        print!("{}", fig.render());
        match fig.write_csv(std::path::Path::new("results")) {
            Ok(p) => println!("csv: {}", p.display()),
            Err(e) => eprintln!("could not write csv: {e}"),
        }
        println!();
    }
}
