//! The exact-OPT frontier: the largest Palmetto instance each LP backend
//! certifies (or bounds) within a fixed branch-and-bound budget.
//!
//! The paper's Fig. 13 OPT curve comes from CPLEX on the full 45-city
//! PalmettoNet; the from-scratch dense tableau only reached 10-city
//! reductions. This driver sweeps reduced instances up to the full
//! network with the revised-simplex backend and reports, per size, the
//! MIP status, incumbent, bound, and accumulated LP work. Every incumbent
//! is decoded into an embedding and re-checked by the independent
//! validator before being reported.
//!
//! Pass `--quick` for the small sizes only.

use sft_core::ilp::IlpModel;
use sft_core::{StageTwo, Strategy};
use sft_experiments::Effort;
use sft_lp::{BackendChoice, MipConfig, MipStatus};
use sft_topology::{palmetto, workload, ScenarioConfig};
use std::time::{Duration, Instant};

fn main() {
    let effort = Effort::from_args();
    let sizes: &[usize] = match effort {
        Effort::Quick => &[10, 14],
        Effort::Paper => &[10, 14, 20, 30, 45],
    };
    let (max_nodes, limit) = match effort {
        Effort::Quick => (500, Duration::from_secs(30)),
        Effort::Paper => (20_000, Duration::from_secs(600)),
    };

    println!("exact-OPT frontier on reduced PalmettoNet (k = 2, |D| = 2, seed 7)");
    println!(
        "budget: {max_nodes} B&B nodes / {}s per instance, revised LP backend\n",
        limit.as_secs()
    );
    for &nodes in sizes {
        let config = ScenarioConfig {
            dest_ratio: 2.0 / nodes as f64,
            deployment_cost_mu: 2.0,
            sfc_len: 2,
            ..ScenarioConfig::default()
        };
        let scenario = match workload::on_graph(palmetto::reduced_graph(nodes), &config, 7) {
            Ok(s) => s,
            Err(e) => {
                println!("|V| = {nodes}: scenario failed: {e}");
                continue;
            }
        };
        let heuristic = sft_core::solve(
            &scenario.network,
            &scenario.task,
            Strategy::Msa,
            StageTwo::Opa,
        )
        .expect("MSA solves every connected instance");
        let model = IlpModel::build(&scenario.network, &scenario.task).expect("model builds");
        let mip = MipConfig {
            backend: BackendChoice::Revised,
            max_nodes,
            time_limit: Some(limit),
            warm_start: model.warm_start(&scenario.network, &scenario.task, &heuristic.embedding),
            ..MipConfig::default()
        };
        let start = Instant::now();
        let out = model
            .solve(&scenario.network, &scenario.task, &mip)
            .expect("solver errors are bugs");
        let secs = start.elapsed().as_secs_f64();

        let validated = out.embedding.as_ref().map(|emb| {
            sft_core::validate::validate(&scenario.network, &scenario.task, emb).is_empty()
        });
        println!(
            "|V| = {nodes:>2} (size product {:>3}): {:?} in {secs:>7.1}s, {} B&B nodes",
            nodes * config.sfc_len,
            out.status,
            out.nodes
        );
        println!(
            "    ILP: {} vars, {} rows; lp work: {}",
            model.problem().var_count(),
            model.problem().constraint_count(),
            out.lp_stats
        );
        match out.objective {
            Some(obj) => println!(
                "    incumbent {obj:.2} (bound {:.2}, heuristic {:.2}, validator {})",
                out.bound,
                heuristic.cost.total(),
                match validated {
                    Some(true) => "OK",
                    Some(false) => "FAILED",
                    None => "n/a",
                }
            ),
            None => println!("    no incumbent (bound {:.2})", out.bound),
        }
        if validated == Some(false) {
            println!("    ERROR: incumbent failed independent validation");
            std::process::exit(1);
        }
        if out.status == MipStatus::Optimal && validated != Some(true) {
            println!("    ERROR: optimal status without a validated embedding");
            std::process::exit(1);
        }
    }
}
