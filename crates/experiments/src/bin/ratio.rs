//! Approximation-ratio distribution: many small random instances solved
//! both heuristically (MSA + OPA) and exactly (ILP), reporting the
//! distribution of `heuristic / optimum` — the statistical version of the
//! single average the paper quotes for Fig. 13 (≈ 1.51).
//!
//! Pass `--quick` for fewer instances.

use sft_core::ilp::IlpModel;
use sft_core::{StageTwo, Strategy};
use sft_experiments::Effort;
use sft_lp::{MipConfig, MipStatus};
use sft_topology::{generate, ScenarioConfig};
use std::time::Duration;

fn main() {
    let effort = Effort::from_args();
    let instances = match effort {
        Effort::Quick => 6,
        Effort::Paper => 25,
    };
    let config = ScenarioConfig {
        network_size: 9,
        dest_ratio: 0.25, // 2 destinations
        sfc_len: 2,
        catalog_size: 4,
        er_probability: Some(0.35),
        ..ScenarioConfig::default()
    };

    let mut ratios: Vec<f64> = Vec::new();
    let mut skipped = 0;
    for seed in 0..instances {
        let Ok(s) = generate(&config, seed) else {
            skipped += 1;
            continue;
        };
        let Ok(heuristic) = sft_core::solve(&s.network, &s.task, Strategy::Msa, StageTwo::Opa)
        else {
            skipped += 1;
            continue;
        };
        let Ok(model) = IlpModel::build(&s.network, &s.task) else {
            skipped += 1;
            continue;
        };
        let mip = MipConfig {
            max_nodes: 20_000,
            time_limit: Some(Duration::from_secs(60)),
            warm_start: model.warm_start(&s.network, &s.task, &heuristic.embedding),
            ..MipConfig::default()
        };
        match model.solve(&s.network, &s.task, &mip) {
            Ok(out) if out.status == MipStatus::Optimal => {
                let opt = out.objective.expect("optimal has an objective");
                // Clamp float noise: the assertion below guarantees the
                // true ratio is >= 1.
                let ratio = (heuristic.cost.total() / opt.max(1e-12)).max(1.0);
                println!(
                    "seed {seed:>3}: heuristic {:>8.2}  OPT {:>8.2}  ratio {ratio:.4}",
                    heuristic.cost.total(),
                    opt
                );
                assert!(ratio >= 1.0 - 1e-6, "heuristic must not beat OPT");
                ratios.push(ratio);
            }
            _ => {
                println!("seed {seed:>3}: ILP budget exhausted, skipped");
                skipped += 1;
            }
        }
    }

    if ratios.is_empty() {
        println!("no instances certified");
        return;
    }
    ratios.sort_by(f64::total_cmp);
    let n = ratios.len();
    let mean = ratios.iter().sum::<f64>() / n as f64;
    let exact = ratios.iter().filter(|&&r| r < 1.0 + 1e-6).count();
    println!("\ncertified {n} instances ({skipped} skipped)");
    println!(
        "ratio: mean {mean:.4}  median {:.4}  max {:.4}",
        ratios[n / 2],
        ratios[n - 1]
    );
    println!(
        "heuristic found the exact optimum on {exact}/{n} instances ({:.0}%)",
        100.0 * exact as f64 / n as f64
    );
    println!("theoretical bound with KMB: 1 + rho = 3");
    // Histogram in 0.1-wide buckets.
    println!("\nhistogram:");
    let mut bucket = 1.0;
    while bucket <= ratios[n - 1] + 0.1 {
        let count = ratios
            .iter()
            .filter(|&&r| r >= bucket && r < bucket + 0.1)
            .count();
        println!(
            "  [{:.1}, {:.1}): {}",
            bucket,
            bucket + 0.1,
            "#".repeat(count)
        );
        bucket += 0.1;
    }
}
