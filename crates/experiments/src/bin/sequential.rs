//! Sequential-arrival experiment (§IV-D at scale): a stream of multicast
//! tasks embeds against an evolving network whose instances accrete, and
//! the per-task setup cost and reuse ratio are tracked over time.
//!
//! Pass `--quick` for a shorter stream.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sft_core::{MulticastTask, SequentialEmbedder, Sfc, Strategy, VnfId};
use sft_experiments::Effort;
use sft_graph::NodeId;
use sft_topology::{generate, ScenarioConfig};

fn main() {
    let effort = Effort::from_args();
    let tasks = match effort {
        Effort::Quick => 10,
        Effort::Paper => 40,
    };
    // A fresh 80-node network with NO pre-deployments: all reuse observed
    // below is created by the task stream itself.
    let config = ScenarioConfig {
        network_size: 80,
        deployed_density: 0.0,
        catalog_size: 8,
        dest_ratio: 0.1,
        sfc_len: 4,
        ..ScenarioConfig::default()
    };
    let scenario = generate(&config, 12).expect("scenario generation");
    let n = scenario.network.node_count();
    let mut embedder = SequentialEmbedder::new(scenario.network, Strategy::Msa);
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "{:>5}{:>12}{:>10}{:>8}{:>8}{:>10}",
        "task", "cost", "setup", "new", "reuse", "reuse%"
    );
    for t in 0..tasks {
        // Random task over the shared 8-type catalog: random source, 4-8
        // destinations, a random 4-chain.
        let source = NodeId(rng.random_range(0..n));
        let mut dests = Vec::new();
        let want = 4 + rng.random_range(0..5usize);
        while dests.len() < want {
            let d = NodeId(rng.random_range(0..n));
            if d != source && !dests.contains(&d) {
                dests.push(d);
            }
        }
        let mut types: Vec<VnfId> = (0..8).map(VnfId).collect();
        for i in 0..4 {
            let j = rng.random_range(i..8);
            types.swap(i, j);
        }
        let task = MulticastTask::new(source, dests, Sfc::new(types[..4].to_vec()).unwrap())
            .expect("valid task");
        match embedder.embed(&task, &mut rng) {
            Ok(_) => {
                let rec = embedder.history().last().unwrap();
                println!(
                    "{t:>5}{:>12.1}{:>10.1}{:>8}{:>8}{:>10.1}",
                    rec.cost,
                    rec.setup,
                    rec.new_instances,
                    rec.reused_instances,
                    100.0 * embedder.reuse_ratio()
                );
            }
            Err(e) => println!("{t:>5}  infeasible: {e}"),
        }
    }
    let history = embedder.history();
    let first_half: f64 = history[..history.len() / 2].iter().map(|r| r.setup).sum();
    let second_half: f64 = history[history.len() / 2..].iter().map(|r| r.setup).sum();
    println!(
        "\nsetup cost, first half vs second half of the stream: {first_half:.1} vs {second_half:.1}"
    );
    println!("final reuse ratio: {:.1}%", 100.0 * embedder.reuse_ratio());
}
