//! Extension experiment: algorithm robustness across topology families.
//!
//! The paper evaluates ER networks and one real backbone. This sweep runs
//! the same Table-I workload over five structurally different families —
//! ER, random geometric, grid, fat-tree, Palmetto — and checks that the
//! MSA > SCA/RSA ordering is topology-independent.
//!
//! Pass `--quick` for fewer seeds.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sft_core::{MulticastTask, Network, Sfc, VnfCatalog, VnfId};
use sft_experiments::{record::FigureData, runner, Effort, ExperimentError};
use sft_graph::parallel::{run_partitioned, Parallelism};
use sft_graph::{generate, Graph, NodeId};
use sft_topology::{palmetto, Scenario};

fn topology(family: &str, seed: u64) -> Result<Graph, ExperimentError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = match family {
        "er" => {
            generate::euclidean_er(60, 0.082, 100.0, &mut rng)
                .map_err(sft_core::CoreError::from)?
                .graph
        }
        "geometric" => {
            generate::random_geometric(60, 22.0, 100.0, &mut rng)
                .map_err(sft_core::CoreError::from)?
                .graph
        }
        "grid" => generate::grid(8, 8, 10.0).map_err(sft_core::CoreError::from)?,
        "fat-tree" => generate::fat_tree(4, 4.0).map_err(sft_core::CoreError::from)?,
        "palmetto" => palmetto::graph(),
        other => {
            return Err(ExperimentError::Config(format!(
                "unknown topology family `{other}` (er, geometric, grid, fat-tree, palmetto)"
            )))
        }
    };
    Ok(graph)
}

fn scenario(family: &str, seed: u64) -> Result<Scenario, ExperimentError> {
    let graph = topology(family, seed)?;
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let l_g = graph
        .all_pairs_shortest_paths()?
        .average_distance()
        .max(1e-9);
    let mut builder = Network::builder(graph, VnfCatalog::uniform(8))
        .all_servers(3.0)?
        .uniform_setup_cost(2.0 * l_g)?;
    // Scatter some deployments so reuse matters on every family.
    for _ in 0..n {
        let f = VnfId(rng.random_range(0..8));
        let v = NodeId(rng.random_range(0..n));
        builder = match builder.clone().deploy(f, v) {
            Ok(b) => b,
            Err(_) => builder,
        };
    }
    let network = builder.build()?;
    let source = NodeId(rng.random_range(0..n));
    let mut dests = Vec::new();
    while dests.len() < (n / 10).max(3) {
        let d = NodeId(rng.random_range(0..n));
        if d != source && !dests.contains(&d) {
            dests.push(d);
        }
    }
    let task = MulticastTask::new(
        source,
        dests,
        Sfc::new((0..4).map(VnfId).collect::<Vec<_>>())?,
    )?;
    task.check_against(&network)?;
    Ok(Scenario {
        network,
        task,
        seed,
    })
}

fn main() -> Result<(), ExperimentError> {
    let effort = Effort::from_args();
    let families = ["er", "geometric", "grid", "fat-tree", "palmetto"];
    let mut fig = FigureData::new(
        "topologies",
        "robustness across topology families (60-64 nodes, k = 4, mu = 2)",
        "family#",
        &runner::HEURISTICS,
    );
    for (fi, family) in families.iter().enumerate() {
        let row = fig.push_x(fi as f64 + 1.0);
        // Per-seed parallel sweep; records land in seed order either way.
        let per_seed = run_partitioned(Parallelism::auto(), effort.reps(), |range| {
            range
                .map(|rep| {
                    let result = scenario(family, 100 * (fi as u64 + 1) + rep as u64)
                        .and_then(|s| Ok(runner::run_heuristics(&s)?));
                    (rep, result)
                })
                .collect::<Vec<_>>()
        });
        for (rep, result) in per_seed.into_iter().flatten() {
            match result {
                Ok(runs) => {
                    for run in runs {
                        fig.record(row, run.algo, run.cost, run.ms)?;
                    }
                }
                Err(e) => eprintln!("{family} seed {rep}: {e}"),
            }
        }
        fig.notes.push(format!("family {} = {family}", fi + 1));
    }
    if let Some((avg, max)) = fig.saving_vs("MSA", "RSA") {
        fig.notes.push(format!(
            "MSA saves {:.2}% on average (max {:.2}%) vs RSA across all families",
            avg * 100.0,
            max * 100.0
        ));
    }
    print!("{}", fig.render());
    match fig.write_csv(std::path::Path::new("results")) {
        Ok(p) => println!("csv: {}", p.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
    Ok(())
}
