//! Arrival/departure churn: the session-lifecycle experiment.
//!
//! The paper's evaluation embeds each task once into a progressively
//! fuller network; a production service instead faces *churn* — sessions
//! arrive (Poisson), hold capacity for an exponentially distributed
//! lifetime, and depart, releasing what they held. This module sweeps
//! offered load (Erlangs = arrival rate × mean holding time) over a
//! long session stream and reports the steady-state behaviour the
//! lifecycle work enables:
//!
//! * **blocking probability** — the share of arrivals bounced for
//!   capacity, which now stabilises with load instead of climbing to
//!   1.0 as the network drains monotonically;
//! * **mean live sessions** (time-averaged) against the offered load,
//!   the Erlang-style occupancy curve;
//! * **leak check** — after the last departure, per-node *and* per-link
//!   residuals must be bit-identical to the seed network.
//!
//! With [`ChurnConfig::link_bw`] and [`ChurnConfig::bandwidth`] set, the
//! same stream runs bandwidth-constrained: every link carries a capacity
//! and every session a demand, so blocking reflects both resources.
//!
//! Everything is in-process (one [`EmbedService`], no socket) and fully
//! deterministic in the seed.

use crate::ExperimentError;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use sft_core::{CommitDelta, Network, VnfCatalog};
use sft_graph::{Graph, NodeId};
use sft_service::protocol::EmbedRequest;
use sft_service::EmbedService;
use std::collections::BTreeMap;

/// One churn run's parameters.
#[derive(Copy, Clone, Debug)]
pub struct ChurnConfig {
    /// Ring size (every node a server).
    pub nodes: usize,
    /// Per-server capacity (uniform catalog: every instance demands 1.0).
    pub capacity: f64,
    /// VNF catalog size; chains use types `0..len` for `len ≤ sfc_types`.
    pub sfc_types: usize,
    /// Sessions in the stream.
    pub sessions: usize,
    /// Poisson arrival rate (sessions per unit time).
    pub rate: f64,
    /// Mean exponential holding time.
    pub hold: f64,
    /// Maximum destinations per task.
    pub dests: usize,
    /// RNG seed for arrivals, holding times, and task shapes.
    pub seed: u64,
    /// Uniform link bandwidth; `None` leaves every link uncapacitated
    /// (the legacy bandwidth-free model, bit-identical streams).
    pub link_bw: Option<f64>,
    /// Per-session bandwidth-demand ceiling: each session draws its
    /// demand uniformly from `(0, this]`. `None` disables demands and
    /// keeps the task stream byte-identical to the legacy one.
    pub bandwidth: Option<f64>,
    /// Uniform link propagation latency; `None` leaves links latency-free
    /// (delay math falls back to edge weights).
    pub link_latency: Option<f64>,
    /// Per-session delay-budget ceiling: each session draws its budget
    /// uniformly from `(this/2, this]`. `None` disables budgets and
    /// keeps the task stream byte-identical to the legacy one.
    pub delay_budget: Option<f64>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            nodes: 12,
            capacity: 3.0,
            sfc_types: 3,
            sessions: 400,
            rate: 1.0,
            hold: 10.0,
            dests: 3,
            seed: 0,
            link_bw: None,
            bandwidth: None,
            link_latency: None,
            delay_budget: None,
        }
    }
}

/// Steady-state measurements of one churn run.
#[derive(Copy, Clone, Debug)]
pub struct ChurnPoint {
    /// Offered load `rate * hold` in Erlangs.
    pub offered_erlangs: f64,
    /// Arrivals admitted (committed).
    pub admitted: usize,
    /// Arrivals bounced (`insufficient_capacity` / infeasible).
    pub blocked: usize,
    /// `blocked / (admitted + blocked)`.
    pub blocking_probability: f64,
    /// Time-averaged number of live sessions.
    pub mean_live: f64,
    /// Peak simultaneous live sessions.
    pub peak_live: usize,
    /// Whether the drained network matched the seed bit-for-bit.
    pub leak_free: bool,
}

/// An event in virtual time; departures at an equal timestamp sort after
/// the arrival that created them via the sequence tiebreak.
#[derive(Copy, Clone, Debug, PartialEq)]
struct Event {
    time: f64,
    tiebreak: usize,
    session: u64,
    kind: EventKind,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EventKind {
    Arrive,
    Depart,
}

fn ring_network(config: &ChurnConfig) -> Result<Network, ExperimentError> {
    let mut g = Graph::new(config.nodes);
    for i in 0..config.nodes {
        let e = g.add_edge_with_capacity(
            NodeId(i),
            NodeId((i + 1) % config.nodes),
            1.0,
            config.link_bw,
        )?;
        if config.link_latency.is_some() {
            g.set_edge_latency(e, config.link_latency)?;
        }
    }
    Ok(Network::builder(g, VnfCatalog::uniform(config.sfc_types))
        .all_servers(config.capacity)?
        .uniform_setup_cost(2.0)?
        .build()?)
}

/// Runs one arrival/departure stream through a fresh service.
///
/// # Errors
///
/// [`ExperimentError`] on a bad configuration or a network-build failure
/// (admission rejections are *data*, not errors).
pub fn run(config: &ChurnConfig) -> Result<ChurnPoint, ExperimentError> {
    if config.rate <= 0.0 || config.hold <= 0.0 {
        return Err(ExperimentError::Config(
            "churn rate and hold must be positive".into(),
        ));
    }
    if config.dests == 0 || config.dests >= config.nodes {
        return Err(ExperimentError::Config(format!(
            "churn dests must be in 1..{}",
            config.nodes
        )));
    }
    let seed_network = ring_network(config)?;
    let mut svc = EmbedService::with_defaults(seed_network.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let exp = |rng: &mut StdRng, mean: f64| -> f64 {
        let u: f64 = rng.random::<f64>();
        -(1.0 - u).ln() * mean
    };

    // Generate the full event stream up front (arrival order == id order).
    let mut events = Vec::with_capacity(config.sessions * 2);
    let mut clock = 0.0;
    for s in 0..config.sessions {
        clock += exp(&mut rng, 1.0 / config.rate);
        let depart = clock + exp(&mut rng, config.hold);
        let session = s as u64 + 1;
        events.push(Event {
            time: clock,
            tiebreak: s,
            session,
            kind: EventKind::Arrive,
        });
        events.push(Event {
            time: depart,
            tiebreak: config.sessions + s,
            session,
            kind: EventKind::Depart,
        });
    }
    let mut shapes = BTreeMap::new();
    for s in 0..config.sessions {
        let source = rng.random_range(0..config.nodes);
        let count = rng.random_range(1..=config.dests);
        let mut dests = Vec::with_capacity(count);
        while dests.len() < count {
            let d = rng.random_range(0..config.nodes);
            if d != source && !dests.contains(&d) {
                dests.push(d);
            }
        }
        let len = rng.random_range(1..=config.sfc_types);
        // Drawn only when demands/budgets are enabled — and always in
        // this order — so configs without them consume exactly the
        // legacy RNG stream.
        let demand = config
            .bandwidth
            .map(|max| (max * (1.0 - rng.random::<f64>())).max(max * 1e-3));
        // (max/2, max]: tight enough to bite on long routes, loose
        // enough that the stream is not all-infeasible.
        let budget = config
            .delay_budget
            .map(|max| max * (1.0 - 0.5 * rng.random::<f64>()));
        shapes.insert(
            s as u64 + 1,
            (source, dests, (0..len).collect::<Vec<_>>(), demand, budget),
        );
    }
    events.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.tiebreak.cmp(&b.tiebreak))
    });

    // Replay the stream, time-averaging the live-session count.
    let mut live: BTreeMap<u64, CommitDelta> = BTreeMap::new();
    let mut admitted = 0usize;
    let mut blocked = 0usize;
    let mut peak_live = 0usize;
    let mut live_area = 0.0;
    let mut last_time = 0.0;
    for event in &events {
        live_area += live.len() as f64 * (event.time - last_time);
        last_time = event.time;
        match event.kind {
            EventKind::Arrive => {
                let (source, dests, sfc, demand, budget) = shapes[&event.session].clone();
                let mut req = EmbedRequest::new(source, dests, sfc);
                req.bandwidth = demand;
                req.delay_budget_ms = budget;
                let outcome = req
                    .to_task()
                    .map_err(sft_service::ServiceError::Core)
                    .and_then(|task| {
                        let result = svc.solve_uncommitted(&task)?;
                        let delta = svc.network().commit_delta(&task, &result.embedding);
                        svc.apply_commit(&delta)?;
                        Ok(delta)
                    });
                match outcome {
                    Ok(delta) => {
                        admitted += 1;
                        live.insert(event.session, delta);
                        peak_live = peak_live.max(live.len());
                    }
                    Err(_) => blocked += 1,
                }
            }
            EventKind::Depart => {
                // Blocked arrivals still emit a departure event; only
                // admitted sessions hold capacity to give back.
                if let Some(delta) = live.remove(&event.session) {
                    svc.apply_release(&delta)
                        .expect("a live session's release cannot fail");
                }
            }
        }
    }

    let leak_free = {
        let network = svc.network();
        network.deployment_refcounts() == seed_network.deployment_refcounts()
            && (0..config.nodes).all(|v| {
                network.residual_capacity(NodeId(v)) == seed_network.residual_capacity(NodeId(v))
            })
            && network.edge_usage().is_empty()
            && network
                .graph()
                .edge_ids()
                .all(|e| network.edge_residual(e) == seed_network.edge_residual(e))
    };
    let horizon = last_time.max(f64::MIN_POSITIVE);
    Ok(ChurnPoint {
        offered_erlangs: config.rate * config.hold,
        admitted,
        blocked,
        blocking_probability: blocked as f64 / (admitted + blocked).max(1) as f64,
        mean_live: live_area / horizon,
        peak_live,
        leak_free,
    })
}

/// Sweeps offered load (by scaling the arrival rate at fixed holding
/// time) and returns one [`ChurnPoint`] per load level, plus a final
/// delay-constrained point: the mid-load stream replayed on a ring with
/// per-link latency and per-session delay budgets, so the sweep also
/// exercises QoS refusals (and their leak-free release path).
///
/// # Errors
///
/// [`ExperimentError`] from any individual run.
pub fn sweep(quick: bool) -> Result<Vec<ChurnPoint>, ExperimentError> {
    let sessions = if quick { 150 } else { 1000 };
    let mut points: Vec<ChurnPoint> = [0.2, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&rate| {
            run(&ChurnConfig {
                sessions,
                rate,
                ..ChurnConfig::default()
            })
        })
        .collect::<Result<_, _>>()?;
    points.push(run(&ChurnConfig {
        sessions,
        rate: 1.0,
        link_latency: Some(1.0),
        delay_budget: Some(8.0),
        ..ChurnConfig::default()
    })?);
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_run_is_deterministic_and_leak_free() {
        let config = ChurnConfig {
            sessions: 120,
            ..ChurnConfig::default()
        };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert!(a.leak_free, "drained network must match the seed");
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.blocked, b.blocked);
        assert_eq!(a.mean_live, b.mean_live);
        assert_eq!(a.admitted + a.blocked, 120);
    }

    #[test]
    fn blocking_rises_with_offered_load() {
        let light = run(&ChurnConfig {
            sessions: 150,
            rate: 0.2,
            ..ChurnConfig::default()
        })
        .unwrap();
        let heavy = run(&ChurnConfig {
            sessions: 150,
            rate: 8.0,
            ..ChurnConfig::default()
        })
        .unwrap();
        assert!(light.leak_free && heavy.leak_free);
        assert!(
            heavy.blocking_probability >= light.blocking_probability,
            "heavier load cannot block less: {light:?} vs {heavy:?}"
        );
        assert!(heavy.mean_live >= light.mean_live);
    }

    #[test]
    fn bandwidth_constrained_churn_is_leak_free_and_blocks_no_less() {
        let base = ChurnConfig {
            sessions: 120,
            rate: 2.0,
            ..ChurnConfig::default()
        };
        let plain = run(&base).unwrap();
        let constrained = ChurnConfig {
            link_bw: Some(1.5),
            bandwidth: Some(1.0),
            ..base
        };
        let a = run(&constrained).unwrap();
        let b = run(&constrained).unwrap();
        assert!(a.leak_free, "drained links must return to seed bandwidth");
        assert_eq!(a.admitted, b.admitted, "bandwidth churn is deterministic");
        assert_eq!(a.mean_live, b.mean_live);
        assert_eq!(a.admitted + a.blocked, 120);
        assert!(
            a.blocked >= plain.blocked,
            "adding a second constraint cannot unblock arrivals: {a:?} vs {plain:?}"
        );
    }

    #[test]
    fn delay_constrained_churn_is_leak_free_and_blocks_no_less() {
        let base = ChurnConfig {
            sessions: 120,
            rate: 2.0,
            ..ChurnConfig::default()
        };
        let plain = run(&base).unwrap();
        let constrained = ChurnConfig {
            link_latency: Some(1.0),
            delay_budget: Some(6.0),
            ..base
        };
        let a = run(&constrained).unwrap();
        let b = run(&constrained).unwrap();
        assert!(a.leak_free, "delay refusals must not leak capacity");
        assert_eq!(a.admitted, b.admitted, "delay churn is deterministic");
        assert_eq!(a.mean_live, b.mean_live);
        assert_eq!(a.admitted + a.blocked, 120);
        assert!(
            a.blocked >= plain.blocked,
            "adding a delay constraint cannot unblock arrivals: {a:?} vs {plain:?}"
        );
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(run(&ChurnConfig {
            rate: 0.0,
            ..ChurnConfig::default()
        })
        .is_err());
        assert!(run(&ChurnConfig {
            dests: 12,
            ..ChurnConfig::default()
        })
        .is_err());
    }
}
