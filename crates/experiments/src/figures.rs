//! One builder per paper figure (Figs. 8–14 of §V).
//!
//! Every builder sweeps exactly the parameter its figure sweeps, at the
//! paper's settings, and reports mean delivery cost and mean runtime per
//! algorithm. The OPT curve of Fig. 13 is reproduced on reduced Palmetto
//! instances where the from-scratch branch-and-bound is exact (DESIGN.md
//! §5, substitution 1).

use crate::record::{FigureData, SolverTelemetry};
use crate::runner::{run_heuristics, HeuristicRun};
use crate::{Effort, ExperimentError};
use sft_core::ilp::IlpModel;
use sft_core::{CoreError, StageTwo, Strategy};
use sft_graph::parallel::{run_partitioned, Parallelism};
use sft_lp::{MipConfig, MipStatus};
use sft_topology::{generate, palmetto, workload, Scenario, ScenarioConfig};
use std::time::{Duration, Instant};

/// Network sizes swept by Figs. 8–11.
fn sizes(effort: Effort) -> Vec<usize> {
    match effort {
        Effort::Quick => vec![50, 100],
        Effort::Paper => vec![50, 100, 150, 200, 250],
    }
}

/// SFC lengths swept by Figs. 12 and 14.
fn sfc_lengths(effort: Effort) -> Vec<usize> {
    match effort {
        Effort::Quick => vec![5, 10],
        Effort::Paper => vec![5, 10, 15, 20, 25],
    }
}

/// Runs the heuristics over `reps` seeds of each `(x, config)` point.
///
/// The seeds of one point are independent, so they run on worker threads
/// (one per available core); results are recorded in seed order, so the
/// figure data is identical to the serial sweep's.
fn sweep(
    fig: &mut FigureData,
    points: &[(f64, ScenarioConfig)],
    effort: Effort,
    make: impl Fn(&ScenarioConfig, u64) -> Result<Scenario, CoreError> + Sync,
) -> Result<(), ExperimentError> {
    for (pi, (x, config)) in points.iter().enumerate() {
        let row = fig.push_x(*x);
        let per_seed: Vec<Result<Vec<HeuristicRun>, CoreError>> =
            run_partitioned(Parallelism::auto(), effort.reps(), |range| {
                range
                    .map(|rep| {
                        let seed = 1000 * (pi as u64 + 1) + rep as u64;
                        run_heuristics(&make(config, seed)?)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        for runs in per_seed {
            for run in runs? {
                fig.record(row, run.algo, run.cost, run.ms)?;
            }
        }
    }
    if let Some((avg, max)) = fig.saving_vs("MSA", "RSA") {
        fig.notes.push(format!(
            "MSA saves {:.2}% on average (max {:.2}%) vs RSA",
            avg * 100.0,
            max * 100.0
        ));
    }
    Ok(())
}

fn size_sweep_figure(
    id: &str,
    title: &str,
    effort: Effort,
    dest_ratio: f64,
    mu: f64,
) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(id, title, "|V|", &crate::runner::HEURISTICS);
    let points: Vec<(f64, ScenarioConfig)> = sizes(effort)
        .into_iter()
        .map(|n| {
            (
                n as f64,
                ScenarioConfig {
                    network_size: n,
                    dest_ratio,
                    deployment_cost_mu: mu,
                    sfc_len: 5,
                    ..ScenarioConfig::default()
                },
            )
        })
        .collect();
    sweep(&mut fig, &points, effort, generate)?;
    Ok(fig)
}

/// Fig. 8: cost & runtime vs network size at `|D|/|V| = 0.1`.
pub fn fig08(effort: Effort) -> Result<FigureData, ExperimentError> {
    size_sweep_figure(
        "fig08",
        "traffic delivery cost and running time vs network size, |D|/|V| = 0.1 (k = 5, mu = 2)",
        effort,
        0.1,
        2.0,
    )
}

/// Fig. 9: cost & runtime vs network size at `|D|/|V| = 0.3`.
pub fn fig09(effort: Effort) -> Result<FigureData, ExperimentError> {
    size_sweep_figure(
        "fig09",
        "traffic delivery cost and running time vs network size, |D|/|V| = 0.3 (k = 5, mu = 2)",
        effort,
        0.3,
        2.0,
    )
}

/// Fig. 10: cost & runtime vs network size with setup cost `1 × l_G`.
pub fn fig10(effort: Effort) -> Result<FigureData, ExperimentError> {
    size_sweep_figure(
        "fig10",
        "traffic delivery cost and running time vs network size, setup cost 1 x l_G (ratio 0.2)",
        effort,
        0.2,
        1.0,
    )
}

/// Fig. 11: cost & runtime vs network size with setup cost `3 × l_G`.
pub fn fig11(effort: Effort) -> Result<FigureData, ExperimentError> {
    size_sweep_figure(
        "fig11",
        "traffic delivery cost and running time vs network size, setup cost 3 x l_G (ratio 0.2)",
        effort,
        0.2,
        3.0,
    )
}

/// Fig. 12: cost & runtime vs SFC length on 200-node networks.
pub fn fig12(effort: Effort) -> Result<FigureData, ExperimentError> {
    let network_size = match effort {
        Effort::Quick => 60,
        Effort::Paper => 200,
    };
    let mut fig = FigureData::new(
        "fig12",
        format!(
            "traffic delivery cost and running time vs SFC length (|V| = {network_size}, ratio 0.2, mu = 3)"
        ),
        "SFC length",
        &crate::runner::HEURISTICS,
    );
    let points: Vec<(f64, ScenarioConfig)> = sfc_lengths(effort)
        .into_iter()
        .map(|k| {
            (
                k as f64,
                ScenarioConfig {
                    network_size,
                    dest_ratio: 0.2,
                    deployment_cost_mu: 3.0,
                    sfc_len: k,
                    ..ScenarioConfig::default()
                },
            )
        })
        .collect();
    sweep(&mut fig, &points, effort, generate)?;
    Ok(fig)
}

/// Fig. 13 (heuristic panel): Palmetto network, cost & runtime vs `|D|`.
pub fn fig13_heuristics(effort: Effort) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(
        "fig13",
        "PalmettoNet: traffic delivery cost and running time vs |D| (k = 10, mu = 2)",
        "|D|",
        &crate::runner::HEURISTICS,
    );
    let dests = match effort {
        Effort::Quick => vec![5, 15],
        Effort::Paper => vec![5, 10, 15, 20, 25],
    };
    let n = palmetto::NODE_COUNT as f64;
    let points: Vec<(f64, ScenarioConfig)> = dests
        .into_iter()
        .map(|d| {
            (
                d as f64,
                ScenarioConfig {
                    dest_ratio: d as f64 / n,
                    deployment_cost_mu: 2.0,
                    sfc_len: 10,
                    ..ScenarioConfig::default()
                },
            )
        })
        .collect();
    sweep(&mut fig, &points, effort, |c, s| {
        workload::on_graph(palmetto::graph(), c, s)
    })?;
    Ok(fig)
}

/// Fig. 13 (OPT panel): exact ILP vs the heuristics on reduced Palmetto
/// instances (first 10 cities, k = 2) where branch-and-bound is
/// tractable — the paper used CPLEX on the full network; see DESIGN.md §5.
pub fn fig13_opt(effort: Effort) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(
        "fig13_opt",
        "reduced PalmettoNet (10 cities, k = 2): exact ILP optimum vs the heuristics",
        "|D|",
        &["MSA", "SCA", "RSA", "OPT"],
    );
    let dests = match effort {
        Effort::Quick => vec![2, 3],
        Effort::Paper => vec![2, 3, 4],
    };
    let reps = match effort {
        Effort::Quick => 1,
        Effort::Paper => 3,
    };
    let nodes = 10;
    let mut ratios = Vec::new();
    for (pi, d) in dests.iter().enumerate() {
        let row = fig.push_x(*d as f64);
        let config = ScenarioConfig {
            dest_ratio: *d as f64 / nodes as f64,
            deployment_cost_mu: 2.0,
            sfc_len: 2,
            ..ScenarioConfig::default()
        };
        for rep in 0..reps {
            let seed = 500 * (pi as u64 + 1) + rep as u64;
            let scenario = workload::on_graph(palmetto::reduced_graph(nodes), &config, seed)?;
            let runs = run_heuristics(&scenario)?;
            let msa_cost = runs
                .iter()
                .find(|r| r.algo == "MSA")
                .map(|r| r.cost)
                .expect("MSA always runs");
            for run in &runs {
                fig.record(row, run.algo, run.cost, run.ms)?;
            }

            // Exact solve, warm-started from the MSA solution.
            let model = IlpModel::build(&scenario.network, &scenario.task)?;
            let warm = sft_core::solve(
                &scenario.network,
                &scenario.task,
                Strategy::Msa,
                StageTwo::Opa,
            )
            .ok()
            .and_then(|r| model.warm_start(&scenario.network, &scenario.task, &r.embedding));
            let mip = MipConfig {
                max_nodes: match effort {
                    Effort::Quick => 200,
                    Effort::Paper => 4000,
                },
                time_limit: Some(match effort {
                    Effort::Quick => Duration::from_secs(20),
                    Effort::Paper => Duration::from_secs(120),
                }),
                warm_start: warm,
                ..MipConfig::default()
            };
            let start = Instant::now();
            let out = model.solve(&scenario.network, &scenario.task, &mip)?;
            let ms = start.elapsed().as_secs_f64() * 1e3;
            fig.telemetry.push(SolverTelemetry {
                row,
                backend: mip.backend.resolve(model.problem()).name().to_string(),
                bb_nodes: out.nodes as u64,
                lp_stats: out.lp_stats,
            });
            if let Some(obj) = out.objective {
                fig.record(row, "OPT", obj, ms)?;
                if obj > 0.0 {
                    ratios.push(msa_cost / obj);
                }
                if out.status != MipStatus::Optimal {
                    fig.notes.push(format!(
                        "|D|={d} seed {seed}: ILP hit its budget (status {:?}); OPT value is an incumbent",
                        out.status
                    ));
                }
            }
        }
    }
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        fig.notes.push(format!(
            "empirical MSA/OPT approximation ratio: avg {avg:.3}, max {max:.3} (theoretical bound 1 + rho = 3 with KMB)"
        ));
    }
    if let Some((avg, _)) = fig.saving_vs("OPT", "MSA") {
        fig.notes.push(format!(
            "OPT undercuts MSA by {:.2}% on average",
            avg * 100.0
        ));
    }
    Ok(fig)
}

/// Fig. 14: Palmetto network, cost & runtime vs SFC length at `|D| = 15`.
pub fn fig14(effort: Effort) -> Result<FigureData, ExperimentError> {
    let mut fig = FigureData::new(
        "fig14",
        "PalmettoNet: traffic delivery cost and running time vs SFC length (|D| = 15, mu = 2)",
        "SFC length",
        &crate::runner::HEURISTICS,
    );
    let n = palmetto::NODE_COUNT as f64;
    let points: Vec<(f64, ScenarioConfig)> = sfc_lengths(effort)
        .into_iter()
        .map(|k| {
            (
                k as f64,
                ScenarioConfig {
                    dest_ratio: 15.0 / n,
                    deployment_cost_mu: 2.0,
                    sfc_len: k,
                    ..ScenarioConfig::default()
                },
            )
        })
        .collect();
    sweep(&mut fig, &points, effort, |c, s| {
        workload::on_graph(palmetto::graph(), c, s)
    })?;
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig08_has_expected_shape() {
        let fig = fig08(Effort::Quick).unwrap();
        assert_eq!(fig.xs, vec![50.0, 100.0]);
        assert_eq!(fig.algos.len(), 3);
        for row in 0..fig.xs.len() {
            for algo in ["MSA", "SCA", "RSA"] {
                assert!(fig.mean_cost(row, algo).unwrap() > 0.0);
            }
        }
        // Cost grows with network size (paper's qualitative claim).
        assert!(fig.mean_cost(1, "MSA").unwrap() > fig.mean_cost(0, "MSA").unwrap());
    }

    #[test]
    fn quick_fig13_runs_on_palmetto() {
        let fig = fig13_heuristics(Effort::Quick).unwrap();
        assert_eq!(fig.xs, vec![5.0, 15.0]);
        assert!(fig.mean_cost(1, "RSA").unwrap() >= fig.mean_cost(1, "MSA").unwrap() * 0.8);
    }
}
