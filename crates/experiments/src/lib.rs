//! Experiment harness regenerating every figure of the paper's evaluation
//! (§V, Figs. 8–14).
//!
//! Each paper figure has a builder in [`figures`] that sweeps the same
//! parameter the paper sweeps, runs MSA / SCA / RSA (and, where the paper
//! used CPLEX, the exact ILP on reduced instances — see DESIGN.md §5) over
//! several seeds, and aggregates mean delivery cost and wall-clock runtime
//! into a [`FigureData`] table. The `fig08` … `fig14` binaries print those
//! tables and drop CSVs under `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p sft-experiments --bin all
//! ```
//!
//! (`--quick` on any binary shrinks repetitions for a fast smoke run.)

pub mod ablations;
pub mod churn;
pub mod figures;
pub mod record;
pub mod runner;

pub use record::{CellStats, FigureData, RecordError};
pub use runner::{run_heuristics, HeuristicRun};

use sft_core::CoreError;
use std::fmt;

/// Errors from the experiment harness: either a solver/scenario failure
/// bubbling up from the domain layer, a figure-bookkeeping mistake, or a
/// bad experiment configuration (e.g. an unknown topology-family name).
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The domain layer failed (scenario generation, a solve, the ILP).
    Core(CoreError),
    /// A figure cell was addressed that does not exist.
    Record(RecordError),
    /// The sweep itself was misconfigured.
    Config(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Core(e) => write!(f, "{e}"),
            ExperimentError::Record(e) => write!(f, "figure bookkeeping: {e}"),
            ExperimentError::Config(reason) => write!(f, "bad experiment config: {reason}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Core(e) => Some(e),
            ExperimentError::Record(e) => Some(e),
            ExperimentError::Config(_) => None,
        }
    }
}

impl From<CoreError> for ExperimentError {
    fn from(e: CoreError) -> Self {
        ExperimentError::Core(e)
    }
}

impl From<RecordError> for ExperimentError {
    fn from(e: RecordError) -> Self {
        ExperimentError::Record(e)
    }
}

impl From<sft_graph::GraphError> for ExperimentError {
    fn from(e: sft_graph::GraphError) -> Self {
        ExperimentError::Core(CoreError::Graph(e))
    }
}

/// How much work to spend per figure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Effort {
    /// A smoke-test sweep: fewer seeds, smaller extremes.
    Quick,
    /// The paper-scale sweep.
    Paper,
}

impl Effort {
    /// Parses process arguments: `--quick` selects [`Effort::Quick`].
    pub fn from_args() -> Effort {
        if std::env::args().any(|a| a == "--quick") {
            Effort::Quick
        } else {
            Effort::Paper
        }
    }

    /// Seeds per sweep point.
    pub fn reps(self) -> usize {
        match self {
            Effort::Quick => 2,
            Effort::Paper => 5,
        }
    }
}
