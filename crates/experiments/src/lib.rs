//! Experiment harness regenerating every figure of the paper's evaluation
//! (§V, Figs. 8–14).
//!
//! Each paper figure has a builder in [`figures`] that sweeps the same
//! parameter the paper sweeps, runs MSA / SCA / RSA (and, where the paper
//! used CPLEX, the exact ILP on reduced instances — see DESIGN.md §5) over
//! several seeds, and aggregates mean delivery cost and wall-clock runtime
//! into a [`FigureData`] table. The `fig08` … `fig14` binaries print those
//! tables and drop CSVs under `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p sft-experiments --bin all
//! ```
//!
//! (`--quick` on any binary shrinks repetitions for a fast smoke run.)

pub mod ablations;
pub mod figures;
pub mod record;
pub mod runner;

pub use record::{CellStats, FigureData};
pub use runner::{run_heuristics, HeuristicRun};

/// How much work to spend per figure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Effort {
    /// A smoke-test sweep: fewer seeds, smaller extremes.
    Quick,
    /// The paper-scale sweep.
    Paper,
}

impl Effort {
    /// Parses process arguments: `--quick` selects [`Effort::Quick`].
    pub fn from_args() -> Effort {
        if std::env::args().any(|a| a == "--quick") {
            Effort::Quick
        } else {
            Effort::Paper
        }
    }

    /// Seeds per sweep point.
    pub fn reps(self) -> usize {
        match self {
            Effort::Quick => 2,
            Effort::Paper => 5,
        }
    }
}
