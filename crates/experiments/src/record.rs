//! Aggregated figure data: the rows/series a paper figure plots.

use sft_lp::SimplexStats;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// A `(row, algorithm)` cell that does not exist in the figure table.
///
/// Returned by [`FigureData::record`] instead of panicking, so sweep
/// drivers can surface a typo in an algorithm label as a normal error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The algorithm name is not one of the table's columns.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        algo: String,
        /// The column names the table does have.
        known: Vec<String>,
    },
    /// The row index is past the sweep points pushed so far.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of rows in the table.
        rows: usize,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::UnknownAlgorithm { algo, known } => {
                write!(f, "unknown algorithm `{algo}` (table has {known:?})")
            }
            RecordError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for table of {rows} sweep points")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Mean/variance statistics for one (sweep point, algorithm) cell
/// (Welford's online algorithm).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CellStats {
    /// Mean traffic delivery cost across the runs.
    pub mean_cost: f64,
    /// Mean wall-clock runtime in milliseconds.
    pub mean_ms: f64,
    /// Number of successful runs aggregated.
    pub runs: usize,
    /// Sum of squared cost deviations (Welford's M2 accumulator).
    m2_cost: f64,
}

impl CellStats {
    /// Folds one run into the statistics.
    pub fn add(&mut self, cost: f64, ms: f64) {
        self.runs += 1;
        let n = self.runs as f64;
        let delta = cost - self.mean_cost;
        self.mean_cost += delta / n;
        self.m2_cost += delta * (cost - self.mean_cost);
        self.mean_ms += (ms - self.mean_ms) / n;
    }

    /// Sample standard deviation of the cost (0 for fewer than two runs).
    pub fn std_cost(&self) -> f64 {
        if self.runs < 2 {
            0.0
        } else {
            (self.m2_cost / (self.runs as f64 - 1.0)).sqrt()
        }
    }
}

/// Telemetry from one exact solve behind a figure cell: which LP backend
/// ran and how much simplex work the branch-and-bound did in total.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverTelemetry {
    /// Row index of the sweep point the solve belongs to.
    pub row: usize,
    /// Resolved LP backend name (`dense tableau` / `revised simplex`).
    pub backend: String,
    /// Branch-and-bound nodes explored.
    pub bb_nodes: u64,
    /// Simplex work accumulated across every node relaxation.
    pub lp_stats: SimplexStats,
}

/// One reproduced figure: a table of sweep points × algorithms, carrying
/// both of the paper's per-figure panels (delivery cost and runtime).
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Identifier, e.g. `fig08`.
    pub id: String,
    /// Human-readable description (what the paper's caption says).
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// Algorithm names, column order.
    pub algos: Vec<String>,
    /// Sweep points, row order.
    pub xs: Vec<f64>,
    /// `cells[x][algo]` statistics.
    pub cells: Vec<Vec<CellStats>>,
    /// Free-form annotations (summary statistics, substitution notes).
    pub notes: Vec<String>,
    /// Exact-solve telemetry, one entry per ILP solve feeding the table.
    pub telemetry: Vec<SolverTelemetry>,
}

impl FigureData {
    /// Creates an empty figure table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        algos: &[&str],
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            algos: algos.iter().map(|s| s.to_string()).collect(),
            xs: Vec::new(),
            cells: Vec::new(),
            notes: Vec::new(),
            telemetry: Vec::new(),
        }
    }

    /// Appends a sweep point and returns its row index.
    pub fn push_x(&mut self, x: f64) -> usize {
        self.xs.push(x);
        self.cells
            .push(vec![CellStats::default(); self.algos.len()]);
        self.xs.len() - 1
    }

    /// Records one run for `(row, algo_name)`.
    ///
    /// # Errors
    ///
    /// [`RecordError`] on an unknown algorithm name or an out-of-range
    /// row index.
    pub fn record(
        &mut self,
        row: usize,
        algo: &str,
        cost: f64,
        ms: f64,
    ) -> Result<(), RecordError> {
        let a = self.algos.iter().position(|s| s == algo).ok_or_else(|| {
            RecordError::UnknownAlgorithm {
                algo: algo.to_string(),
                known: self.algos.clone(),
            }
        })?;
        let rows = self.cells.len();
        let cell = self
            .cells
            .get_mut(row)
            .ok_or(RecordError::RowOutOfRange { row, rows })?;
        cell[a].add(cost, ms);
        Ok(())
    }

    /// Mean cost of `algo` at row `row`, if any runs were recorded.
    pub fn mean_cost(&self, row: usize, algo: &str) -> Option<f64> {
        let a = self.algos.iter().position(|s| s == algo)?;
        let c = self.cells.get(row)?.get(a)?;
        (c.runs > 0).then_some(c.mean_cost)
    }

    /// Average and maximum relative cost saving of `better` vs `baseline`
    /// across rows where both have data: `(base - better) / base`.
    pub fn saving_vs(&self, better: &str, baseline: &str) -> Option<(f64, f64)> {
        let mut savings = Vec::new();
        for row in 0..self.xs.len() {
            let (b, r) = (self.mean_cost(row, better)?, self.mean_cost(row, baseline)?);
            if r > 0.0 {
                savings.push((r - b) / r);
            }
        }
        if savings.is_empty() {
            return None;
        }
        let avg = savings.iter().sum::<f64>() / savings.len() as f64;
        let max = savings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((avg, max))
    }

    /// Renders the figure as an aligned text table (cost panel then
    /// runtime panel, mirroring the paper's (a)/(b) sub-figures).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for (panel, unit) in [
            ("(a) traffic delivery cost", ""),
            ("(b) running time", " ms"),
        ] {
            let _ = writeln!(out, "{panel}:");
            let _ = write!(out, "{:>14}", self.x_label);
            for a in &self.algos {
                let _ = write!(out, "{a:>14}");
            }
            let _ = writeln!(out);
            for (row, &x) in self.xs.iter().enumerate() {
                let _ = write!(out, "{x:>14.1}");
                for (ai, _) in self.algos.iter().enumerate() {
                    let c = &self.cells[row][ai];
                    if c.runs == 0 {
                        let _ = write!(out, "{:>14}", "-");
                    } else if unit.is_empty() {
                        let _ = write!(out, "{:>14.2}", c.mean_cost);
                    } else {
                        let _ = write!(out, "{:>14.2}", c.mean_ms);
                    }
                }
                let _ = writeln!(out);
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        for t in &self.telemetry {
            let _ = writeln!(
                out,
                "lp:   {} = {:.1}: {} backend, {} B&B nodes, {}",
                self.x_label, self.xs[t.row], t.backend, t.bb_nodes, t.lp_stats
            );
        }
        out
    }

    /// Serializes the table as CSV (one row per sweep point, cost and
    /// runtime columns per algorithm).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(',', ";"));
        for a in &self.algos {
            let _ = write!(out, ",{a}_cost,{a}_cost_std,{a}_ms,{a}_runs");
        }
        let _ = writeln!(out);
        for (row, &x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for (ai, _) in self.algos.iter().enumerate() {
                let c = &self.cells[row][ai];
                let _ = write!(
                    out,
                    ",{},{},{},{}",
                    c.mean_cost,
                    c.std_cost(),
                    c.mean_ms,
                    c.runs
                );
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the CSV into `dir/<id>.csv`, creating the directory.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the write.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("figX", "test", "|V|", &["MSA", "RSA"]);
        let r0 = f.push_x(50.0);
        f.record(r0, "MSA", 10.0, 1.0).unwrap();
        f.record(r0, "MSA", 12.0, 3.0).unwrap();
        f.record(r0, "RSA", 20.0, 0.5).unwrap();
        let r1 = f.push_x(100.0);
        f.record(r1, "MSA", 30.0, 2.0).unwrap();
        f.record(r1, "RSA", 40.0, 1.0).unwrap();
        f
    }

    #[test]
    fn record_reports_unknown_cells_instead_of_panicking() {
        let mut f = sample();
        let err = f.record(0, "CPLEX", 1.0, 1.0).unwrap_err();
        assert!(matches!(err, RecordError::UnknownAlgorithm { ref algo, .. } if algo == "CPLEX"));
        assert!(err.to_string().contains("CPLEX"));
        let err = f.record(9, "MSA", 1.0, 1.0).unwrap_err();
        assert_eq!(err, RecordError::RowOutOfRange { row: 9, rows: 2 });
        // Failed records leave the table untouched.
        assert!((f.mean_cost(0, "MSA").unwrap() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn cell_stats_compute_running_means_and_stddev() {
        let mut c = CellStats::default();
        c.add(10.0, 1.0);
        assert_eq!(c.std_cost(), 0.0);
        c.add(20.0, 3.0);
        assert_eq!(c.runs, 2);
        assert!((c.mean_cost - 15.0).abs() < 1e-12);
        assert!((c.mean_ms - 2.0).abs() < 1e-12);
        // Sample std of {10, 20} is sqrt(50).
        assert!((c.std_cost() - 50.0_f64.sqrt()).abs() < 1e-12);
        c.add(15.0, 2.0);
        assert!((c.mean_cost - 15.0).abs() < 1e-12);
        assert!((c.std_cost() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_cost_and_savings() {
        let f = sample();
        assert!((f.mean_cost(0, "MSA").unwrap() - 11.0).abs() < 1e-12);
        assert_eq!(f.mean_cost(0, "OPT"), None);
        let (avg, max) = f.saving_vs("MSA", "RSA").unwrap();
        // Row 0: (20-11)/20 = 0.45; row 1: (40-30)/40 = 0.25.
        assert!((avg - 0.35).abs() < 1e-12);
        assert!((max - 0.45).abs() < 1e-12);
    }

    #[test]
    fn render_contains_both_panels_and_values() {
        let s = sample().render();
        assert!(s.contains("traffic delivery cost"));
        assert!(s.contains("running time"));
        assert!(s.contains("11.00"));
        assert!(s.contains("MSA"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("|V|,MSA_cost"));
        assert_eq!(lines[1].split(',').count(), 9);
    }

    #[test]
    fn telemetry_lines_render_after_notes() {
        let mut f = sample();
        f.telemetry.push(SolverTelemetry {
            row: 1,
            backend: "revised simplex".into(),
            bb_nodes: 17,
            lp_stats: SimplexStats {
                phase1_iterations: 40,
                phase2_iterations: 60,
                refactorizations: 2,
                fill_in: 123,
            },
        });
        let s = f.render();
        assert!(
            s.contains("lp:   |V| = 100.0: revised simplex backend"),
            "{s}"
        );
        assert!(s.contains("17 B&B nodes"), "{s}");
        assert!(
            s.contains("phase1=40 phase2=60 refactor=2 fill-in=123"),
            "{s}"
        );
    }

    #[test]
    fn empty_cells_render_as_dash() {
        let mut f = FigureData::new("f", "t", "x", &["A"]);
        f.push_x(1.0);
        assert!(f.render().contains('-'));
        assert_eq!(f.saving_vs("A", "A"), None);
    }
}
