//! Runs the three heuristics on one scenario and times them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_core::{solve_with_rng, CoreError, StageTwo, Strategy};
use sft_topology::Scenario;
use std::time::Instant;

/// The algorithm names in canonical column order.
pub const HEURISTICS: [&str; 3] = ["MSA", "SCA", "RSA"];

/// One timed heuristic run.
#[derive(Clone, Debug)]
pub struct HeuristicRun {
    /// Algorithm name (`MSA`, `SCA`, or `RSA`).
    pub algo: &'static str,
    /// Final traffic delivery cost (after OPA).
    pub cost: f64,
    /// Stage-1 cost before OPA.
    pub stage1_cost: f64,
    /// Wall-clock runtime in milliseconds.
    pub ms: f64,
}

/// Runs MSA, SCA and RSA (all with the shared OPA stage 2) on a scenario.
/// RSA's randomness is derived from the scenario seed, so results are
/// reproducible.
///
/// # Errors
///
/// Propagates the first algorithm failure; generated scenarios are always
/// solvable, so failures indicate bugs rather than bad luck.
pub fn run_heuristics(scenario: &Scenario) -> Result<Vec<HeuristicRun>, CoreError> {
    let mut out = Vec::with_capacity(3);
    for (algo, strategy) in [
        ("MSA", Strategy::Msa),
        ("SCA", Strategy::Sca),
        ("RSA", Strategy::Rsa),
    ] {
        let mut rng =
            StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let start = Instant::now();
        let r = solve_with_rng(
            &scenario.network,
            &scenario.task,
            strategy,
            StageTwo::Opa,
            &mut rng,
        )?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        debug_assert!(sft_core::validate::is_valid(
            &scenario.network,
            &scenario.task,
            &r.embedding
        ));
        out.push(HeuristicRun {
            algo,
            cost: r.cost.total(),
            stage1_cost: r.stage1_cost,
            ms,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_topology::{generate, ScenarioConfig};

    #[test]
    fn runs_all_three_and_opa_never_hurts() {
        let config = ScenarioConfig {
            network_size: 30,
            dest_ratio: 0.2,
            sfc_len: 3,
            ..ScenarioConfig::default()
        };
        let scenario = generate(&config, 99).unwrap();
        let runs = run_heuristics(&scenario).unwrap();
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.cost > 0.0);
            assert!(r.cost <= r.stage1_cost + 1e-9, "{}", r.algo);
            assert!(r.ms >= 0.0);
        }
        let names: Vec<_> = runs.iter().map(|r| r.algo).collect();
        assert_eq!(names, HEURISTICS.to_vec());
    }

    #[test]
    fn reruns_are_identical() {
        let config = ScenarioConfig {
            network_size: 25,
            sfc_len: 3,
            ..ScenarioConfig::default()
        };
        let scenario = generate(&config, 5).unwrap();
        let a = run_heuristics(&scenario).unwrap();
        let b = run_heuristics(&scenario).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cost, y.cost, "{}", x.algo);
        }
    }
}
