//! All-pairs shortest paths (Floyd–Warshall).
//!
//! The paper's Algorithm 1 pre-computes all shortest paths in the physical
//! network before building the MOD overlay; its complexity analysis
//! (Theorem 5) explicitly charges O(|V|³) for Floyd's algorithm. The
//! resulting [`DistanceMatrix`] also yields `l_G`, the average shortest-path
//! cost that Table I uses to scale VNF deployment costs.

use crate::parallel::{chunk_ranges, Parallelism};
use crate::provider::LatencyCsr;
use crate::{Graph, GraphError, NodeId};

/// Dense all-pairs shortest-path distances with path reconstruction.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
    // next[u][v] = the node following u on a shortest u->v path.
    next: Vec<Option<NodeId>>,
    // Latency adjacency, present only when the source graph carries
    // explicit edge latencies; `None` means delay == cost on every path.
    lat: Option<LatencyCsr>,
}

impl DistanceMatrix {
    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shortest-path distance from `u` to `v`, or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let d = self.dist[self.idx(u, v)];
        d.is_finite().then_some(d)
    }

    /// The node sequence of a shortest path from `u` to `v` (both endpoints
    /// included), or `None` if unreachable. The path from a node to itself
    /// is the singleton `[u]`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.distance(u, v)?;
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self.next[self.idx(cur, v)]?;
            path.push(cur);
        }
        Some(path)
    }

    /// Average shortest-path distance over all *ordered* pairs of distinct,
    /// mutually reachable nodes — the paper's `l_G` normalizer for VNF
    /// deployment costs. Returns 0.0 when no such pair exists.
    ///
    /// **Disconnected-graph contract:** unreachable pairs have infinite
    /// stored distance and are *skipped*, never poisoning the average.
    /// Every [`crate::DistanceProvider`] implementation mirrors this
    /// semantics exactly (the lazy provider is tested against it).
    pub fn average_distance(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0_u64;
        for u in 0..self.n {
            for v in 0..self.n {
                if u == v {
                    continue;
                }
                let d = self.dist[u * self.n + v];
                if d.is_finite() {
                    total += d;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// The largest finite pairwise distance (graph diameter under the cost
    /// metric). Returns 0.0 for graphs with fewer than two nodes.
    ///
    /// **Disconnected-graph contract:** infinite (unreachable) entries are
    /// ignored, so the result is the largest diameter *within* any
    /// connected component — shared with every [`crate::DistanceProvider`].
    pub fn diameter(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// The (cost, delay) pair of the matrix's canonical shortest `u`→`v`
    /// path: cost is [`DistanceMatrix::distance`], delay is the sum of
    /// effective edge latencies along exactly the node sequence
    /// [`DistanceMatrix::path`] returns. On a latency-free graph the delay
    /// *is* the cost. `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn distance_and_delay(&self, u: NodeId, v: NodeId) -> Option<(f64, f64)> {
        let cost = self.distance(u, v)?;
        match &self.lat {
            None => Some((cost, cost)),
            Some(lat) => {
                let path = self.path(u, v)?;
                let delay = lat
                    .path_latency(&path)
                    .expect("canonical path only uses stored arcs");
                Some((cost, delay))
            }
        }
    }

    fn idx(&self, u: NodeId, v: NodeId) -> usize {
        assert!(u.0 < self.n && v.0 < self.n, "node out of bounds");
        u.0 * self.n + v.0
    }
}

impl Graph {
    /// Computes all-pairs shortest paths with Floyd–Warshall in O(|V|³).
    ///
    /// ```
    /// use sft_graph::{Graph, NodeId};
    /// # fn main() -> Result<(), sft_graph::GraphError> {
    /// let mut g = Graph::new(3);
    /// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
    /// g.add_edge(NodeId(1), NodeId(2), 1.0)?;
    /// let m = g.all_pairs_shortest_paths()?;
    /// assert_eq!(m.distance(NodeId(0), NodeId(2)), Some(2.0));
    /// assert_eq!(m.path(NodeId(0), NodeId(2)).unwrap().len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Never fails on valid graphs today; the `Result` return keeps room for
    /// future overflow guards and mirrors the fallible substrate API style.
    pub fn all_pairs_shortest_paths(&self) -> Result<DistanceMatrix, GraphError> {
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next: Vec<Option<NodeId>> = vec![None; n * n];
        for u in 0..n {
            dist[u * n + u] = 0.0;
        }
        for e in self.edges() {
            let (u, v, w) = (e.u.0, e.v.0, e.weight);
            // Graph forbids parallel edges, so direct assignment is safe.
            dist[u * n + v] = w;
            dist[v * n + u] = w;
            next[u * n + v] = Some(NodeId(v));
            next[v * n + u] = Some(NodeId(u));
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                for j in 0..n {
                    let through = dik + dist[k * n + j];
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                        next[i * n + j] = next[i * n + k];
                    }
                }
            }
        }
        Ok(DistanceMatrix {
            n,
            dist,
            next,
            lat: LatencyCsr::from_graph(self),
        })
    }
}

impl Graph {
    /// Computes all-pairs shortest paths by running Dijkstra from every
    /// node — `O(|V| · |E| log |V|)`, which beats Floyd–Warshall's
    /// `O(|V|³)` on sparse graphs (backbones average degree < 4; the
    /// `graph/apsp` benchmark quantifies the gap).
    ///
    /// Produces a [`DistanceMatrix`] equivalent to
    /// [`Graph::all_pairs_shortest_paths`] up to shortest-path tie-breaks.
    ///
    /// # Errors
    ///
    /// Never fails on valid graphs today; kept fallible for symmetry.
    pub fn all_pairs_shortest_paths_sparse(&self) -> Result<DistanceMatrix, GraphError> {
        self.all_pairs_shortest_paths_sparse_with(Parallelism::auto())
    }

    /// [`Graph::all_pairs_shortest_paths_sparse`] with an explicit thread
    /// count. The matrix rows are disjoint per source, so workers fill
    /// contiguous row blocks independently — the output is bit-identical
    /// for every thread count, including [`Parallelism::sequential`].
    ///
    /// # Errors
    ///
    /// Never fails on valid graphs today; kept fallible for symmetry.
    pub fn all_pairs_shortest_paths_sparse_with(
        &self,
        parallelism: Parallelism,
    ) -> Result<DistanceMatrix, GraphError> {
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next: Vec<Option<NodeId>> = vec![None; n * n];
        let ranges = chunk_ranges(n, parallelism.threads());
        if ranges.len() <= 1 {
            for s in 0..n {
                self.sparse_row(
                    s,
                    &mut dist[s * n..(s + 1) * n],
                    &mut next[s * n..(s + 1) * n],
                );
            }
        } else {
            std::thread::scope(|scope| {
                let mut dist_rest = dist.as_mut_slice();
                let mut next_rest = next.as_mut_slice();
                for range in ranges {
                    let (dist_chunk, dtail) = dist_rest.split_at_mut(range.len() * n);
                    let (next_chunk, ntail) = next_rest.split_at_mut(range.len() * n);
                    dist_rest = dtail;
                    next_rest = ntail;
                    scope.spawn(move || {
                        for (off, (drow, nrow)) in dist_chunk
                            .chunks_mut(n)
                            .zip(next_chunk.chunks_mut(n))
                            .enumerate()
                        {
                            self.sparse_row(range.start + off, drow, nrow);
                        }
                    });
                }
            });
        }
        Ok(DistanceMatrix {
            n,
            dist,
            next,
            lat: LatencyCsr::from_graph(self),
        })
    }

    /// Fills row `s` of the sparse APSP matrices with one Dijkstra run.
    fn sparse_row(&self, s: usize, dist: &mut [f64], next: &mut [Option<NodeId>]) {
        let sp = self.dijkstra(NodeId(s));
        for (t, d) in sp.reached() {
            dist[t.0] = d;
            // next[s][t]: walk one step from s towards t. Recover it by
            // following predecessors back from t to the node whose
            // predecessor is s (or t == that node's own predecessor).
            if t.0 == s {
                continue;
            }
            let mut cur = t;
            loop {
                match sp.predecessor(cur) {
                    Some(p) if p.0 == s => break,
                    Some(p) => cur = p,
                    None => break,
                }
            }
            next[t.0] = Some(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 7.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 9.0).unwrap();
        g.add_edge(NodeId(0), NodeId(4), 14.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 15.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 11.0).unwrap();
        g.add_edge(NodeId(2), NodeId(4), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 6.0).unwrap();
        g
    }

    #[test]
    fn matches_dijkstra_from_every_source() {
        let g = sample();
        let m = g.all_pairs_shortest_paths().unwrap();
        for s in g.nodes() {
            let sp = g.dijkstra(s);
            for t in g.nodes() {
                assert_eq!(m.distance(s, t), sp.distance(t), "pair {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn paths_are_valid_and_tight() {
        let g = sample();
        let m = g.all_pairs_shortest_paths().unwrap();
        for s in g.nodes() {
            for t in g.nodes() {
                let p = m.path(s, t).unwrap();
                assert_eq!(*p.first().unwrap(), s);
                assert_eq!(*p.last().unwrap(), t);
                let w = g.path_weight(&p).unwrap();
                assert!((w - m.distance(s, t).unwrap()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn self_distance_is_zero_with_singleton_path() {
        let m = sample().all_pairs_shortest_paths().unwrap();
        assert_eq!(m.distance(NodeId(2), NodeId(2)), Some(0.0));
        assert_eq!(m.path(NodeId(2), NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn disconnected_pairs_are_unreachable() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        let m = g.all_pairs_shortest_paths().unwrap();
        assert_eq!(m.distance(NodeId(0), NodeId(2)), None);
        assert!(m.path(NodeId(0), NodeId(3)).is_none());
        // Average ignores unreachable pairs: (3+3+4+4)/4.
        assert!((m.average_distance() - 3.5).abs() < 1e-12);
        // Diameter is the largest finite distance, not infinity.
        assert!((m.diameter() - 4.0).abs() < 1e-12);
        // The sparse builder honors the same disconnected-graph contract.
        let s = g.all_pairs_shortest_paths_sparse().unwrap();
        assert!((s.average_distance() - 3.5).abs() < 1e-12);
        assert!((s.diameter() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_distance_on_connected_graph() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        let m = g.all_pairs_shortest_paths().unwrap();
        // Ordered pairs: 0-1:1, 1-0:1, 1-2:2, 2-1:2, 0-2:3, 2-0:3 -> avg 2.
        assert!((m.average_distance() - 2.0).abs() < 1e-12);
        assert!((m.diameter() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_variant_matches_floyd_warshall() {
        let g = sample();
        let dense = g.all_pairs_shortest_paths().unwrap();
        let sparse = g.all_pairs_shortest_paths_sparse().unwrap();
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(dense.distance(s, t), sparse.distance(s, t));
                // Paths may tie-break differently but must price equally.
                let p = sparse.path(s, t).unwrap();
                assert_eq!(*p.first().unwrap(), s);
                assert_eq!(*p.last().unwrap(), t);
                let w = g.path_weight(&p).unwrap();
                assert!((w - dense.distance(s, t).unwrap()).abs() < 1e-12);
            }
        }
        assert!((dense.average_distance() - sparse.average_distance()).abs() < 1e-12);
    }

    #[test]
    fn sparse_variant_handles_disconnection() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        let m = g.all_pairs_shortest_paths_sparse().unwrap();
        assert_eq!(m.distance(NodeId(0), NodeId(2)), None);
        assert!(m.path(NodeId(1), NodeId(3)).is_none());
        assert_eq!(m.distance(NodeId(2), NodeId(3)), Some(4.0));
    }

    #[test]
    fn sparse_variant_is_bit_identical_across_thread_counts() {
        let g = sample();
        let seq = g
            .all_pairs_shortest_paths_sparse_with(Parallelism::sequential())
            .unwrap();
        for threads in [2usize, 3, 4, 16] {
            let par = g
                .all_pairs_shortest_paths_sparse_with(Parallelism::new(threads))
                .unwrap();
            // Not just equal costs: the full matrices, tie-breaks included.
            assert_eq!(seq.dist, par.dist, "threads={threads}");
            assert_eq!(seq.next, par.next, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let m = Graph::new(0).all_pairs_shortest_paths().unwrap();
        assert_eq!(m.node_count(), 0);
        assert_eq!(m.average_distance(), 0.0);
        let m1 = Graph::new(1).all_pairs_shortest_paths().unwrap();
        assert_eq!(m1.distance(NodeId(0), NodeId(0)), Some(0.0));
        assert_eq!(m1.average_distance(), 0.0);
        assert_eq!(m1.diameter(), 0.0);
    }
}
