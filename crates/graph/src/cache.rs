//! Persistent Steiner-tree caching shared across embedding requests.
//!
//! A Steiner tree built by [`crate::steiner`] is a pure function of the
//! graph topology, the edge weights and the ordered terminal list — it does
//! not depend on any capacity or deployment state layered on top of the
//! graph. A long-running service can therefore keep one [`SteinerCache`]
//! alive across many requests and reuse trees between tasks that share a
//! root and destination set, even while per-node state (deployed VNF
//! instances, residual capacities) evolves between requests.
//!
//! The contract that makes this sound:
//!
//! * **Keys** are `(root, terminals)` with the terminal list in the exact
//!   order the caller passes it. Construction heuristics (KMB,
//!   Takahashi–Matsuyama) are deterministic in that order, so a cached
//!   value is bit-identical to a fresh computation — callers that need
//!   reproducible results get them for free.
//! * **Values** may be `None`, recording that tree construction failed for
//!   that key (e.g. a terminal disconnected from the root); negative
//!   results are as cacheable as positive ones.
//! * **Invalidation** is the owner's job exactly when the *graph* changes
//!   (topology or edge weights). Mutations of node state that do not touch
//!   the graph — committing an embedding, deploying an instance, debiting
//!   capacity — must NOT invalidate the cache; that independence is what
//!   makes cross-request reuse profitable. [`SteinerCache::invalidate`]
//!   clears every entry and bumps an epoch counter so owners can assert
//!   the flush happened.
//! * **Bounding** is optional: [`SteinerCache::bounded`] caps the entry
//!   count and evicts with the CLOCK (second-chance) policy — entries
//!   touched since the clock hand last passed survive one sweep — so a
//!   long-running service's memory stays bounded under an unbounded
//!   request stream. The default remains unbounded.

use crate::steiner::SteinerTree;
use crate::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A point-in-time snapshot of a cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently cached (including recorded failures).
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// How many times the cache has been invalidated.
    pub epoch: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Interface for shared Steiner-tree caches.
///
/// Implementations must be safe to consult from parallel solver workers
/// (`Sync`); the provided [`TreeCache::get_or_insert_with`] is the usual
/// entry point. Because values are pure functions of their key, a racy
/// double-compute is benign: both racers produce identical trees.
pub trait TreeCache: Sync {
    /// Returns the cached outcome for `(root, terminals)`: `Some(outcome)`
    /// on a hit (where the outcome itself may be a recorded failure),
    /// `None` on a miss.
    fn lookup(&self, root: NodeId, terminals: &[NodeId]) -> Option<Option<SteinerTree>>;

    /// Stores the outcome for `(root, terminals)`.
    fn store(&self, root: NodeId, terminals: &[NodeId], tree: Option<SteinerTree>);

    /// Drops every entry. Owners call this when the underlying graph
    /// changes; see the module docs for what does *not* require it.
    fn invalidate(&self);

    /// Looks up `(root, terminals)`, computing and storing the outcome via
    /// `build` on a miss.
    fn get_or_insert_with<F>(
        &self,
        root: NodeId,
        terminals: &[NodeId],
        build: F,
    ) -> Option<SteinerTree>
    where
        F: FnOnce() -> Option<SteinerTree>,
        Self: Sized,
    {
        if let Some(cached) = self.lookup(root, terminals) {
            return cached;
        }
        let tree = build();
        self.store(root, terminals, tree.clone());
        tree
    }
}

/// A mutex-protected `(root, terminals) -> Option<SteinerTree>` map with
/// hit/miss/eviction counters, an invalidation epoch, and an optional
/// capacity bound enforced by CLOCK eviction.
///
/// This is the cache a long-running embedding service shares across
/// requests and across parallel sweep workers. Contention is modest by
/// construction: workers hold the lock only for a map probe or insert,
/// never while building a tree.
#[derive(Debug, Default)]
pub struct SteinerCache {
    entries: Mutex<CacheInner>,
    /// Maximum entries; `None` means unbounded.
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    epoch: AtomicU64,
}

/// `(root, terminal sequence)` — the cache key.
type CacheKey = (NodeId, Vec<NodeId>);

/// A cached outcome plus its CLOCK reference bit.
#[derive(Debug)]
struct Slot {
    value: Option<SteinerTree>,
    /// Set on every touch; cleared when the clock hand sweeps past. An
    /// entry is evicted only if the hand finds this bit already clear.
    referenced: bool,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<CacheKey, Slot>,
    /// The clock ring: every cached key, in insertion-slot order.
    ring: Vec<CacheKey>,
    /// Next ring position the eviction hand examines.
    hand: usize,
}

impl SteinerCache {
    /// An empty unbounded cache at epoch 0.
    pub fn new() -> Self {
        SteinerCache::default()
    }

    /// An empty cache holding at most `max_entries` entries, evicting with
    /// the CLOCK (second-chance) policy once full. A zero capacity caches
    /// nothing (every lookup misses).
    pub fn bounded(max_entries: usize) -> Self {
        SteinerCache {
            capacity: Some(max_entries),
            ..SteinerCache::default()
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of cached entries (including recorded failures).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the cache (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Entries evicted so far to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// How many times [`SteinerCache::invalidate`] has run.
    ///
    /// `Acquire` pairs with the `Release` bump in
    /// [`SteinerCache::invalidate`]: a thread that observes epoch `E` is
    /// guaranteed to also observe every effect (the entry clearing) that
    /// happened-before the bump to `E`. Without the pairing, a reader
    /// could see the new epoch while a subsequent `lookup` still hits a
    /// pre-flush entry — exactly the stale pairing owners use the epoch
    /// to rule out.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A snapshot of every counter at once.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            epoch: self.epoch(),
        }
    }
}

impl TreeCache for SteinerCache {
    fn lookup(&self, root: NodeId, terminals: &[NodeId]) -> Option<Option<SteinerTree>> {
        let key = (root, terminals.to_vec());
        let mut inner = self.entries.lock().expect("cache lock poisoned");
        match inner.map.get_mut(&key) {
            Some(slot) => {
                slot.referenced = true;
                let v = slot.value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, root: NodeId, terminals: &[NodeId], tree: Option<SteinerTree>) {
        let key = (root, terminals.to_vec());
        let mut inner = self.entries.lock().expect("cache lock poisoned");
        if let Some(slot) = inner.map.get_mut(&key) {
            slot.value = tree;
            slot.referenced = true;
            return;
        }
        let slot = Slot {
            value: tree,
            referenced: true,
        };
        match self.capacity {
            Some(0) => {} // degenerate bound: cache nothing
            Some(cap) if inner.map.len() >= cap => {
                // CLOCK: sweep the hand, clearing reference bits, until an
                // unreferenced victim appears (at most one full revolution
                // plus one step). The victim's ring slot is recycled for
                // the new key.
                loop {
                    let hand = inner.hand % inner.ring.len();
                    let victim = inner.ring[hand].clone();
                    let vslot = inner.map.get_mut(&victim).expect("ring key is cached");
                    if vslot.referenced {
                        vslot.referenced = false;
                        inner.hand = (hand + 1) % inner.ring.len();
                    } else {
                        inner.map.remove(&victim);
                        inner.ring[hand] = key.clone();
                        inner.hand = (hand + 1) % inner.ring.len();
                        inner.map.insert(key, slot);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            _ => {
                inner.ring.push(key.clone());
                inner.map.insert(key, slot);
            }
        }
    }

    fn invalidate(&self) {
        let mut inner = self.entries.lock().expect("cache lock poisoned");
        inner.map.clear();
        inner.ring.clear();
        inner.hand = 0;
        // The bump must be `Release` (and is issued while still holding
        // the entry lock, i.e. after the clears above): [`SteinerCache::epoch`]
        // reads the counter *without* taking the lock, so only the
        // Release/Acquire pair orders "epoch advanced" after "entries
        // cleared". With `Relaxed` on either side a concurrent reader may
        // observe the new epoch yet still find (and trust) pre-flush
        // entries on its next locked lookup — the mutex orders the map
        // accesses themselves, but not the unlocked epoch read against
        // them.
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 2.0).unwrap();
        g
    }

    #[test]
    fn caches_and_counts_hits() {
        let g = diamond();
        let cache = SteinerCache::new();
        let terminals = [NodeId(3)];
        let build = || g.steiner_kmb(&[NodeId(0), NodeId(3)]).ok();
        let first = cache
            .get_or_insert_with(NodeId(0), &terminals, build)
            .unwrap();
        let second = cache
            .get_or_insert_with(NodeId(0), &terminals, build)
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failures_are_cached_too() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        // Node 2 is disconnected: tree construction fails.
        let cache = SteinerCache::new();
        let build = || g.steiner_kmb(&[NodeId(0), NodeId(2)]).ok();
        assert!(cache
            .get_or_insert_with(NodeId(0), &[NodeId(2)], build)
            .is_none());
        assert!(cache
            .get_or_insert_with(NodeId(0), &[NodeId(2)], || panic!("must be cached"))
            .is_none());
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let g = diamond();
        let cache = SteinerCache::new();
        let t1 = cache
            .get_or_insert_with(NodeId(0), &[NodeId(3)], || {
                g.steiner_kmb(&[NodeId(0), NodeId(3)]).ok()
            })
            .unwrap();
        let t2 = cache
            .get_or_insert_with(NodeId(1), &[NodeId(2)], || {
                g.steiner_kmb(&[NodeId(1), NodeId(2)]).ok()
            })
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_ne!(t1.edges, t2.edges);
    }

    #[test]
    fn invalidate_clears_and_bumps_epoch() {
        let g = diamond();
        let cache = SteinerCache::new();
        cache.get_or_insert_with(NodeId(0), &[NodeId(3)], || {
            g.steiner_kmb(&[NodeId(0), NodeId(3)]).ok()
        });
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 1);
    }

    #[test]
    fn bounded_cache_evicts_at_capacity() {
        let g = diamond();
        let cache = SteinerCache::bounded(2);
        let build = |a: usize, b: usize| g.steiner_kmb(&[NodeId(a), NodeId(b)]).ok();
        cache.store(NodeId(0), &[NodeId(1)], build(0, 1));
        cache.store(NodeId(0), &[NodeId(2)], build(0, 2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        cache.store(NodeId(0), &[NodeId(3)], build(0, 3));
        assert_eq!(cache.len(), 2, "capacity bound must hold");
        assert_eq!(cache.evictions(), 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn clock_second_chance_protects_touched_entries() {
        let g = diamond();
        let cache = SteinerCache::bounded(2);
        let build = |a: usize, b: usize| g.steiner_kmb(&[NodeId(a), NodeId(b)]).ok();
        cache.store(NodeId(0), &[NodeId(1)], build(0, 1));
        cache.store(NodeId(0), &[NodeId(2)], build(0, 2));
        // One full hand sweep clears both reference bits, then evicts the
        // oldest slot; touching (0,[1]) afterwards re-arms its bit.
        cache.store(NodeId(0), &[NodeId(3)], build(0, 3)); // evicts (0,[1])
        assert!(cache.lookup(NodeId(0), &[NodeId(1)]).is_none());
        cache.store(NodeId(0), &[NodeId(1)], build(0, 1)); // evicts one of the rest
        assert!(cache.lookup(NodeId(0), &[NodeId(1)]).is_some());
        // Touch (0,[1]) then overflow again: the touched entry survives
        // because the hand finds its reference bit set and spares it.
        cache.lookup(NodeId(0), &[NodeId(1)]);
        cache.store(NodeId(2), &[NodeId(3)], build(2, 3));
        assert!(
            cache.lookup(NodeId(0), &[NodeId(1)]).is_some(),
            "recently touched entry must get a second chance"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let g = diamond();
        let cache = SteinerCache::bounded(0);
        let t = cache.get_or_insert_with(NodeId(0), &[NodeId(3)], || {
            g.steiner_kmb(&[NodeId(0), NodeId(3)]).ok()
        });
        assert!(t.is_some(), "build result still returned");
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let g = diamond();
        let cache = SteinerCache::new();
        assert_eq!(cache.capacity(), None);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    cache.store(
                        NodeId(a),
                        &[NodeId(b)],
                        g.steiner_kmb(&[NodeId(a), NodeId(b)]).ok(),
                    );
                }
            }
        }
        assert_eq!(cache.len(), 12);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn bounded_cache_invalidate_resets_the_ring() {
        let g = diamond();
        let cache = SteinerCache::bounded(2);
        let build = |a: usize, b: usize| g.steiner_kmb(&[NodeId(a), NodeId(b)]).ok();
        cache.store(NodeId(0), &[NodeId(1)], build(0, 1));
        cache.store(NodeId(0), &[NodeId(2)], build(0, 2));
        cache.store(NodeId(0), &[NodeId(3)], build(0, 3));
        cache.invalidate();
        assert!(cache.is_empty());
        // Refilling after a flush must work without phantom ring slots.
        cache.store(NodeId(0), &[NodeId(1)], build(0, 1));
        cache.store(NodeId(0), &[NodeId(2)], build(0, 2));
        cache.store(NodeId(0), &[NodeId(3)], build(0, 3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn epoch_observation_implies_the_flush_is_visible() {
        // Loom-style interleaving probe for the Release/Acquire pairing on
        // the epoch counter: an entry is stored *before* a concurrent
        // invalidate, and nothing ever re-stores it. Any reader that
        // samples the epoch first and sees the bump must then miss on
        // lookup — observing the new epoch while still hitting a
        // pre-flush entry is exactly the stale pairing the ordering
        // forbids. Repeated spawns probe many interleavings; with the
        // orderings reverted to `Relaxed` this assertion is the one a
        // weakly-ordered machine may violate.
        for _ in 0..300 {
            let cache = SteinerCache::new();
            cache.store(NodeId(0), &[NodeId(1)], None);
            std::thread::scope(|s| {
                s.spawn(|| cache.invalidate());
                s.spawn(|| loop {
                    let epoch = cache.epoch(); // Acquire, before the probe
                    let hit = cache.lookup(NodeId(0), &[NodeId(1)]);
                    if epoch >= 1 {
                        assert!(
                            hit.is_none(),
                            "epoch {epoch} observed but a pre-flush entry survived"
                        );
                        break;
                    }
                });
            });
        }
    }

    #[test]
    fn shared_across_threads() {
        let g = diamond();
        let cache = SteinerCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let t = cache
                            .get_or_insert_with(NodeId(0), &[NodeId(3)], || {
                                g.steiner_kmb(&[NodeId(0), NodeId(3)]).ok()
                            })
                            .unwrap();
                        assert!((t.cost - 2.0).abs() < 1e-12);
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 40);
        assert_eq!(cache.len(), 1);
    }
}
