//! Cooperative cancellation for long-running graph computations.
//!
//! A [`CancelToken`] is a cheaply-clonable handle (an `Arc` around an
//! atomic flag) that hot loops poll between batches of work. Tokens
//! compose two ways:
//!
//! * **Deadlines** — a token built with [`CancelToken::with_deadline`]
//!   trips automatically once the instant passes, with no watchdog
//!   thread: expiry is observed at the next poll.
//! * **Parents** — a [`CancelToken::child`] observes its parent's
//!   cancellation in addition to its own. A server keeps one drain token
//!   and hands each job a child with that job's deadline, so both
//!   "shutdown now" and "this request took too long" interrupt the same
//!   solve loop.
//!
//! Cancellation is cooperative and approximate: work stops at the next
//! poll point (every [`CHECK_INTERVAL`] heap pops in Dijkstra, every
//! candidate row in the MSA sweep), never mid-arithmetic. A cancelled
//! computation returns [`Cancelled`] and must leave shared state
//! untouched — callers rely on quotes being side-effect free.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many Dijkstra heap pops happen between cancellation polls — the
/// "relax batch" granularity of interruption.
pub const CHECK_INTERVAL: u32 = 64;

#[derive(Debug)]
struct TokenInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

/// A shared cancellation handle; see the module docs for composition.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token that only trips when [`CancelToken::cancel`] is
    /// called on it (or a clone of it).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A fresh token that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A child that observes this token's cancellation plus its own
    /// `deadline` (if any). Cancelling the child never affects the
    /// parent.
    pub fn child(&self, deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Trips the token; every clone and child observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether the token (or its deadline, or any ancestor) has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// Poll point for hot loops: `Err(Cancelled)` once tripped.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when [`CancelToken::is_cancelled`] is true.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// The computation was interrupted by a [`CancelToken`]; any partial
/// result was discarded and no shared state was modified.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "computation cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_tokens_are_live_and_trip_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        assert_eq!(clone.check(), Err(Cancelled));
    }

    #[test]
    fn past_deadlines_trip_immediately_and_future_ones_do_not() {
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn children_observe_the_parent_but_not_vice_versa() {
        let drain = CancelToken::new();
        let job = drain.child(None);
        assert!(!job.is_cancelled());
        drain.cancel();
        assert!(job.is_cancelled(), "parent cancellation reaches the child");

        let drain = CancelToken::new();
        let job = drain.child(Some(Instant::now() - Duration::from_millis(1)));
        assert!(job.is_cancelled(), "child deadline trips the child");
        assert!(!drain.is_cancelled(), "child state never leaks upward");
        job.cancel();
        assert!(!drain.is_cancelled());
    }
}
