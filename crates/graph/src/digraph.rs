//! Directed weighted graph storage.
//!
//! The paper's stage-1 algorithm runs Dijkstra over the *expanded multilevel
//! overlay directed* (MOD) network — a layered DAG whose arcs carry either
//! shortest-path costs from the physical network or VNF setup costs.
//! [`DiGraph`] is the storage for that overlay. Unlike [`crate::Graph`] it
//! permits parallel arcs (two columns of the overlay may be connected by
//! both a "co-locate" zero-cost arc and a physical-path arc) because overlay
//! construction never needs arc-uniqueness.

use crate::dijkstra::{dijkstra_core, ShortestPaths};
use crate::{GraphError, NodeId};

/// A directed arc: endpoints and a non-negative weight.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Arc {
    /// Tail (origin) of the arc.
    pub from: NodeId,
    /// Head (target) of the arc.
    pub to: NodeId,
    /// Non-negative, finite weight.
    pub weight: f64,
}

/// A directed graph with non-negative arc weights and dense node indices.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    out: Vec<Vec<(NodeId, f64)>>,
    arc_count: usize,
}

impl DiGraph {
    /// Creates a directed graph with `n` isolated nodes.
    ///
    /// ```
    /// use sft_graph::DiGraph;
    /// let g = DiGraph::new(3);
    /// assert_eq!(g.node_count(), 3);
    /// ```
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            arc_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.out.push(Vec::new());
        NodeId(self.out.len() - 1)
    }

    /// Adds a directed arc from `from` to `to`.
    ///
    /// Parallel arcs are allowed; self-loops are not (they can never be on a
    /// shortest path with non-negative weights and only mask bugs).
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if either endpoint does not exist.
    /// * [`GraphError::SelfLoop`] if `from == to`.
    /// * [`GraphError::InvalidWeight`] if `weight` is negative or not finite.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, weight: f64) -> Result<(), GraphError> {
        let len = self.node_count();
        for n in [from, to] {
            if n.0 >= len {
                return Err(GraphError::NodeOutOfBounds { node: n.0, len });
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from.0 });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        self.out[from.0].push((to, weight));
        self.arc_count += 1;
        Ok(())
    }

    /// Out-neighbors of `u` with arc weights.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn out_neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.out[u.0].iter().copied()
    }

    /// Out-degree of `u` (0 for out-of-range nodes).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.get(u.0).map_or(0, Vec::len)
    }

    /// Single-source shortest paths from `source` (Dijkstra).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn dijkstra(&self, source: NodeId) -> ShortestPaths {
        dijkstra_core(self.node_count(), source, None, |u, visit| {
            for &(v, w) in &self.out[u.0] {
                visit(v, w);
            }
        })
    }

    /// Shortest paths from `source`, stopping early once `target` is settled.
    ///
    /// Distances of nodes settled after the early exit are left unreached.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn dijkstra_to(&self, source: NodeId, target: NodeId) -> ShortestPaths {
        dijkstra_core(self.node_count(), source, Some(target), |u, visit| {
            for &(v, w) in &self.out[u.0] {
                visit(v, w);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 with asymmetric costs.
        let mut g = DiGraph::new(4);
        g.add_arc(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_arc(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_arc(NodeId(0), NodeId(2), 5.0).unwrap();
        g.add_arc(NodeId(2), NodeId(3), 1.0).unwrap();
        g
    }

    #[test]
    fn arcs_are_directed() {
        let g = diamond();
        let from_three = g.dijkstra(NodeId(3));
        assert_eq!(from_three.distance(NodeId(0)), None);
        let from_zero = g.dijkstra(NodeId(0));
        assert_eq!(from_zero.distance(NodeId(3)), Some(2.0));
    }

    #[test]
    fn shortest_path_prefers_cheap_branch() {
        let g = diamond();
        let sp = g.dijkstra(NodeId(0));
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn parallel_arcs_allowed_and_cheapest_wins() {
        let mut g = DiGraph::new(2);
        g.add_arc(NodeId(0), NodeId(1), 5.0).unwrap();
        g.add_arc(NodeId(0), NodeId(1), 2.0).unwrap();
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.dijkstra(NodeId(0)).distance(NodeId(1)), Some(2.0));
    }

    #[test]
    fn rejects_self_loop_and_bad_weight() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.add_arc(NodeId(0), NodeId(0), 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_arc(NodeId(0), NodeId(1), -2.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_arc(NodeId(0), NodeId(9), 1.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn early_exit_settles_target() {
        let g = diamond();
        let sp = g.dijkstra_to(NodeId(0), NodeId(1));
        assert_eq!(sp.distance(NodeId(1)), Some(1.0));
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = diamond();
        let n = g.add_node();
        assert_eq!(n, NodeId(4));
        g.add_arc(NodeId(3), n, 0.5).unwrap();
        assert_eq!(g.dijkstra(NodeId(0)).distance(n), Some(2.5));
    }
}
