//! Single-source shortest paths (Dijkstra's algorithm).
//!
//! Both the undirected [`crate::Graph`] and the directed [`crate::DiGraph`]
//! expose `dijkstra` methods backed by the shared core in this module. The
//! paper uses Dijkstra twice: over the expanded MOD network to find the
//! optimal single-chain embedding (Theorem 2), and inside the
//! Kou–Markowsky–Berman Steiner construction.

use crate::cancel::{CancelToken, Cancelled, CHECK_INTERVAL};
use crate::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
///
/// Unreached nodes have no distance and no predecessor.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    pred: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source node the search started from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `t`, or `None` if `t` was not reached.
    pub fn distance(&self, t: NodeId) -> Option<f64> {
        let d = *self.dist.get(t.0)?;
        d.is_finite().then_some(d)
    }

    /// Predecessor of `t` on the shortest path tree, if reached and not the
    /// source itself.
    pub fn predecessor(&self, t: NodeId) -> Option<NodeId> {
        *self.pred.get(t.0)?
    }

    /// The node sequence of a shortest path from the source to `t`, or
    /// `None` if `t` was not reached. The path includes both endpoints; the
    /// path from the source to itself is `[source]`.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        self.distance(t)?;
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = self.pred[cur.0] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }

    /// Iterator over all reached nodes together with their distances.
    pub fn reached(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| (NodeId(i), d))
    }
}

/// Total-order wrapper over `f64` distances for the binary heap.
#[derive(Copy, Clone, PartialEq)]
struct HeapKey(f64);

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Shared Dijkstra implementation over an adjacency callback.
///
/// `expand(u, visit)` must call `visit(v, w)` for every arc `u -> v` of
/// weight `w >= 0`. When `target` is given the search stops as soon as the
/// target is settled.
pub(crate) fn dijkstra_core<F>(
    n: usize,
    source: NodeId,
    target: Option<NodeId>,
    expand: F,
) -> ShortestPaths
where
    F: FnMut(NodeId, &mut dyn FnMut(NodeId, f64)),
{
    match dijkstra_core_cancellable(n, source, target, expand, None) {
        Ok(sp) => sp,
        Err(Cancelled) => unreachable!("dijkstra without a token cannot be cancelled"),
    }
}

/// [`dijkstra_core`] with a cooperative cancellation poll every
/// [`CHECK_INTERVAL`] heap pops — the relax-batch granularity the
/// service's deadline/drain interruption contract is stated in.
///
/// # Errors
///
/// [`Cancelled`] when `cancel` trips mid-search; the partial tree is
/// discarded.
pub(crate) fn dijkstra_core_cancellable<F>(
    n: usize,
    source: NodeId,
    target: Option<NodeId>,
    mut expand: F,
    cancel: Option<&CancelToken>,
) -> Result<ShortestPaths, Cancelled>
where
    F: FnMut(NodeId, &mut dyn FnMut(NodeId, f64)),
{
    assert!(source.0 < n, "dijkstra source {source:?} out of bounds");
    if let Some(token) = cancel {
        // Upfront poll: an already-tripped token (expired deadline, drain)
        // interrupts immediately even on graphs smaller than one batch.
        token.check()?;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.0] = 0.0;
    heap.push(Reverse((HeapKey(0.0), source.0)));
    let mut pops: u32 = 0;

    while let Some(Reverse((HeapKey(d), u))) = heap.pop() {
        if let Some(token) = cancel {
            pops += 1;
            if pops >= CHECK_INTERVAL {
                pops = 0;
                token.check()?;
            }
        }
        if settled[u] {
            continue;
        }
        settled[u] = true;
        if target == Some(NodeId(u)) {
            break;
        }
        expand(NodeId(u), &mut |v: NodeId, w: f64| {
            debug_assert!(w >= 0.0, "negative arc weight in dijkstra");
            let nd = d + w;
            if nd < dist[v.0] {
                dist[v.0] = nd;
                pred[v.0] = Some(NodeId(u));
                heap.push(Reverse((HeapKey(nd), v.0)));
            }
        });
    }

    Ok(ShortestPaths { source, dist, pred })
}

impl Graph {
    /// Single-source shortest paths from `source` (Dijkstra).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    ///
    /// ```
    /// use sft_graph::{Graph, NodeId};
    /// # fn main() -> Result<(), sft_graph::GraphError> {
    /// let mut g = Graph::new(3);
    /// g.add_edge(NodeId(0), NodeId(1), 2.0)?;
    /// g.add_edge(NodeId(1), NodeId(2), 2.0)?;
    /// g.add_edge(NodeId(0), NodeId(2), 5.0)?;
    /// assert_eq!(g.dijkstra(NodeId(0)).distance(NodeId(2)), Some(4.0));
    /// # Ok(())
    /// # }
    /// ```
    pub fn dijkstra(&self, source: NodeId) -> ShortestPaths {
        dijkstra_core(self.node_count(), source, None, |u, visit| {
            for (v, e) in self.neighbors(u) {
                visit(v, self.weight(e));
            }
        })
    }

    /// Shortest paths from `source`, stopping early once `target` settles.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn dijkstra_to(&self, source: NodeId, target: NodeId) -> ShortestPaths {
        dijkstra_core(self.node_count(), source, Some(target), |u, visit| {
            for (v, e) in self.neighbors(u) {
                visit(v, self.weight(e));
            }
        })
    }

    /// [`Graph::dijkstra_to`] under a caller-supplied per-edge weight —
    /// the hook for composite metrics such as the delay-aware
    /// `cost + λ·latency` relaxation. `weight` must return a finite,
    /// non-negative value for every edge.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn dijkstra_to_with<F>(&self, source: NodeId, target: NodeId, weight: F) -> ShortestPaths
    where
        F: Fn(crate::EdgeId) -> f64,
    {
        dijkstra_core(self.node_count(), source, Some(target), |u, visit| {
            for (v, e) in self.neighbors(u) {
                visit(v, weight(e));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphError;

    fn sample() -> Graph {
        // Classic 5-node example with a tempting-but-wrong direct edge.
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 7.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 9.0).unwrap();
        g.add_edge(NodeId(0), NodeId(4), 14.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 15.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 11.0).unwrap();
        g.add_edge(NodeId(2), NodeId(4), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 6.0).unwrap();
        g
    }

    #[test]
    fn distances_match_hand_computation() {
        let sp = sample().dijkstra(NodeId(0));
        assert_eq!(sp.distance(NodeId(0)), Some(0.0));
        assert_eq!(sp.distance(NodeId(1)), Some(7.0));
        assert_eq!(sp.distance(NodeId(2)), Some(9.0));
        assert_eq!(sp.distance(NodeId(3)), Some(17.0)); // 0-2-4-3 = 9+2+6, beats 0-2-3 = 20
        assert_eq!(sp.distance(NodeId(4)), Some(11.0));
    }

    #[test]
    fn path_reconstruction_is_consistent_with_distance() {
        let g = sample();
        let sp = g.dijkstra(NodeId(0));
        for t in g.nodes() {
            let path = sp.path_to(t).unwrap();
            assert_eq!(path.first(), Some(&NodeId(0)));
            assert_eq!(path.last(), Some(&t));
            let w = g.path_weight(&path).unwrap();
            assert!((w - sp.distance(t).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn unreachable_nodes_have_no_distance_or_path() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let sp = g.dijkstra(NodeId(0));
        assert_eq!(sp.distance(NodeId(2)), None);
        assert!(sp.path_to(NodeId(2)).is_none());
        assert_eq!(sp.reached().count(), 2);
    }

    #[test]
    fn source_path_is_singleton() {
        let sp = sample().dijkstra(NodeId(3));
        assert_eq!(sp.path_to(NodeId(3)).unwrap(), vec![NodeId(3)]);
        assert_eq!(sp.predecessor(NodeId(3)), None);
        assert_eq!(sp.source(), NodeId(3));
    }

    #[test]
    fn zero_weight_edges_propagate() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 0.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 0.0).unwrap();
        let sp = g.dijkstra(NodeId(0));
        assert_eq!(sp.distance(NodeId(2)), Some(0.0));
        assert_eq!(sp.path_to(NodeId(2)).unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_source_panics() {
        sample().dijkstra(NodeId(99));
    }

    #[test]
    fn early_exit_matches_full_run() {
        let g = sample();
        let full = g.dijkstra(NodeId(0));
        let early = g.dijkstra_to(NodeId(0), NodeId(3));
        assert_eq!(early.distance(NodeId(3)), full.distance(NodeId(3)));
        assert_eq!(early.path_to(NodeId(3)), full.path_to(NodeId(3)));
    }

    #[test]
    fn works_on_disconnected_then_bridged_graph() -> Result<(), GraphError> {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0)?;
        g.add_edge(NodeId(2), NodeId(3), 1.0)?;
        assert_eq!(g.dijkstra(NodeId(0)).distance(NodeId(3)), None);
        g.add_edge(NodeId(1), NodeId(2), 1.0)?;
        assert_eq!(g.dijkstra(NodeId(0)).distance(NodeId(3)), Some(3.0));
        Ok(())
    }

    #[test]
    fn heap_key_is_a_total_order_even_for_nan() {
        // The heap ordering must be total: a NaN that slipped past input
        // validation may sort arbitrarily but must not corrupt the heap's
        // internal invariants (which a partial-order comparator would).
        use std::cmp::Ordering;
        let nan = HeapKey(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(HeapKey(1.0).cmp(&HeapKey(1.0)), Ordering::Equal);
        assert_eq!(HeapKey(1.0).cmp(&HeapKey(2.0)), Ordering::Less);
        // total_cmp sorts every NaN above every real number (positive NaN).
        assert_eq!(HeapKey(1.0).cmp(&nan), Ordering::Less);
        assert_eq!(nan.partial_cmp(&nan), Some(Ordering::Equal));
        let mut keys = [nan, HeapKey(2.0), HeapKey(-1.0), HeapKey(0.0)];
        keys.sort(); // would panic under a broken Ord in debug builds
        assert_eq!(keys[0].0, -1.0);
    }

    #[test]
    fn a_tripped_token_interrupts_and_a_live_one_changes_nothing() {
        let mut g = Graph::new(200);
        for i in 0..199 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let expand = |u: NodeId, visit: &mut dyn FnMut(NodeId, f64)| {
            for (v, e) in g.neighbors(u) {
                visit(v, g.weight(e));
            }
        };
        let tripped = CancelToken::new();
        tripped.cancel();
        let r = dijkstra_core_cancellable(200, NodeId(0), None, expand, Some(&tripped));
        assert_eq!(r.err(), Some(Cancelled));

        let live = CancelToken::new();
        let sp = dijkstra_core_cancellable(200, NodeId(0), None, expand, Some(&live))
            .expect("a live token never interrupts");
        assert_eq!(sp.distance(NodeId(199)), Some(199.0));
    }

    #[test]
    fn nan_weights_never_reach_the_heap() {
        // First line of defense: construction rejects non-finite weights,
        // so dijkstra never sees a NaN distance.
        let mut g = Graph::new(2);
        assert!(g.add_edge(NodeId(0), NodeId(1), f64::NAN).is_err());
        assert!(g.add_edge(NodeId(0), NodeId(1), f64::INFINITY).is_err());
        assert!(g.add_edge(NodeId(0), NodeId(1), -1.0).is_err());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.dijkstra(NodeId(0)).distance(NodeId(1)), None);
    }
}
