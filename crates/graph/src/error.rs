use std::fmt;

/// Errors produced while constructing or querying graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was at least the number of nodes in the graph.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// An edge weight was negative or not finite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// An edge between the two endpoints already exists.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Both endpoints of an edge were the same node.
    SelfLoop {
        /// The node used as both endpoints.
        node: usize,
    },
    /// An operation required a connected graph but the graph was not.
    Disconnected,
    /// An operation required a non-empty terminal/node set.
    EmptySelection,
    /// A [`crate::CancelToken`] interrupted the computation; any partial
    /// result was discarded.
    Cancelled,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(
                    f,
                    "node index {node} out of bounds for graph of {len} nodes"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} is negative or not finite")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "an edge between nodes {u} and {v} already exists")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptySelection => write!(f, "operation requires a non-empty selection"),
            GraphError::Cancelled => write!(f, "computation cancelled before completion"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<crate::cancel::Cancelled> for GraphError {
    fn from(_: crate::cancel::Cancelled) -> GraphError {
        GraphError::Cancelled
    }
}
