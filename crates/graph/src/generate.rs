//! Random topology generators.
//!
//! The paper's synthetic evaluation (§V-B) uses Erdős–Rényi random graphs
//! whose link-connection costs are the Euclidean distances between node
//! placements (Table I). This module provides:
//!
//! * [`euclidean_er`] — ER graphs over uniform-random 2-D placements, with
//!   connectivity augmentation (the paper's algorithms assume a connected
//!   network);
//! * [`random_geometric`] — unit-disk-style geometric graphs, kept as an
//!   alternative topology family for robustness experiments;
//! * [`waxman`] — Waxman (1988) locality-biased random graphs, the standard
//!   synthetic WAN family used for the large-substrate scale experiments.

use crate::{Graph, GraphError, NodeId};
use rand::{Rng, RngExt};

/// A generated topology: the graph plus the 2-D placement that produced the
/// Euclidean link costs.
#[derive(Clone, Debug)]
pub struct GeneratedTopology {
    /// The generated, connected graph.
    pub graph: Graph,
    /// Node placements in the `[0, side] x [0, side]` square.
    pub positions: Vec<(f64, f64)>,
}

impl GeneratedTopology {
    /// Euclidean distance between two nodes' placements.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        euclid(self.positions[u.0], self.positions[v.0])
    }
}

fn euclid(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Generates an Erdős–Rényi `G(n, p)` graph over uniform-random placements
/// in a `side x side` square, link costs = Euclidean distances, then
/// augments connectivity by greedily adding the shortest absent edge
/// between components until the graph is connected.
///
/// # Errors
///
/// Returns [`GraphError::EmptySelection`] if `n == 0`, and
/// [`GraphError::InvalidWeight`] if `p` is not in `[0, 1]` or `side` is not
/// positive and finite.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// # fn main() -> Result<(), sft_graph::GraphError> {
/// let mut rng = StdRng::seed_from_u64(7);
/// let topo = sft_graph::generate::euclidean_er(50, 0.1, 100.0, &mut rng)?;
/// assert!(topo.graph.is_connected());
/// assert_eq!(topo.graph.node_count(), 50);
/// # Ok(())
/// # }
/// ```
pub fn euclidean_er<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    side: f64,
    rng: &mut R,
) -> Result<GeneratedTopology, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptySelection);
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidWeight { weight: p });
    }
    if !side.is_finite() || side <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: side });
    }
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    let mut graph = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                let w = euclid(positions[u], positions[v]).max(f64::MIN_POSITIVE);
                graph
                    .add_edge(NodeId(u), NodeId(v), w)
                    .expect("fresh pair cannot collide");
            }
        }
    }
    augment_connectivity(&mut graph, &positions);
    Ok(GeneratedTopology { graph, positions })
}

/// Generates a random geometric graph: uniform placements in a
/// `side x side` square, an edge between every pair closer than `radius`,
/// Euclidean link costs, plus the same connectivity augmentation as
/// [`euclidean_er`].
///
/// # Errors
///
/// Returns [`GraphError::EmptySelection`] if `n == 0`, and
/// [`GraphError::InvalidWeight`] for a non-positive `radius` or `side`.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    side: f64,
    rng: &mut R,
) -> Result<GeneratedTopology, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptySelection);
    }
    if !radius.is_finite() || radius <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: radius });
    }
    if !side.is_finite() || side <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: side });
    }
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    let mut graph = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = euclid(positions[u], positions[v]);
            if d < radius {
                graph
                    .add_edge(NodeId(u), NodeId(v), d.max(f64::MIN_POSITIVE))
                    .expect("fresh pair cannot collide");
            }
        }
    }
    augment_connectivity(&mut graph, &positions);
    Ok(GeneratedTopology { graph, positions })
}

/// Generates a Waxman random graph: uniform placements in a `side x side`
/// square, an edge between each pair `(u, v)` with probability
/// `beta * exp(-d(u, v) / (alpha * L))` where `L = side * sqrt(2)` is the
/// maximum possible distance, Euclidean link costs, plus the same
/// connectivity augmentation as [`euclidean_er`].
///
/// Waxman graphs (Waxman 1988) are the standard synthetic ISP/WAN topology
/// family: `beta` scales the overall edge density while `alpha` controls
/// locality — small `alpha` strongly favours short edges, producing the
/// geographically clustered substrates used for scale experiments.
///
/// # Errors
///
/// Returns [`GraphError::EmptySelection`] if `n == 0`, and
/// [`GraphError::InvalidWeight`] if `alpha` is not positive and finite,
/// `beta` is not in `[0, 1]`, or `side` is not positive and finite.
pub fn waxman<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    beta: f64,
    side: f64,
    rng: &mut R,
) -> Result<GeneratedTopology, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptySelection);
    }
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: alpha });
    }
    if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
        return Err(GraphError::InvalidWeight { weight: beta });
    }
    if !side.is_finite() || side <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: side });
    }
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    let scale = alpha * side * std::f64::consts::SQRT_2;
    let mut graph = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = euclid(positions[u], positions[v]);
            if rng.random::<f64>() < beta * (-d / scale).exp() {
                graph
                    .add_edge(NodeId(u), NodeId(v), d.max(f64::MIN_POSITIVE))
                    .expect("fresh pair cannot collide");
            }
        }
    }
    augment_connectivity(&mut graph, &positions);
    Ok(GeneratedTopology { graph, positions })
}

/// Builds an `rows x cols` grid graph with uniform link cost `cost`
/// (nodes numbered row-major). Grids model structured metro/datacenter
/// fabrics and are handy for hand-checkable tests.
///
/// # Errors
///
/// [`GraphError::EmptySelection`] for an empty grid and
/// [`GraphError::InvalidWeight`] for a non-positive cost.
pub fn grid(rows: usize, cols: usize, cost: f64) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::EmptySelection);
    }
    if !cost.is_finite() || cost <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: cost });
    }
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let n = r * cols + c;
            if c + 1 < cols {
                g.add_edge(NodeId(n), NodeId(n + 1), cost)?;
            }
            if r + 1 < rows {
                g.add_edge(NodeId(n), NodeId(n + cols), cost)?;
            }
        }
    }
    Ok(g)
}

/// Builds a `k`-ary fat-tree datacenter fabric (k even): `(k/2)²` core
/// switches, `k` pods of `k/2` aggregation plus `k/2` edge switches, and
/// `(k/2)²·k` hosts hanging off the edge layer — the topology of the
/// datacenter-multicast systems the paper cites (Avalanche, §II). Link
/// costs: `core_cost` for core↔aggregation, `1.0` elsewhere.
///
/// Node numbering: cores first, then per pod (aggregation, edge), then
/// hosts.
///
/// # Errors
///
/// [`GraphError::EmptySelection`] if `k` is odd or zero, and
/// [`GraphError::InvalidWeight`] for a non-positive `core_cost`.
pub fn fat_tree(k: usize, core_cost: f64) -> Result<Graph, GraphError> {
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GraphError::EmptySelection);
    }
    if !core_cost.is_finite() || core_cost <= 0.0 {
        return Err(GraphError::InvalidWeight { weight: core_cost });
    }
    let half = k / 2;
    let cores = half * half;
    let per_pod = k; // half aggregation + half edge
    let switches = cores + k * per_pod;
    let hosts = half * half * k;
    let mut g = Graph::new(switches + hosts);

    let core = |i: usize| NodeId(i);
    let agg = |pod: usize, i: usize| NodeId(cores + pod * per_pod + i);
    let edge = |pod: usize, i: usize| NodeId(cores + pod * per_pod + half + i);
    let host = |pod: usize, e: usize, h: usize| NodeId(switches + pod * half * half + e * half + h);

    for pod in 0..k {
        for a in 0..half {
            // Aggregation a connects to cores [a*half, (a+1)*half).
            for c in 0..half {
                g.add_edge(agg(pod, a), core(a * half + c), core_cost)?;
            }
            // Full bipartite aggregation-edge inside the pod.
            for e in 0..half {
                g.add_edge(agg(pod, a), edge(pod, e), 1.0)?;
            }
        }
        for e in 0..half {
            for h in 0..half {
                g.add_edge(edge(pod, e), host(pod, e, h), 1.0)?;
            }
        }
    }
    Ok(g)
}

/// Adds the Euclidean-shortest missing inter-component edge until the graph
/// is connected. Deterministic given the graph and placements.
fn augment_connectivity(graph: &mut Graph, positions: &[(f64, f64)]) {
    loop {
        let labels = graph.components();
        if labels.iter().all(|&l| l == 0) {
            return;
        }
        let n = graph.node_count();
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            for v in (u + 1)..n {
                if labels[u] == labels[v] {
                    continue;
                }
                let d = euclid(positions[u], positions[v]);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, u, v));
                }
            }
        }
        let (d, u, v) = best.expect("disconnected graph has an inter-component pair");
        graph
            .add_edge(NodeId(u), NodeId(v), d.max(f64::MIN_POSITIVE))
            .expect("inter-component edge cannot already exist");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_is_connected_and_euclidean() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = euclidean_er(60, 0.08, 100.0, &mut rng).unwrap();
        assert!(t.graph.is_connected());
        assert_eq!(t.positions.len(), 60);
        for e in t.graph.edges() {
            let d = t.distance(e.u, e.v);
            assert!((e.weight - d).abs() < 1e-9, "weight must equal distance");
        }
    }

    #[test]
    fn er_is_deterministic_per_seed() {
        let a = euclidean_er(30, 0.1, 50.0, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = euclidean_er(30, 0.1, 50.0, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.positions, b.positions);
        let c = euclidean_er(30, 0.1, 50.0, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn sparse_er_gets_augmented_to_connected() {
        // p = 0 forces the augmentation to build the whole connectivity.
        let mut rng = StdRng::seed_from_u64(5);
        let t = euclidean_er(25, 0.0, 100.0, &mut rng).unwrap();
        assert!(t.graph.is_connected());
        assert!(t.graph.edge_count() >= 24);
    }

    #[test]
    fn dense_er_has_roughly_p_fraction_of_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 80;
        let p = 0.3;
        let t = euclidean_er(n, p, 100.0, &mut rng).unwrap();
        let pairs = (n * (n - 1) / 2) as f64;
        let frac = t.graph.edge_count() as f64 / pairs;
        assert!((frac - p).abs() < 0.06, "edge fraction {frac} far from {p}");
    }

    #[test]
    fn geometric_respects_radius() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_geometric(40, 30.0, 100.0, &mut rng).unwrap();
        assert!(t.graph.is_connected());
        // Non-augmentation edges must be shorter than the radius; count how
        // many exceed it (those are augmentation bridges).
        let long = t.graph.edges().filter(|e| e.weight >= 30.0).count();
        let within = t.graph.edges().filter(|e| e.weight < 30.0).count();
        assert!(within > long, "most edges should respect the radius");
    }

    #[test]
    fn waxman_is_connected_euclidean_and_seed_deterministic() {
        let a = waxman(60, 0.15, 0.4, 100.0, &mut StdRng::seed_from_u64(11)).unwrap();
        assert!(a.graph.is_connected());
        assert_eq!(a.graph.node_count(), 60);
        for e in a.graph.edges() {
            let d = a.distance(e.u, e.v);
            assert!((e.weight - d).abs() < 1e-9, "weight must equal distance");
        }
        let b = waxman(60, 0.15, 0.4, 100.0, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let c = waxman(60, 0.15, 0.4, 100.0, &mut StdRng::seed_from_u64(12)).unwrap();
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn waxman_locality_bias_favours_short_edges() {
        // With a small alpha, the mean realised edge length must sit well
        // below the mean pairwise distance (~52 for a unit square scaled
        // by 100).
        let t = waxman(120, 0.05, 0.9, 100.0, &mut StdRng::seed_from_u64(21)).unwrap();
        let (sum, cnt) = t
            .graph
            .edges()
            .fold((0.0, 0usize), |(s, c), e| (s + e.weight, c + 1));
        assert!(cnt > 0);
        let mean = sum / cnt as f64;
        assert!(mean < 35.0, "mean edge length {mean}");
    }

    #[test]
    fn waxman_beta_zero_leaves_only_augmentation_edges() {
        let t = waxman(20, 0.2, 0.0, 100.0, &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(t.graph.is_connected());
        assert_eq!(t.graph.edge_count(), 19, "spanning augmentation only");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(euclidean_er(0, 0.5, 100.0, &mut rng).is_err());
        assert!(euclidean_er(5, -0.1, 100.0, &mut rng).is_err());
        assert!(euclidean_er(5, 1.5, 100.0, &mut rng).is_err());
        assert!(euclidean_er(5, 0.5, 0.0, &mut rng).is_err());
        assert!(random_geometric(0, 1.0, 100.0, &mut rng).is_err());
        assert!(random_geometric(5, 0.0, 100.0, &mut rng).is_err());
        assert!(random_geometric(5, 1.0, -3.0, &mut rng).is_err());
        assert!(waxman(0, 0.2, 0.4, 100.0, &mut rng).is_err());
        assert!(waxman(5, 0.0, 0.4, 100.0, &mut rng).is_err());
        assert!(waxman(5, 0.2, 1.5, 100.0, &mut rng).is_err());
        assert!(waxman(5, 0.2, -0.1, 100.0, &mut rng).is_err());
        assert!(waxman(5, 0.2, 0.4, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn grid_has_lattice_structure() {
        let g = grid(3, 4, 2.0).unwrap();
        assert_eq!(g.node_count(), 12);
        // Edges: 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8.
        assert_eq!(g.edge_count(), 17);
        assert!(g.is_connected());
        // Corner degree 2, inner degree 4.
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(5)), 4);
        // Manhattan distance holds under uniform costs.
        let sp = g.dijkstra(NodeId(0));
        assert_eq!(sp.distance(NodeId(11)), Some(2.0 * 5.0));
        assert!(grid(0, 3, 1.0).is_err());
        assert!(grid(3, 3, 0.0).is_err());
    }

    #[test]
    fn fat_tree_k4_has_standard_shape() {
        let g = fat_tree(4, 1.0).unwrap();
        // k=4: 4 cores + 4 pods x 4 switches + 16 hosts = 36 nodes.
        assert_eq!(g.node_count(), 36);
        assert!(g.is_connected());
        // Cores connect to one aggregation per pod: degree k.
        for c in 0..4 {
            assert_eq!(g.degree(NodeId(c)), 4, "core {c}");
        }
        // Hosts are leaves.
        for h in 20..36 {
            assert_eq!(g.degree(NodeId(h)), 1, "host {h}");
        }
        // Any host reaches any other host (intra-pod via edge/agg,
        // inter-pod via core): diameter 6 hops at unit cost.
        let m = g.all_pairs_shortest_paths().unwrap();
        let d = m.distance(NodeId(20), NodeId(35)).unwrap();
        assert_eq!(d, 6.0, "inter-pod host distance");
        assert!(fat_tree(3, 1.0).is_err());
        assert!(fat_tree(4, -1.0).is_err());
    }

    #[test]
    fn single_node_topology_is_trivially_connected() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = euclidean_er(1, 0.5, 100.0, &mut rng).unwrap();
        assert_eq!(t.graph.node_count(), 1);
        assert_eq!(t.graph.edge_count(), 0);
        assert!(t.graph.is_connected());
    }
}
