//! Undirected weighted graph storage.
//!
//! [`Graph`] is the substrate every paper algorithm runs on: the physical
//! network topology with non-negative link-connection costs on edges.

use crate::GraphError;
use std::fmt;

/// Identifier of a node in a [`Graph`] or [`crate::DiGraph`].
///
/// The wrapped index is public because node identity is deliberately just a
/// dense index into the graph's node range — generators and the domain layer
/// construct them directly.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Identifier of an undirected edge in a [`Graph`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected edge: endpoints, a non-negative weight, an optional
/// bandwidth capacity, and an optional propagation latency.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Edge {
    /// First endpoint (always the smaller node index).
    pub u: NodeId,
    /// Second endpoint (always the larger node index).
    pub v: NodeId,
    /// Non-negative, finite weight (link-connection cost).
    pub weight: f64,
    /// Optional bandwidth capacity. `None` means uncapacitated — the
    /// legacy model where any number of sessions may share the link.
    pub capacity: Option<f64>,
    /// Optional propagation latency. `None` means the latency *is* the
    /// weight, so a latency-free graph prices delay exactly like cost
    /// and legacy behaviour is bit-identical.
    pub latency: Option<f64>,
}

impl Edge {
    /// Given one endpoint, returns the opposite endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            panic!("node {n:?} is not an endpoint of edge {self:?}")
        }
    }
}

/// An undirected graph with non-negative edge weights.
///
/// Nodes are dense indices `0..node_count()`. Parallel edges and self-loops
/// are rejected at insertion time so that every `(u, v)` pair identifies at
/// most one edge — the paper's cost model counts each physical link once per
/// chain segment, which this uniqueness makes cheap to enforce.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    ///
    /// ```
    /// use sft_graph::Graph;
    /// let g = Graph::new(5);
    /// assert_eq!(g.node_count(), 5);
    /// assert_eq!(g.edge_count(), 0);
    /// ```
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all edge ids, in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Iterator over all edges, in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if either endpoint does not exist.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::InvalidWeight`] if `weight` is negative or not finite.
    /// * [`GraphError::DuplicateEdge`] if an edge between `u` and `v` exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<EdgeId, GraphError> {
        self.add_edge_with_capacity(u, v, weight, None)
    }

    /// Adds an undirected edge carrying an optional bandwidth capacity
    /// (`None` = uncapacitated, the legacy behavior of [`Graph::add_edge`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add_edge`], plus
    /// [`GraphError::InvalidWeight`] if the capacity is negative or not
    /// finite.
    pub fn add_edge_with_capacity(
        &mut self,
        u: NodeId,
        v: NodeId,
        weight: f64,
        capacity: Option<f64>,
    ) -> Result<EdgeId, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u.0 });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        if let Some(c) = capacity {
            if !c.is_finite() || c < 0.0 {
                return Err(GraphError::InvalidWeight { weight: c });
            }
        }
        if self.find_edge(u, v).is_some() {
            return Err(GraphError::DuplicateEdge { u: u.0, v: v.0 });
        }
        let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            u: a,
            v: b,
            weight,
            capacity,
            latency: None,
        });
        self.adjacency[u.0].push((v, id));
        self.adjacency[v.0].push((u, id));
        Ok(id)
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Weight of the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn weight(&self, id: EdgeId) -> f64 {
        self.edges[id.0].weight
    }

    /// Bandwidth capacity of the edge with the given id (`None` =
    /// uncapacitated).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge_capacity(&self, id: EdgeId) -> Option<f64> {
        self.edges[id.0].capacity
    }

    /// Replaces the bandwidth capacity of an existing edge.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidWeight`] if the capacity is negative or not
    /// finite.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn set_edge_capacity(
        &mut self,
        id: EdgeId,
        capacity: Option<f64>,
    ) -> Result<(), GraphError> {
        if let Some(c) = capacity {
            if !c.is_finite() || c < 0.0 {
                return Err(GraphError::InvalidWeight { weight: c });
            }
        }
        self.edges[id.0].capacity = capacity;
        Ok(())
    }

    /// Whether any edge carries a bandwidth capacity. When `false`, the
    /// graph behaves exactly like the legacy uncapacitated model.
    pub fn has_edge_capacities(&self) -> bool {
        self.edges.iter().any(|e| e.capacity.is_some())
    }

    /// Explicit propagation latency of the edge with the given id
    /// (`None` = the latency defaults to the edge weight).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge_latency(&self, id: EdgeId) -> Option<f64> {
        self.edges[id.0].latency
    }

    /// The latency actually charged for traversing an edge: the explicit
    /// latency when set, the weight otherwise. On a latency-free graph
    /// this makes end-to-end delay coincide exactly with path cost.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn effective_latency(&self, id: EdgeId) -> f64 {
        let e = &self.edges[id.0];
        e.latency.unwrap_or(e.weight)
    }

    /// Replaces the propagation latency of an existing edge (`None`
    /// reverts to the latency-defaults-to-weight behaviour).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidWeight`] if the latency is negative or not
    /// finite.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn set_edge_latency(&mut self, id: EdgeId, latency: Option<f64>) -> Result<(), GraphError> {
        if let Some(l) = latency {
            if !l.is_finite() || l < 0.0 {
                return Err(GraphError::InvalidWeight { weight: l });
            }
        }
        self.edges[id.0].latency = latency;
        Ok(())
    }

    /// Whether any edge carries an explicit latency. When `false`, delay
    /// equals cost along every path and the legacy model applies.
    pub fn has_edge_latencies(&self) -> bool {
        self.edges.iter().any(|e| e.latency.is_some())
    }

    /// Total effective latency of a path given as a node sequence.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::path_weight`].
    pub fn path_latency(&self, path: &[NodeId]) -> Result<f64, GraphError> {
        for &n in path {
            self.check_node(n)?;
        }
        let mut total = 0.0;
        for w in path.windows(2) {
            let e = self.find_edge(w[0], w[1]).ok_or(GraphError::Disconnected)?;
            total += self.effective_latency(e);
        }
        Ok(total)
    }

    /// Looks up the edge between `u` and `v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (scan, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency
            .get(scan.0)?
            .iter()
            .find(|(n, _)| *n == target)
            .map(|(_, e)| *e)
    }

    /// Degree of a node (0 for out-of-range nodes).
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency.get(u.0).map_or(0, Vec::len)
    }

    /// Neighbors of `u` together with the connecting edge ids.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adjacency[u.0].iter().copied()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Returns the connected component label of every node (labels are dense
    /// starting at 0, assigned in node order).
    pub fn components(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if label[s] != usize::MAX {
                continue;
            }
            label[s] = next;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.adjacency[u] {
                    if label[v.0] == usize::MAX {
                        label[v.0] = next;
                        stack.push(v.0);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Whether the graph is connected. The empty graph counts as connected.
    pub fn is_connected(&self) -> bool {
        let labels = self.components();
        labels.iter().all(|&l| l == 0)
    }

    /// Total weight of a path given as a node sequence.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if any node is invalid, and
    /// [`GraphError::Disconnected`] if two consecutive nodes are not
    /// adjacent.
    pub fn path_weight(&self, path: &[NodeId]) -> Result<f64, GraphError> {
        for &n in path {
            self.check_node(n)?;
        }
        let mut total = 0.0;
        for w in path.windows(2) {
            let e = self.find_edge(w[0], w[1]).ok_or(GraphError::Disconnected)?;
            total += self.weight(e);
        }
        Ok(total)
    }

    /// Edge ids along a path given as a node sequence.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::path_weight`].
    pub fn path_edges(&self, path: &[NodeId]) -> Result<Vec<EdgeId>, GraphError> {
        for &n in path {
            self.check_node(n)?;
        }
        path.windows(2)
            .map(|w| self.find_edge(w[0], w[1]).ok_or(GraphError::Disconnected))
            .collect()
    }

    /// Builds the subgraph induced by `nodes`: the selected nodes are
    /// renumbered `0..nodes.len()` in the given order and every edge with
    /// both endpoints selected is kept.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] for invalid node ids.
    /// * [`GraphError::DuplicateEdge`] if `nodes` contains duplicates
    ///   (which would alias edges).
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<Graph, GraphError> {
        let mut index = vec![usize::MAX; self.node_count()];
        for (i, &n) in nodes.iter().enumerate() {
            self.check_node(n)?;
            if index[n.0] != usize::MAX {
                return Err(GraphError::DuplicateEdge { u: n.0, v: n.0 });
            }
            index[n.0] = i;
        }
        let mut g = Graph::new(nodes.len());
        for e in self.edges() {
            let (iu, iv) = (index[e.u.0], index[e.v.0]);
            if iu != usize::MAX && iv != usize::MAX {
                let id = g
                    .add_edge_with_capacity(NodeId(iu), NodeId(iv), e.weight, e.capacity)
                    .expect("unique edges stay unique under induction");
                g.set_edge_latency(id, e.latency)
                    .expect("a stored latency is always valid");
            }
        }
        Ok(g)
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.0 < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node: n.0,
                len: self.node_count(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(0), 3.0).unwrap();
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = Graph::new(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn add_edge_records_endpoints_and_weight() {
        let g = triangle();
        assert_eq!(g.edge_count(), 3);
        let e = g.find_edge(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(g.weight(e), 2.0);
        assert_eq!(g.edge(e).other(NodeId(1)), NodeId(2));
    }

    #[test]
    fn edge_endpoints_are_normalized() {
        let mut g = Graph::new(3);
        let e = g.add_edge(NodeId(2), NodeId(0), 1.5).unwrap();
        assert_eq!(g.edge(e).u, NodeId(0));
        assert_eq!(g.edge(e).v, NodeId(2));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(1), 1.0),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_duplicate_edge_in_either_orientation() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(0), 9.0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn rejects_bad_weights() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn rejects_out_of_bounds_nodes() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(5), 1.0),
            Err(GraphError::NodeOutOfBounds { node: 5, len: 2 })
        );
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        // Pre-deployed VNF reuse maps to zero-cost virtual edges in the
        // expanded MOD network, so zero weights must be legal.
        let mut g = Graph::new(2);
        assert!(g.add_edge(NodeId(0), NodeId(1), 0.0).is_ok());
    }

    #[test]
    fn degree_and_neighbors() {
        let g = triangle();
        assert_eq!(g.degree(NodeId(0)), 2);
        let mut ns: Vec<_> = g.neighbors(NodeId(0)).map(|(n, _)| n.0).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let labels = g.components();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn path_weight_and_edges() {
        let g = triangle();
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(g.path_weight(&path).unwrap(), 3.0);
        assert_eq!(g.path_edges(&path).unwrap().len(), 2);
        let bad = [NodeId(0), NodeId(0)];
        assert_eq!(g.path_weight(&bad), Err(GraphError::Disconnected));
    }

    #[test]
    fn single_node_path_has_zero_weight() {
        let g = triangle();
        assert_eq!(g.path_weight(&[NodeId(1)]).unwrap(), 0.0);
        assert!(g.path_edges(&[NodeId(1)]).unwrap().is_empty());
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = triangle();
        let n = g.add_node();
        assert_eq!(n, NodeId(3));
        assert_eq!(g.node_count(), 4);
        assert!(!g.is_connected());
    }

    #[test]
    fn total_weight_sums_edges() {
        assert_eq!(triangle().total_weight(), 6.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle();
        let sub = g.induced_subgraph(&[NodeId(2), NodeId(0)]).unwrap();
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        // Edge 2-0 had weight 3; node 2 becomes 0, node 0 becomes 1.
        assert_eq!(
            sub.weight(sub.find_edge(NodeId(0), NodeId(1)).unwrap()),
            3.0
        );
    }

    #[test]
    fn induced_subgraph_rejects_bad_input() {
        let g = triangle();
        assert!(g.induced_subgraph(&[NodeId(9)]).is_err());
        assert!(g.induced_subgraph(&[NodeId(0), NodeId(0)]).is_err());
        let empty = g.induced_subgraph(&[]).unwrap();
        assert_eq!(empty.node_count(), 0);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn edges_carry_optional_capacities() {
        let mut g = Graph::new(3);
        let a = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let b = g
            .add_edge_with_capacity(NodeId(1), NodeId(2), 2.0, Some(5.0))
            .unwrap();
        assert_eq!(g.edge_capacity(a), None);
        assert_eq!(g.edge_capacity(b), Some(5.0));
        assert!(g.has_edge_capacities());
        g.set_edge_capacity(b, None).unwrap();
        assert!(!g.has_edge_capacities());
        g.set_edge_capacity(a, Some(1.5)).unwrap();
        assert_eq!(g.edge_capacity(a), Some(1.5));
        assert!(g.set_edge_capacity(a, Some(-1.0)).is_err());
        assert!(g.set_edge_capacity(a, Some(f64::NAN)).is_err());
        assert!(g
            .add_edge_with_capacity(NodeId(0), NodeId(2), 1.0, Some(f64::INFINITY))
            .is_err());
    }

    #[test]
    fn edges_carry_optional_latencies() {
        let mut g = Graph::new(3);
        let a = g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        let b = g.add_edge(NodeId(1), NodeId(2), 3.0).unwrap();
        assert!(!g.has_edge_latencies());
        // Latency defaults to the weight.
        assert_eq!(g.edge_latency(a), None);
        assert_eq!(g.effective_latency(a), 2.0);
        g.set_edge_latency(b, Some(0.5)).unwrap();
        assert!(g.has_edge_latencies());
        assert_eq!(g.edge_latency(b), Some(0.5));
        assert_eq!(g.effective_latency(b), 0.5);
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(g.path_latency(&path).unwrap(), 2.5);
        assert_eq!(g.path_weight(&path).unwrap(), 5.0);
        g.set_edge_latency(b, None).unwrap();
        assert!(!g.has_edge_latencies());
        assert_eq!(g.path_latency(&path).unwrap(), 5.0);
        assert!(g.set_edge_latency(a, Some(-1.0)).is_err());
        assert!(g.set_edge_latency(a, Some(f64::NAN)).is_err());
        assert!(g.set_edge_latency(a, Some(f64::INFINITY)).is_err());
    }

    #[test]
    fn induced_subgraph_preserves_latencies() {
        let mut g = Graph::new(3);
        let e = g.add_edge(NodeId(0), NodeId(2), 3.0).unwrap();
        g.set_edge_latency(e, Some(1.25)).unwrap();
        let sub = g.induced_subgraph(&[NodeId(2), NodeId(0)]).unwrap();
        let e = sub.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(sub.edge_latency(e), Some(1.25));
        assert_eq!(sub.effective_latency(e), 1.25);
    }

    #[test]
    fn induced_subgraph_preserves_capacities() {
        let mut g = Graph::new(3);
        g.add_edge_with_capacity(NodeId(0), NodeId(2), 3.0, Some(7.0))
            .unwrap();
        let sub = g.induced_subgraph(&[NodeId(2), NodeId(0)]).unwrap();
        let e = sub.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(sub.edge_capacity(e), Some(7.0));
    }
}
