//! Graph substrate for the SFT-embedding reproduction.
//!
//! This crate provides every graph primitive the paper's algorithms rely on,
//! implemented from scratch:
//!
//! * [`Graph`] — an undirected, non-negatively weighted graph with an
//!   adjacency-list representation ([`graph`]).
//! * [`DiGraph`] — a directed weighted graph, used by `sft-core` for the
//!   multilevel overlay directed (MOD) network ([`digraph`]).
//! * Single-source shortest paths (Dijkstra, [`dijkstra`]) and all-pairs
//!   shortest paths (Floyd–Warshall, [`apsp`]).
//! * Minimum spanning trees (Kruskal and Prim, [`mst`]) on top of a
//!   union-find structure ([`union_find`]).
//! * Steiner-tree constructions ([`steiner`]): the Kou–Markowsky–Berman
//!   2-approximation the paper cites for its stage-1 algorithm, the
//!   Takahashi–Matsuyama path heuristic as an ablation, and an exact
//!   brute-force solver used as a test oracle.
//! * Tree utilities ([`tree`]): rooted views, root-to-leaf decomposition.
//! * A persistent, shareable Steiner-tree cache ([`cache`]) for
//!   long-running services that solve many requests over one graph, and
//!   the workspace-wide numeric tolerances ([`numeric`]).
//! * Random topology generators ([`generate`]): Erdős–Rényi graphs over
//!   Euclidean point placements, random geometric graphs, and Waxman
//!   locality-biased graphs, with connectivity augmentation.
//! * A distance-provider abstraction ([`provider`]): [`DistanceProvider`]
//!   unifies the dense precomputed [`DistanceMatrix`] with
//!   [`LazyDistances`], a CSR-backed on-demand provider that materializes
//!   per-source rows only when queried — the scaling path for 10k+-node
//!   substrates.
//! * Cooperative cancellation ([`cancel`]): [`CancelToken`] threads
//!   deadline/drain interruption through the long-running solvers.
//!
//! # Example
//!
//! ```
//! use sft_graph::{Graph, NodeId};
//!
//! # fn main() -> Result<(), sft_graph::GraphError> {
//! let mut g = Graph::new(4);
//! g.add_edge(NodeId(0), NodeId(1), 1.0)?;
//! g.add_edge(NodeId(1), NodeId(2), 2.0)?;
//! g.add_edge(NodeId(0), NodeId(3), 10.0)?;
//! g.add_edge(NodeId(3), NodeId(2), 1.0)?;
//!
//! let sp = g.dijkstra(NodeId(0));
//! assert_eq!(sp.distance(NodeId(2)), Some(3.0));
//! assert_eq!(sp.path_to(NodeId(2)).unwrap(), vec![NodeId(0), NodeId(1), NodeId(2)]);
//! # Ok(())
//! # }
//! ```

pub mod apsp;
pub mod cache;
pub mod cancel;
pub mod digraph;
pub mod dijkstra;
mod error;
pub mod generate;
pub mod graph;
pub mod mst;
pub mod numeric;
pub mod parallel;
pub mod provider;
pub mod steiner;
pub mod tree;
pub mod union_find;

pub use apsp::DistanceMatrix;
pub use cache::{CacheStats, SteinerCache, TreeCache};
pub use cancel::{CancelToken, Cancelled};
pub use digraph::DiGraph;
pub use dijkstra::ShortestPaths;
pub use error::GraphError;
pub use graph::{EdgeId, Graph, NodeId};
pub use numeric::{approx_eq, approx_le, EPS};
pub use parallel::Parallelism;
pub use provider::{
    provider_for, DistanceMode, DistanceProvider, LazyDistances, ProviderKind, LAZY_THRESHOLD,
};
pub use steiner::SteinerTree;
pub use tree::RootedTree;
pub use union_find::UnionFind;
