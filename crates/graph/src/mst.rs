//! Minimum spanning trees (Kruskal and Prim).
//!
//! The Kou–Markowsky–Berman Steiner construction ([`crate::steiner`]) runs
//! an MST twice: once on the terminals' metric closure and once on the
//! expanded subgraph. Both algorithms are provided; they must agree on total
//! weight, which the tests exploit as a cross-check.

use crate::union_find::UnionFind;
use crate::{EdgeId, Graph, GraphError, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A spanning tree (or forest) of a graph: chosen edges and total weight.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanningTree {
    /// The edges of the tree, in discovery order.
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' weights.
    pub weight: f64,
}

impl Graph {
    /// Minimum spanning tree via Kruskal's algorithm.
    ///
    /// ```
    /// use sft_graph::{Graph, NodeId};
    /// # fn main() -> Result<(), sft_graph::GraphError> {
    /// let mut g = Graph::new(3);
    /// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
    /// g.add_edge(NodeId(1), NodeId(2), 2.0)?;
    /// g.add_edge(NodeId(0), NodeId(2), 9.0)?; // skipped by the MST
    /// let mst = g.minimum_spanning_tree()?;
    /// assert_eq!(mst.edges.len(), 2);
    /// assert_eq!(mst.weight, 3.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected
    /// (use [`Graph::minimum_spanning_forest`] for that case).
    pub fn minimum_spanning_tree(&self) -> Result<SpanningTree, GraphError> {
        let forest = self.minimum_spanning_forest();
        let n = self.node_count();
        if n > 0 && forest.edges.len() != n - 1 {
            return Err(GraphError::Disconnected);
        }
        Ok(forest)
    }

    /// Minimum spanning forest via Kruskal's algorithm: one tree per
    /// connected component.
    pub fn minimum_spanning_forest(&self) -> SpanningTree {
        let mut order: Vec<EdgeId> = self.edge_ids().collect();
        order.sort_by(|a, b| self.weight(*a).total_cmp(&self.weight(*b)));
        let mut uf = UnionFind::new(self.node_count());
        let mut edges = Vec::new();
        let mut weight = 0.0;
        for id in order {
            let e = self.edge(id);
            if uf.union(e.u.0, e.v.0) {
                edges.push(id);
                weight += e.weight;
            }
        }
        SpanningTree { edges, weight }
    }

    /// Minimum spanning tree via Prim's algorithm, starting from `root`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for an invalid root and
    /// [`GraphError::Disconnected`] if some node is unreachable from it.
    pub fn prim(&self, root: NodeId) -> Result<SpanningTree, GraphError> {
        let n = self.node_count();
        if root.0 >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: root.0,
                len: n,
            });
        }
        let mut in_tree = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        // Keys are weight bit patterns: non-negative finite f64s order
        // identically as integers.
        let key = |w: f64| w.to_bits();
        in_tree[root.0] = true;
        for (v, e) in self.neighbors(root) {
            heap.push(Reverse((key(self.weight(e)), e.0, v.0)));
        }
        let mut edges = Vec::new();
        let mut weight = 0.0;
        while let Some(Reverse((_, eid, v))) = heap.pop() {
            if in_tree[v] {
                continue;
            }
            in_tree[v] = true;
            edges.push(EdgeId(eid));
            weight += self.weight(EdgeId(eid));
            for (u, e) in self.neighbors(NodeId(v)) {
                if !in_tree[u.0] {
                    heap.push(Reverse((key(self.weight(e)), e.0, u.0)));
                }
            }
        }
        if n > 0 && edges.len() != n - 1 {
            return Err(GraphError::Disconnected);
        }
        Ok(SpanningTree { edges, weight })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_sample() -> Graph {
        let mut g = Graph::new(6);
        let edges = [
            (0, 1, 4.0),
            (0, 2, 3.0),
            (1, 2, 1.0),
            (1, 3, 2.0),
            (2, 3, 4.0),
            (3, 4, 2.0),
            (4, 5, 6.0),
            (3, 5, 3.0),
        ];
        for (u, v, w) in edges {
            g.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        g
    }

    #[test]
    fn kruskal_weight_matches_hand_computation() {
        // MST: 1-2 (1), 1-3 (2), 3-4 (2), 0-2 (3), 3-5 (3) = 11.
        let t = weighted_sample().minimum_spanning_tree().unwrap();
        assert_eq!(t.edges.len(), 5);
        assert!((t.weight - 11.0).abs() < 1e-12);
    }

    #[test]
    fn prim_agrees_with_kruskal_from_every_root() {
        let g = weighted_sample();
        let k = g.minimum_spanning_tree().unwrap();
        for r in g.nodes() {
            let p = g.prim(r).unwrap();
            assert!((p.weight - k.weight).abs() < 1e-12, "root {r:?}");
            assert_eq!(p.edges.len(), k.edges.len());
        }
    }

    #[test]
    fn disconnected_graph_is_reported() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        assert_eq!(g.minimum_spanning_tree(), Err(GraphError::Disconnected));
        assert_eq!(g.prim(NodeId(0)), Err(GraphError::Disconnected));
        let f = g.minimum_spanning_forest();
        assert_eq!(f.edges.len(), 2);
        assert!((f.weight - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mst_is_acyclic_and_spanning() {
        let g = weighted_sample();
        let t = g.minimum_spanning_tree().unwrap();
        let mut uf = UnionFind::new(g.node_count());
        for id in &t.edges {
            let e = g.edge(*id);
            assert!(uf.union(e.u.0, e.v.0), "cycle detected in MST");
        }
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn singleton_and_empty_graphs() {
        let g = Graph::new(1);
        let t = g.minimum_spanning_tree().unwrap();
        assert!(t.edges.is_empty());
        assert_eq!(t.weight, 0.0);
        let e = Graph::new(0);
        assert!(e.minimum_spanning_tree().unwrap().edges.is_empty());
    }

    #[test]
    fn prim_invalid_root() {
        let g = Graph::new(2);
        assert!(matches!(
            g.prim(NodeId(7)),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }
}
