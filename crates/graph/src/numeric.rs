//! Shared floating-point tolerances for the whole workspace.
//!
//! Every crate that compares costs, capacities or LP feasibility used to
//! carry its own ad-hoc `1e-9` / `1e-6` literals; they are hoisted here so
//! a single definition governs validator slack, capacity-repair slack,
//! branch-and-bound incumbent acceptance and the service commit path.
//! Comparisons are magnitude-scaled: the slack for values around `x` is
//! `EPS * max(1, |x|)`, so large aggregate costs compare as sensibly as
//! unit-scale ones while small values keep the absolute `EPS` floor.

/// Baseline relative tolerance for cost and capacity comparisons.
pub const EPS: f64 = 1e-9;

/// Tolerance for MIP integrality and incumbent feasibility checks.
///
/// Looser than [`EPS`]: branch-and-bound accepts an incumbent when every
/// constraint holds within this slack after rounding, matching the scale
/// of simplex round-off on the tableaux this workspace solves.
pub const MIP_TOL: f64 = 1e-6;

/// Magnitude scale used by the relative comparisons below.
fn scale(a: f64, b: f64) -> f64 {
    1.0_f64.max(a.abs()).max(b.abs())
}

/// Returns `true` when two values are equal within [`EPS`] (scaled by
/// magnitude so large costs compare sensibly).
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * scale(a, b)
}

/// Returns `true` when `a <= b` within the scaled [`EPS`] slack — the
/// canonical "does this load fit this capacity" test.
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS * scale(a, b)
}

/// Returns `true` when `a` strictly exceeds `b` beyond the scaled slack
/// (the negation of [`approx_le`], named for call-site readability).
pub fn exceeds(a: f64, b: f64) -> bool {
    !approx_le(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1.0, 1.0 + 1e-10));
        assert!(!approx_eq(1.0, 1.0 + 1e-7));
        // At magnitude 1e6 the slack widens proportionally.
        assert!(approx_eq(1e6, 1e6 + 1e-4));
        assert!(!approx_eq(1e6, 1e6 + 1.0));
    }

    #[test]
    fn approx_le_accepts_hairline_overshoot_only() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-10, 1.0));
        assert!(!approx_le(1.0 + 1e-6, 1.0));
        assert!(approx_le(0.5, 1.0));
        assert!(exceeds(2.0, 1.0));
        assert!(!exceeds(1.0, 1.0));
    }

    #[test]
    fn tolerances_are_ordered() {
        assert!(EPS < MIP_TOL);
    }
}
