//! Thread-count knob and scoped fan-out helpers.
//!
//! Everything here is built on `std::thread::scope` — the workspace has no
//! external dependencies, so there is no rayon-style pool. The helpers keep
//! the two invariants every caller relies on:
//!
//! 1. **Determinism**: work is partitioned into contiguous index chunks and
//!    per-chunk results are returned in chunk order, so reductions can
//!    replay the sequential left-to-right order exactly.
//! 2. **Zero overhead at 1**: [`Parallelism::sequential`] (or one item)
//!    runs the worker inline on the calling thread — no spawn, identical
//!    code path to a plain loop.

use std::num::NonZeroUsize;
use std::ops::Range;

/// How many worker threads a parallel algorithm may use.
///
/// The default ([`Parallelism::auto`]) matches the machine's available
/// cores; [`Parallelism::sequential`] (= 1 thread) reproduces the
/// single-threaded code path exactly. All algorithms in this workspace are
/// bit-deterministic in the knob: any thread count produces identical
/// output, only wall-clock time changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// One worker per available core (falls back to 1 when the platform
    /// cannot report a count).
    pub fn auto() -> Self {
        Parallelism(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// Exactly one worker: the sequential code path.
    pub const fn sequential() -> Self {
        Parallelism(NonZeroUsize::MIN)
    }

    /// An explicit thread count; `0` means [`Parallelism::auto`].
    pub fn new(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(t) => Parallelism(t),
            None => Parallelism::auto(),
        }
    }

    /// The number of worker threads.
    pub fn threads(self) -> usize {
        self.0.get()
    }

    /// Whether this is the single-threaded code path.
    pub fn is_sequential(self) -> bool {
        self.0.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl From<usize> for Parallelism {
    fn from(threads: usize) -> Self {
        Parallelism::new(threads)
    }
}

/// Splits `0..items` into at most `parts` contiguous, non-empty,
/// near-equal ranges (the first `items % parts` ranges get one extra item).
pub fn chunk_ranges(items: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, items.max(1));
    if items == 0 {
        return Vec::new();
    }
    let base = items / parts;
    let extra = items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `worker` over contiguous chunks of `0..items` on up to
/// `parallelism.threads()` scoped threads and returns the per-chunk results
/// **in chunk order**.
///
/// With one thread (or zero/one items) the worker runs inline on the
/// calling thread. Workers receive disjoint index ranges covering `0..items`
/// exactly once, so a left-fold over the returned vector reproduces the
/// sequential reduction order.
pub fn run_partitioned<R, F>(parallelism: Parallelism, items: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(items, parallelism.threads());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(worker).collect();
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || worker(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_and_sequential_are_sane() {
        assert!(Parallelism::auto().threads() >= 1);
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism::new(0), Parallelism::auto());
        assert_eq!(Parallelism::from(3).threads(), 3);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for items in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(items, parts);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start, "{items} items / {parts} parts");
                    assert!(!r.is_empty(), "{items} items / {parts} parts");
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, items);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn run_partitioned_preserves_chunk_order() {
        for threads in [1usize, 2, 4, 7] {
            let chunks = run_partitioned(Parallelism::new(threads), 23, |r| r.clone());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..23).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn run_partitioned_reduces_like_a_sequential_fold() {
        let seq: u64 = (0..1000u64).map(|x| x * x).sum();
        for threads in [1usize, 3, 8] {
            let par: u64 = run_partitioned(Parallelism::new(threads), 1000, |r: Range<usize>| {
                r.map(|x| (x as u64) * (x as u64)).sum::<u64>()
            })
            .into_iter()
            .sum();
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn zero_items_runs_no_worker() {
        let out = run_partitioned(Parallelism::new(4), 0, |_r| panic!("no work expected"));
        assert!(out.is_empty());
    }
}
