//! On-demand shortest-path distances behind the [`DistanceProvider`]
//! trait.
//!
//! The paper's algorithms are stated over a precomputed all-pairs
//! matrix, and for backbone-sized graphs the dense [`DistanceMatrix`]
//! is exactly right. At the 10k+-node scale the `n²` dist/next arrays
//! are gigabytes before the first solve starts, while a single embedding
//! only ever touches a handful of sources. [`LazyDistances`] keeps a
//! flat CSR copy of the adjacency (built once per graph epoch), runs
//! per-source Dijkstra the first time a row is asked for, and memoizes
//! completed rows behind an `RwLock` so concurrent quotes share them.
//!
//! # Bit-identity contract
//!
//! A lazy row is computed by the *same* Dijkstra core, expanding
//! neighbors in the *same* adjacency insertion order, and deriving
//! `next[s][t]` by the same predecessor walk as
//! [`Graph::all_pairs_shortest_paths_sparse`]. Shortest-path tie-breaks
//! therefore resolve identically, and a solve against the lazy provider
//! is bit-identical to one against the sparse-built dense matrix — the
//! property the CI `scale-smoke` job asserts end to end.
//!
//! # Aggregate semantics on disconnected graphs
//!
//! [`DistanceProvider::average_distance`] averages over ordered pairs of
//! distinct, *mutually reachable* nodes — unreachable (infinite) pairs
//! are skipped, never poisoning the average — and
//! [`DistanceProvider::diameter`] is the largest *finite* pairwise
//! distance. Both return 0.0 when no qualifying pair exists. Every
//! implementation honors the same contract; the lazy provider streams
//! rows (compute, fold, discard) so the aggregates stay O(n) resident.

use crate::cancel::{CancelToken, Cancelled};
use crate::dijkstra::dijkstra_core_cancellable;
use crate::{DistanceMatrix, Graph, GraphError, NodeId};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Which implementation backs a [`DistanceProvider`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProviderKind {
    /// Precomputed `n²` [`DistanceMatrix`].
    Dense,
    /// CSR-backed [`LazyDistances`] with on-demand rows.
    Lazy,
}

impl ProviderKind {
    /// Stable lower-case name for stats rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            ProviderKind::Dense => "dense",
            ProviderKind::Lazy => "lazy",
        }
    }
}

impl fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Packed per-arc effective latencies, built only when the graph carries
/// explicit latencies. Both providers snapshot one at construction so
/// `distance_and_delay` prices the *same* canonical path they return
/// from [`DistanceProvider::path`] — which is what makes the dense and
/// lazy (cost, delay) answers bit-identical by construction.
#[derive(Clone, Debug, Default)]
pub(crate) struct LatencyCsr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    lats: Vec<f64>,
}

impl LatencyCsr {
    /// Snapshots the graph's effective latencies, or `None` when no edge
    /// carries an explicit latency (delay then equals cost everywhere and
    /// no memory is spent).
    pub(crate) fn from_graph(graph: &Graph) -> Option<LatencyCsr> {
        if !graph.has_edge_latencies() {
            return None;
        }
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        let mut lats = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for u in 0..n {
            for (v, e) in graph.neighbors(NodeId(u)) {
                neighbors.push(v.0 as u32);
                lats.push(graph.effective_latency(e));
            }
            offsets.push(u32::try_from(neighbors.len()).expect("graph exceeds u32 arc capacity"));
        }
        Some(LatencyCsr {
            offsets,
            neighbors,
            lats,
        })
    }

    /// Effective latency of the `u`-`v` arc, or `None` if not adjacent.
    fn hop(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let lo = self.offsets[u.0] as usize;
        let hi = self.offsets[u.0 + 1] as usize;
        (lo..hi)
            .find(|&i| self.neighbors[i] as usize == v.0)
            .map(|i| self.lats[i])
    }

    /// Total effective latency along a node walk.
    pub(crate) fn path_latency(&self, path: &[NodeId]) -> Option<f64> {
        let mut total = 0.0;
        for w in path.windows(2) {
            total += self.hop(w[0], w[1])?;
        }
        Some(total)
    }
}

/// Shortest-path distances and path reconstruction, dense or on-demand.
///
/// Method names and semantics deliberately match [`DistanceMatrix`] so
/// consumers are implementation-agnostic. Out-of-bounds nodes panic, as
/// they do on the matrix.
pub trait DistanceProvider: fmt::Debug + Send + Sync {
    /// Number of nodes the provider covers.
    fn node_count(&self) -> usize;

    /// Shortest-path distance from `u` to `v`, or `None` if unreachable.
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64>;

    /// The node sequence of a shortest path from `u` to `v` (both
    /// endpoints included; `[u]` for `u == v`), or `None` if unreachable.
    fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>>;

    /// [`DistanceProvider::distance`] with a cancellation poll inside any
    /// on-demand row computation. Precomputed implementations never
    /// cancel.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `cancel` trips mid-computation.
    fn try_distance(
        &self,
        u: NodeId,
        v: NodeId,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<f64>, Cancelled> {
        let _ = cancel;
        Ok(self.distance(u, v))
    }

    /// [`DistanceProvider::path`] with a cancellation poll inside any
    /// on-demand row computation.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `cancel` trips mid-computation.
    fn try_path(
        &self,
        u: NodeId,
        v: NodeId,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<Vec<NodeId>>, Cancelled> {
        let _ = cancel;
        Ok(self.path(u, v))
    }

    /// The (cost, delay) pair of the provider's canonical shortest
    /// `u`→`v` path: cost is [`DistanceProvider::distance`], delay is the
    /// sum of effective edge latencies along exactly the node sequence
    /// [`DistanceProvider::path`] returns. On a latency-free graph the
    /// delay *is* the cost (latencies default to weights), so the legacy
    /// model is reproduced bit for bit. `None` when unreachable.
    ///
    /// Because dense and lazy providers return bit-identical paths, their
    /// (cost, delay) answers coincide by construction.
    fn distance_and_delay(&self, u: NodeId, v: NodeId) -> Option<(f64, f64)>;

    /// Average distance over ordered pairs of distinct mutually reachable
    /// nodes (the paper's `l_G`); 0.0 when no such pair exists. See the
    /// module docs for the disconnected-graph contract.
    fn average_distance(&self) -> f64;

    /// Largest finite pairwise distance; 0.0 below two reachable nodes.
    fn diameter(&self) -> f64;

    /// Which implementation this is, for telemetry.
    fn kind(&self) -> ProviderKind;

    /// Distance rows currently resident in memory (always `n` for dense).
    fn rows_materialized(&self) -> u64;

    /// High-water mark of resident rows over the provider's lifetime.
    fn peak_rows(&self) -> u64 {
        self.rows_materialized()
    }

    /// Row-cache hits (queries answered from a memoized row).
    fn row_hits(&self) -> u64 {
        0
    }

    /// Row-cache misses (queries that ran a fresh Dijkstra).
    fn row_misses(&self) -> u64 {
        0
    }

    /// Drops any memoized state derived from source `u`, forcing the next
    /// query to recompute it. No-op for precomputed implementations
    /// (their owner rebuilds the whole matrix on graph change).
    fn invalidate_source(&self, u: NodeId) {
        let _ = u;
    }
}

impl DistanceProvider for DistanceMatrix {
    fn node_count(&self) -> usize {
        DistanceMatrix::node_count(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        DistanceMatrix::distance(self, u, v)
    }

    fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        DistanceMatrix::path(self, u, v)
    }

    fn distance_and_delay(&self, u: NodeId, v: NodeId) -> Option<(f64, f64)> {
        DistanceMatrix::distance_and_delay(self, u, v)
    }

    fn average_distance(&self) -> f64 {
        DistanceMatrix::average_distance(self)
    }

    fn diameter(&self) -> f64 {
        DistanceMatrix::diameter(self)
    }

    fn kind(&self) -> ProviderKind {
        ProviderKind::Dense
    }

    fn rows_materialized(&self) -> u64 {
        DistanceMatrix::node_count(self) as u64
    }
}

/// One memoized Dijkstra row: distances from a fixed source plus the
/// first hop towards every reachable target.
#[derive(Debug)]
struct Row {
    dist: Vec<f64>,
    // next[t] = the node following the source on a shortest source->t path.
    next: Vec<Option<NodeId>>,
}

/// On-demand shortest paths over a flat CSR adjacency.
///
/// Built once per graph epoch by [`LazyDistances::new`]; rows are
/// computed by per-source Dijkstra on first use and shared behind an
/// `RwLock`, so clones of a network snapshot reuse each other's rows.
pub struct LazyDistances {
    n: usize,
    // CSR: the neighbors of u are neighbors[offsets[u]..offsets[u+1]],
    // in the graph's adjacency insertion order (which fixes Dijkstra
    // tie-breaks — see the module docs).
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    costs: Vec<f64>,
    // Latency adjacency, present only when the graph carries explicit
    // edge latencies; `None` means delay == cost on every path.
    lat: Option<LatencyCsr>,
    rows: RwLock<Vec<Option<Arc<Row>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    resident: AtomicU64,
    peak: AtomicU64,
}

impl fmt::Debug for LazyDistances {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyDistances")
            .field("n", &self.n)
            .field("arcs", &self.neighbors.len())
            .field("rows_materialized", &self.rows_materialized())
            .finish()
    }
}

impl LazyDistances {
    /// Snapshots `graph` into the packed CSR arrays. O(|V| + |E|) time
    /// and memory; no shortest paths are computed yet.
    pub fn new(graph: &Graph) -> LazyDistances {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        let mut costs = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for u in 0..n {
            for (v, e) in graph.neighbors(NodeId(u)) {
                neighbors.push(v.0 as u32);
                costs.push(graph.weight(e));
            }
            offsets.push(u32::try_from(neighbors.len()).expect("graph exceeds u32 arc capacity"));
        }
        LazyDistances {
            n,
            offsets,
            neighbors,
            costs,
            lat: LatencyCsr::from_graph(graph),
            rows: RwLock::new((0..n).map(|_| None).collect()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Runs Dijkstra from `s` over the CSR arrays, mirroring the sparse
    /// APSP row fill exactly (same core, same expansion order, same
    /// predecessor walk for the first hop).
    fn compute_row(&self, s: usize, cancel: Option<&CancelToken>) -> Result<Row, Cancelled> {
        let sp = dijkstra_core_cancellable(
            self.n,
            NodeId(s),
            None,
            |u, visit| {
                let lo = self.offsets[u.0] as usize;
                let hi = self.offsets[u.0 + 1] as usize;
                for i in lo..hi {
                    visit(NodeId(self.neighbors[i] as usize), self.costs[i]);
                }
            },
            cancel,
        )?;
        let mut dist = vec![f64::INFINITY; self.n];
        let mut next = vec![None; self.n];
        for (t, d) in sp.reached() {
            dist[t.0] = d;
            if t.0 == s {
                continue;
            }
            let mut cur = t;
            loop {
                match sp.predecessor(cur) {
                    Some(p) if p.0 == s => break,
                    Some(p) => cur = p,
                    None => break,
                }
            }
            next[t.0] = Some(cur);
        }
        Ok(Row { dist, next })
    }

    /// The memoized row for source `s`, computing and caching it on miss.
    fn row(&self, s: usize, cancel: Option<&CancelToken>) -> Result<Arc<Row>, Cancelled> {
        assert!(s < self.n, "node out of bounds");
        {
            let rows = self.rows.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(row) = &rows[s] {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(row));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let row = Arc::new(self.compute_row(s, cancel)?);
        let mut rows = self.rows.write().unwrap_or_else(PoisonError::into_inner);
        match &rows[s] {
            // A concurrent miss computed the same (deterministic) row
            // first; keep the resident count honest by using theirs.
            Some(existing) => Ok(Arc::clone(existing)),
            None => {
                rows[s] = Some(Arc::clone(&row));
                let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
                self.peak.fetch_max(now, Ordering::Relaxed);
                Ok(row)
            }
        }
    }

    /// Streams every row through `fold` — cached rows are reused, missing
    /// ones are computed and *discarded*, so aggregate queries never blow
    /// up the resident-row count (or the hit/miss telemetry).
    fn scan_rows(&self, mut fold: impl FnMut(usize, &[f64])) {
        for s in 0..self.n {
            let cached = {
                let rows = self.rows.read().unwrap_or_else(PoisonError::into_inner);
                rows[s].as_ref().map(Arc::clone)
            };
            match cached {
                Some(row) => fold(s, &row.dist),
                None => {
                    let row = match self.compute_row(s, None) {
                        Ok(row) => row,
                        Err(Cancelled) => unreachable!("no token was supplied"),
                    };
                    fold(s, &row.dist);
                }
            }
        }
    }
}

impl DistanceProvider for LazyDistances {
    fn node_count(&self) -> usize {
        self.n
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        match self.try_distance(u, v, None) {
            Ok(d) => d,
            Err(Cancelled) => unreachable!("no token was supplied"),
        }
    }

    fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        match self.try_path(u, v, None) {
            Ok(p) => p,
            Err(Cancelled) => unreachable!("no token was supplied"),
        }
    }

    fn distance_and_delay(&self, u: NodeId, v: NodeId) -> Option<(f64, f64)> {
        let cost = self.distance(u, v)?;
        match &self.lat {
            None => Some((cost, cost)),
            Some(lat) => {
                let path = self.path(u, v)?;
                let delay = lat
                    .path_latency(&path)
                    .expect("canonical path only uses stored arcs");
                Some((cost, delay))
            }
        }
    }

    fn try_distance(
        &self,
        u: NodeId,
        v: NodeId,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<f64>, Cancelled> {
        assert!(v.0 < self.n, "node out of bounds");
        let row = self.row(u.0, cancel)?;
        let d = row.dist[v.0];
        Ok(d.is_finite().then_some(d))
    }

    fn try_path(
        &self,
        u: NodeId,
        v: NodeId,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<Vec<NodeId>>, Cancelled> {
        if self.try_distance(u, v, cancel)?.is_none() {
            return Ok(None);
        }
        // The same cross-row first-hop walk as DistanceMatrix::path: each
        // step consults the *current* node's row, so tie-breaks resolve
        // identically to the sparse-built matrix.
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            let row = self.row(cur.0, cancel)?;
            match row.next[v.0] {
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
                None => return Ok(None),
            }
        }
        Ok(Some(path))
    }

    fn average_distance(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0u64;
        self.scan_rows(|s, dist| {
            for (t, &d) in dist.iter().enumerate() {
                if t != s && d.is_finite() {
                    total += d;
                    count += 1;
                }
            }
        });
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    fn diameter(&self) -> f64 {
        let mut max = 0.0f64;
        self.scan_rows(|_, dist| {
            for &d in dist {
                if d.is_finite() && d > max {
                    max = d;
                }
            }
        });
        max
    }

    fn kind(&self) -> ProviderKind {
        ProviderKind::Lazy
    }

    fn rows_materialized(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    fn peak_rows(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn row_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn row_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn invalidate_source(&self, u: NodeId) {
        assert!(u.0 < self.n, "node out of bounds");
        let mut rows = self.rows.write().unwrap_or_else(PoisonError::into_inner);
        if rows[u.0].take().is_some() {
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Node count above which [`provider_for`] (and `Network::build`) stop
/// precomputing the dense matrix: beyond this, the `n²` arrays dominate
/// memory while a typical solve touches few sources. At the threshold
/// the dense matrix is ~25 MB; it quadruples per doubling.
pub const LAZY_THRESHOLD: usize = 1024;

/// How a provider should be chosen for a graph.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum DistanceMode {
    /// Size dispatch: dense below [`LAZY_THRESHOLD`] nodes, lazy above.
    #[default]
    Auto,
    /// Always precompute the full matrix (Floyd–Warshall on dense
    /// graphs, per-source Dijkstra on sparse ones).
    Dense,
    /// Always the on-demand CSR provider.
    Lazy,
}

impl std::str::FromStr for DistanceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<DistanceMode, String> {
        match s {
            "auto" => Ok(DistanceMode::Auto),
            "dense" => Ok(DistanceMode::Dense),
            "lazy" => Ok(DistanceMode::Lazy),
            other => Err(format!("unknown distance mode `{other}`")),
        }
    }
}

/// Builds the distance provider for `graph` under `mode`. `Auto` keeps
/// the historical density dispatch (Floyd–Warshall vs per-source
/// Dijkstra) below [`LAZY_THRESHOLD`] nodes and goes lazy above it.
///
/// # Errors
///
/// Propagates [`GraphError`] from the dense APSP builders (which never
/// fail on valid graphs today).
pub fn provider_for(
    graph: &Graph,
    mode: DistanceMode,
) -> Result<Arc<dyn DistanceProvider>, GraphError> {
    let n = graph.node_count();
    match mode {
        DistanceMode::Lazy => Ok(Arc::new(LazyDistances::new(graph))),
        DistanceMode::Auto if n > LAZY_THRESHOLD => Ok(Arc::new(LazyDistances::new(graph))),
        DistanceMode::Auto | DistanceMode::Dense => {
            // Dense dispatch: Dijkstra-per-row beats Floyd–Warshall's
            // O(n³) whenever the graph is sparse (|E| * 8 < n²).
            if graph.edge_count() * 8 < n * n {
                Ok(Arc::new(graph.all_pairs_shortest_paths_sparse()?))
            } else {
                Ok(Arc::new(graph.all_pairs_shortest_paths()?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 7.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 9.0).unwrap();
        g.add_edge(NodeId(0), NodeId(4), 14.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 15.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 11.0).unwrap();
        g.add_edge(NodeId(2), NodeId(4), 2.0).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 6.0).unwrap();
        g
    }

    #[test]
    fn lazy_is_bit_identical_to_the_sparse_matrix() {
        let g = sample();
        let dense = g.all_pairs_shortest_paths_sparse().unwrap();
        let lazy = LazyDistances::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                // Not approximate: Option<f64> equality, tie-breaks included.
                assert_eq!(
                    DistanceProvider::distance(&dense, s, t),
                    lazy.distance(s, t),
                    "distance {s:?}->{t:?}"
                );
                assert_eq!(
                    DistanceProvider::path(&dense, s, t),
                    lazy.path(s, t),
                    "path {s:?}->{t:?}"
                );
            }
        }
        assert_eq!(lazy.rows_materialized(), 5);
        assert_eq!(lazy.peak_rows(), 5);
    }

    #[test]
    fn delay_equals_cost_on_a_latency_free_graph() {
        let g = sample();
        let dense = g.all_pairs_shortest_paths_sparse().unwrap();
        let lazy = LazyDistances::new(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                let expect = lazy.distance(s, t).map(|d| (d, d));
                assert_eq!(lazy.distance_and_delay(s, t), expect, "lazy {s:?}->{t:?}");
                assert_eq!(
                    DistanceProvider::distance_and_delay(&dense, s, t),
                    expect,
                    "dense {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn dense_and_lazy_agree_on_cost_and_delay_pairs() {
        // Give every edge a latency decoupled from its weight so the delay
        // component genuinely exercises the canonical-path walk.
        let mut g = sample();
        for (i, e) in g.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            g.set_edge_latency(e, Some(0.5 + i as f64 * 0.25)).unwrap();
        }
        // Parity is against the sparse-built matrix: lazy rows mirror the
        // sparse APSP fill bit for bit (FW may tie-break differently).
        let dense = g.all_pairs_shortest_paths_sparse().unwrap();
        let lazy = LazyDistances::new(&g);
        let mut saw_divergence = false;
        for s in g.nodes() {
            for t in g.nodes() {
                let d = DistanceProvider::distance_and_delay(&dense, s, t);
                let l = lazy.distance_and_delay(s, t);
                assert_eq!(d, l, "pair {s:?}->{t:?}");
                if let Some((cost, delay)) = l {
                    if (cost - delay).abs() > 1e-9 {
                        saw_divergence = true;
                    }
                }
            }
        }
        assert!(saw_divergence, "latencies should decouple delay from cost");
    }

    #[test]
    fn telemetry_counts_hits_misses_and_rows() {
        let g = sample();
        let lazy = LazyDistances::new(&g);
        assert_eq!(lazy.rows_materialized(), 0);
        assert_eq!(lazy.kind(), ProviderKind::Lazy);
        lazy.distance(NodeId(0), NodeId(3));
        assert_eq!((lazy.row_hits(), lazy.row_misses()), (0, 1));
        lazy.distance(NodeId(0), NodeId(4));
        assert_eq!((lazy.row_hits(), lazy.row_misses()), (1, 1));
        assert_eq!(lazy.rows_materialized(), 1);
    }

    #[test]
    fn invalidate_source_drops_one_row_and_recomputes() {
        let g = sample();
        let lazy = LazyDistances::new(&g);
        lazy.distance(NodeId(0), NodeId(3));
        lazy.distance(NodeId(1), NodeId(3));
        assert_eq!(lazy.rows_materialized(), 2);
        lazy.invalidate_source(NodeId(0));
        assert_eq!(lazy.rows_materialized(), 1);
        // Idempotent on an absent row.
        lazy.invalidate_source(NodeId(0));
        assert_eq!(lazy.rows_materialized(), 1);
        assert_eq!(lazy.distance(NodeId(0), NodeId(3)), Some(17.0));
        assert_eq!(lazy.rows_materialized(), 2);
        assert_eq!(lazy.peak_rows(), 2);
    }

    #[test]
    fn aggregates_match_dense_and_skip_unreachable_pairs() {
        // Two components: the disconnected-graph contract (satellite) —
        // unreachable pairs are skipped by the average and the diameter.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 3.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        let dense = g.all_pairs_shortest_paths().unwrap();
        let lazy = LazyDistances::new(&g);
        assert!((DistanceMatrix::average_distance(&dense) - 3.5).abs() < 1e-12);
        assert!((lazy.average_distance() - 3.5).abs() < 1e-12);
        assert!((DistanceMatrix::diameter(&dense) - 4.0).abs() < 1e-12);
        assert!((lazy.diameter() - 4.0).abs() < 1e-12);
        // Aggregates stream: nothing stays resident, counters untouched.
        assert_eq!(lazy.rows_materialized(), 0);
        assert_eq!((lazy.row_hits(), lazy.row_misses()), (0, 0));
    }

    #[test]
    fn empty_and_singleton_aggregates_are_zero() {
        let lazy = LazyDistances::new(&Graph::new(0));
        assert_eq!(lazy.average_distance(), 0.0);
        let one = LazyDistances::new(&Graph::new(1));
        assert_eq!(one.average_distance(), 0.0);
        assert_eq!(one.diameter(), 0.0);
        assert_eq!(one.distance(NodeId(0), NodeId(0)), Some(0.0));
        assert_eq!(one.path(NodeId(0), NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn a_tripped_token_interrupts_row_computation() {
        let g = sample();
        let lazy = LazyDistances::new(&g);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            lazy.try_distance(NodeId(0), NodeId(3), Some(&token)),
            Err(Cancelled)
        );
        // The failed row was not cached; a live query still works.
        assert_eq!(lazy.rows_materialized(), 0);
        assert_eq!(lazy.distance(NodeId(0), NodeId(3)), Some(17.0));
    }

    #[test]
    fn auto_dispatch_picks_dense_small_and_lazy_large() {
        let g = sample();
        let p = provider_for(&g, DistanceMode::Auto).unwrap();
        assert_eq!(p.kind(), ProviderKind::Dense);
        let forced = provider_for(&g, DistanceMode::Lazy).unwrap();
        assert_eq!(forced.kind(), ProviderKind::Lazy);
        let big = Graph::new(LAZY_THRESHOLD + 1);
        let p = provider_for(&big, DistanceMode::Auto).unwrap();
        assert_eq!(p.kind(), ProviderKind::Lazy);
        let p = provider_for(&big, DistanceMode::Dense).unwrap();
        assert_eq!(p.kind(), ProviderKind::Dense);
        assert!("fancy".parse::<DistanceMode>().is_err());
        assert_eq!("lazy".parse::<DistanceMode>(), Ok(DistanceMode::Lazy));
    }

    #[test]
    fn out_of_bounds_nodes_panic_like_the_matrix() {
        let lazy = LazyDistances::new(&sample());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lazy.distance(NodeId(0), NodeId(99))
        }));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lazy.distance(NodeId(99), NodeId(0))
        }));
        assert!(r.is_err());
    }
}
