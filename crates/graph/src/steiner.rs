//! Steiner-tree constructions.
//!
//! Stage 1 of the paper's two-stage algorithm "builds a Steiner tree to
//! cover [the last VNF node] and all destinations" (Algorithm 2, line 6) and
//! charges O(|D|·|V|²) for it, citing Kou–Markowsky–Berman (KMB, 1981). This
//! module implements:
//!
//! * [`Graph::steiner_kmb`] — the KMB `2·(1 − 1/|T|)`-approximation;
//! * [`Graph::steiner_takahashi`] — the Takahashi–Matsuyama path heuristic,
//!   used as an ablation of the paper's design choice;
//! * [`Graph::steiner_exact`] — exponential brute force over Steiner-node
//!   subsets, the test oracle for approximation-ratio assertions.

use crate::cancel::CancelToken;
use crate::provider::DistanceProvider;
use crate::union_find::UnionFind;
use crate::{EdgeId, Graph, GraphError, NodeId};
use std::collections::BTreeSet;

/// A Steiner tree: edges of the host graph spanning all requested terminals.
#[derive(Clone, Debug, PartialEq)]
pub struct SteinerTree {
    /// Edges of the tree (no particular order).
    pub edges: Vec<EdgeId>,
    /// Total edge weight.
    pub cost: f64,
}

impl SteinerTree {
    /// The set of nodes touched by the tree's edges.
    pub fn node_set(&self, g: &Graph) -> BTreeSet<NodeId> {
        let mut s = BTreeSet::new();
        for id in &self.edges {
            let e = g.edge(*id);
            s.insert(e.u);
            s.insert(e.v);
        }
        s
    }

    /// Whether the edge set forms a tree (acyclic and connected over the
    /// touched nodes) that contains every terminal. A tree with no edges is
    /// valid only when at most one terminal is requested.
    pub fn is_valid(&self, g: &Graph, terminals: &[NodeId]) -> bool {
        let terms: BTreeSet<NodeId> = terminals.iter().copied().collect();
        if self.edges.is_empty() {
            return terms.len() <= 1;
        }
        let nodes = self.node_set(g);
        if !terms.iter().all(|t| nodes.contains(t)) {
            return false;
        }
        // Acyclic: every edge must join two distinct components.
        let mut uf = UnionFind::new(g.node_count());
        for id in &self.edges {
            let e = g.edge(*id);
            if !uf.union(e.u.0, e.v.0) {
                return false;
            }
        }
        // Connected over touched nodes: nodes - edges == 1 component.
        nodes.len() == self.edges.len() + 1
    }
}

impl Graph {
    /// Kou–Markowsky–Berman Steiner tree over `terminals`.
    ///
    /// Steps: (1) metric closure over the terminals via one Dijkstra per
    /// terminal; (2) MST of the closure; (3) expansion of MST edges into
    /// shortest paths; (4) MST of the expanded subgraph; (5) pruning of
    /// non-terminal leaves. Guarantees cost ≤ 2·(1 − 1/|T|)·OPT.
    ///
    /// ```
    /// use sft_graph::{Graph, NodeId};
    /// # fn main() -> Result<(), sft_graph::GraphError> {
    /// // A star: connecting the three leaves through the hub (node 3)
    /// // beats any pair of direct leaf-to-leaf shortcuts.
    /// let mut g = Graph::new(4);
    /// for leaf in 0..3 {
    ///     g.add_edge(NodeId(leaf), NodeId(3), 1.0)?;
    /// }
    /// let tree = g.steiner_kmb(&[NodeId(0), NodeId(1), NodeId(2)])?;
    /// assert_eq!(tree.cost, 3.0); // uses the non-terminal hub
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptySelection`] if `terminals` is empty.
    /// * [`GraphError::NodeOutOfBounds`] for invalid terminals.
    /// * [`GraphError::Disconnected`] if the terminals do not share a
    ///   connected component.
    pub fn steiner_kmb(&self, terminals: &[NodeId]) -> Result<SteinerTree, GraphError> {
        let terms = self.check_terminals(terminals)?;
        if terms.len() <= 1 {
            return Ok(SteinerTree {
                edges: Vec::new(),
                cost: 0.0,
            });
        }

        // (1) Dijkstra from each terminal.
        let searches: Vec<_> = terms.iter().map(|&t| self.dijkstra(t)).collect();

        // (2) MST of the metric closure (Prim over the dense closure).
        let k = terms.len();
        let mut in_tree = vec![false; k];
        let mut best = vec![(f64::INFINITY, 0_usize); k]; // (dist, closure parent)
        in_tree[0] = true;
        for j in 1..k {
            let d = searches[0]
                .distance(terms[j])
                .ok_or(GraphError::Disconnected)?;
            best[j] = (d, 0);
        }
        let mut closure_edges: Vec<(usize, usize)> = Vec::with_capacity(k - 1);
        for _ in 1..k {
            let (j, _) = best
                .iter()
                .enumerate()
                .filter(|(j, _)| !in_tree[*j])
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .expect("at least one node outside the closure tree");
            if !best[j].0.is_finite() {
                return Err(GraphError::Disconnected);
            }
            in_tree[j] = true;
            closure_edges.push((best[j].1, j));
            for m in 0..k {
                if !in_tree[m] {
                    let d = searches[j]
                        .distance(terms[m])
                        .ok_or(GraphError::Disconnected)?;
                    if d < best[m].0 {
                        best[m] = (d, j);
                    }
                }
            }
        }

        // (3) Expand closure edges into shortest paths; collect edge set.
        let mut chosen: BTreeSet<EdgeId> = BTreeSet::new();
        for (a, b) in closure_edges {
            let path = searches[a]
                .path_to(terms[b])
                .ok_or(GraphError::Disconnected)?;
            for id in self.path_edges(&path)? {
                chosen.insert(id);
            }
        }

        // (4) MST of the expanded subgraph (Kruskal restricted to chosen).
        let mut order: Vec<EdgeId> = chosen.into_iter().collect();
        order.sort_by(|a, b| self.weight(*a).total_cmp(&self.weight(*b)));
        let mut uf = UnionFind::new(self.node_count());
        let mut tree_edges = Vec::new();
        for id in order {
            let e = self.edge(id);
            if uf.union(e.u.0, e.v.0) {
                tree_edges.push(id);
            }
        }

        // (5) Prune non-terminal leaves until fixpoint.
        let term_set: BTreeSet<NodeId> = terms.iter().copied().collect();
        prune_non_terminal_leaves(self, &mut tree_edges, &term_set);

        let cost = tree_edges.iter().map(|&e| self.weight(e)).sum();
        Ok(SteinerTree {
            edges: tree_edges,
            cost,
        })
    }

    /// KMB Steiner tree using a pre-computed all-pairs distance matrix for
    /// the metric closure and path expansion, instead of per-terminal
    /// Dijkstra runs. Equivalent to [`Graph::steiner_kmb_with_provider`]
    /// with no cancellation token.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::steiner_kmb`]. The matrix must belong to
    /// this graph (same node count), otherwise
    /// [`GraphError::NodeOutOfBounds`] is returned.
    pub fn steiner_kmb_with_matrix(
        &self,
        dist: &crate::DistanceMatrix,
        terminals: &[NodeId],
    ) -> Result<SteinerTree, GraphError> {
        self.steiner_kmb_with_provider(dist, terminals, None)
    }

    /// KMB Steiner tree over any [`DistanceProvider`] — the dense matrix
    /// or the lazy CSR provider — with an optional cancellation token
    /// polled inside any on-demand row computation. Produces the same
    /// approximation guarantee as [`Graph::steiner_kmb`]; much faster when
    /// many trees are built over the same graph (the paper's stage 1
    /// builds one per candidate last-VNF node).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::steiner_kmb`], plus
    /// [`GraphError::Cancelled`] when `cancel` trips mid-construction. The
    /// provider must belong to this graph (same node count), otherwise
    /// [`GraphError::NodeOutOfBounds`] is returned.
    pub fn steiner_kmb_with_provider<D: DistanceProvider + ?Sized>(
        &self,
        dist: &D,
        terminals: &[NodeId],
        cancel: Option<&CancelToken>,
    ) -> Result<SteinerTree, GraphError> {
        if dist.node_count() != self.node_count() {
            return Err(GraphError::NodeOutOfBounds {
                node: dist.node_count(),
                len: self.node_count(),
            });
        }
        let terms = self.check_terminals(terminals)?;
        if terms.len() <= 1 {
            return Ok(SteinerTree {
                edges: Vec::new(),
                cost: 0.0,
            });
        }

        // MST of the metric closure (Prim over the dense closure).
        let k = terms.len();
        let mut in_tree = vec![false; k];
        let mut best = vec![(f64::INFINITY, 0_usize); k];
        in_tree[0] = true;
        for j in 1..k {
            let d = dist
                .try_distance(terms[0], terms[j], cancel)?
                .ok_or(GraphError::Disconnected)?;
            best[j] = (d, 0);
        }
        let mut closure_edges: Vec<(usize, usize)> = Vec::with_capacity(k - 1);
        for _ in 1..k {
            let (j, _) = best
                .iter()
                .enumerate()
                .filter(|(j, _)| !in_tree[*j])
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .expect("at least one node outside the closure tree");
            if !best[j].0.is_finite() {
                return Err(GraphError::Disconnected);
            }
            in_tree[j] = true;
            closure_edges.push((best[j].1, j));
            for m in 0..k {
                if !in_tree[m] {
                    let d = dist
                        .try_distance(terms[j], terms[m], cancel)?
                        .ok_or(GraphError::Disconnected)?;
                    if d < best[m].0 {
                        best[m] = (d, j);
                    }
                }
            }
        }

        // Expand closure edges into shortest paths from the provider.
        let mut chosen: BTreeSet<EdgeId> = BTreeSet::new();
        for (a, b) in closure_edges {
            let path = dist
                .try_path(terms[a], terms[b], cancel)?
                .ok_or(GraphError::Disconnected)?;
            for id in self.path_edges(&path)? {
                chosen.insert(id);
            }
        }

        // MST of the expansion, then prune.
        let mut order: Vec<EdgeId> = chosen.into_iter().collect();
        order.sort_by(|a, b| self.weight(*a).total_cmp(&self.weight(*b)));
        let mut uf = UnionFind::new(self.node_count());
        let mut tree_edges = Vec::new();
        for id in order {
            let e = self.edge(id);
            if uf.union(e.u.0, e.v.0) {
                tree_edges.push(id);
            }
        }
        let term_set: BTreeSet<NodeId> = terms.iter().copied().collect();
        prune_non_terminal_leaves(self, &mut tree_edges, &term_set);
        let cost = tree_edges.iter().map(|&e| self.weight(e)).sum();
        Ok(SteinerTree {
            edges: tree_edges,
            cost,
        })
    }

    /// Takahashi–Matsuyama Steiner heuristic: grow a tree from the first
    /// terminal, repeatedly attaching the terminal nearest to the current
    /// tree along a shortest path. Same 2-approximation class as KMB; kept
    /// as an ablation of the paper's stage-1 design choice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::steiner_kmb`].
    pub fn steiner_takahashi(&self, terminals: &[NodeId]) -> Result<SteinerTree, GraphError> {
        let terms = self.check_terminals(terminals)?;
        if terms.len() <= 1 {
            return Ok(SteinerTree {
                edges: Vec::new(),
                cost: 0.0,
            });
        }
        let mut tree_nodes: BTreeSet<NodeId> = BTreeSet::new();
        tree_nodes.insert(terms[0]);
        let mut tree_edges: BTreeSet<EdgeId> = BTreeSet::new();
        let mut remaining: BTreeSet<NodeId> = terms[1..].iter().copied().collect();
        remaining.remove(&terms[0]);

        while !remaining.is_empty() {
            // Multi-source Dijkstra from the current tree.
            let sp = crate::dijkstra::dijkstra_core(
                self.node_count() + 1,
                NodeId(self.node_count()),
                None,
                |u, visit| {
                    if u.0 == self.node_count() {
                        // Virtual super-source connected to the tree free.
                        for &t in &tree_nodes {
                            visit(t, 0.0);
                        }
                    } else {
                        for (v, e) in self.neighbors(u) {
                            visit(v, self.weight(e));
                        }
                    }
                },
            );
            let (&next, _) = remaining
                .iter()
                .filter_map(|t| sp.distance(*t).map(|d| (t, d)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .ok_or(GraphError::Disconnected)?;
            let mut path = sp.path_to(next).ok_or(GraphError::Disconnected)?;
            path.remove(0); // drop the virtual super-source
            for id in self.path_edges(&path)? {
                tree_edges.insert(id);
            }
            for n in path {
                tree_nodes.insert(n);
                remaining.remove(&n);
            }
        }

        // The union of shortest paths may contain cycles; extract an MST and
        // prune, as in KMB steps 4-5.
        let mut order: Vec<EdgeId> = tree_edges.into_iter().collect();
        order.sort_by(|a, b| self.weight(*a).total_cmp(&self.weight(*b)));
        let mut uf = UnionFind::new(self.node_count());
        let mut edges = Vec::new();
        for id in order {
            let e = self.edge(id);
            if uf.union(e.u.0, e.v.0) {
                edges.push(id);
            }
        }
        let term_set: BTreeSet<NodeId> = terms.iter().copied().collect();
        prune_non_terminal_leaves(self, &mut edges, &term_set);
        let cost = edges.iter().map(|&e| self.weight(e)).sum();
        Ok(SteinerTree { edges, cost })
    }

    /// Exact minimum Steiner tree by brute force over subsets of candidate
    /// Steiner nodes. A test oracle only: exponential in
    /// `node_count() - terminals.len()`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::steiner_kmb`], plus
    /// [`GraphError::EmptySelection`] if more than 25 non-terminal nodes
    /// would make the enumeration intractable.
    pub fn steiner_exact(&self, terminals: &[NodeId]) -> Result<SteinerTree, GraphError> {
        let terms = self.check_terminals(terminals)?;
        if terms.len() <= 1 {
            return Ok(SteinerTree {
                edges: Vec::new(),
                cost: 0.0,
            });
        }
        let term_set: BTreeSet<NodeId> = terms.iter().copied().collect();
        let optional: Vec<NodeId> = self.nodes().filter(|n| !term_set.contains(n)).collect();
        if optional.len() > 25 {
            return Err(GraphError::EmptySelection);
        }
        let mut best: Option<SteinerTree> = None;
        for mask in 0_u64..(1 << optional.len()) {
            let mut allowed = vec![false; self.node_count()];
            for &t in &terms {
                allowed[t.0] = true;
            }
            for (i, n) in optional.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    allowed[n.0] = true;
                }
            }
            if let Some(tree) = self.mst_over_allowed(&allowed, &terms) {
                if best.as_ref().is_none_or(|b| tree.cost < b.cost) {
                    best = Some(tree);
                }
            }
        }
        let mut tree = best.ok_or(GraphError::Disconnected)?;
        // An optimal solution never keeps a non-terminal leaf, but MSTs over
        // supersets may; prune for canonical output.
        prune_non_terminal_leaves(self, &mut tree.edges, &term_set);
        tree.cost = tree.edges.iter().map(|&e| self.weight(e)).sum();
        Ok(tree)
    }

    /// Kruskal over the subgraph induced by `allowed`, returning a tree only
    /// if it connects all terminals into one component.
    fn mst_over_allowed(&self, allowed: &[bool], terms: &[NodeId]) -> Option<SteinerTree> {
        let mut order: Vec<EdgeId> = self
            .edge_ids()
            .filter(|&id| {
                let e = self.edge(id);
                allowed[e.u.0] && allowed[e.v.0]
            })
            .collect();
        order.sort_by(|a, b| self.weight(*a).total_cmp(&self.weight(*b)));
        let mut uf = UnionFind::new(self.node_count());
        let mut edges = Vec::new();
        let mut cost = 0.0;
        for id in order {
            let e = self.edge(id);
            if uf.union(e.u.0, e.v.0) {
                edges.push(id);
                cost += e.weight;
            }
        }
        let root = uf.find(terms[0].0);
        // All allowed nodes must be in the terminals' component, otherwise
        // the MST forest includes junk trees whose weight is not comparable.
        for (i, &a) in allowed.iter().enumerate() {
            if a && uf.find(i) != root {
                return None;
            }
        }
        Some(SteinerTree { edges, cost })
    }

    fn check_terminals(&self, terminals: &[NodeId]) -> Result<Vec<NodeId>, GraphError> {
        if terminals.is_empty() {
            return Err(GraphError::EmptySelection);
        }
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for &t in terminals {
            if t.0 >= self.node_count() {
                return Err(GraphError::NodeOutOfBounds {
                    node: t.0,
                    len: self.node_count(),
                });
            }
            if seen.insert(t) {
                out.push(t);
            }
        }
        Ok(out)
    }
}

/// Repeatedly removes edges whose endpoint is a non-terminal leaf.
fn prune_non_terminal_leaves(g: &Graph, edges: &mut Vec<EdgeId>, terminals: &BTreeSet<NodeId>) {
    loop {
        let mut degree = vec![0_usize; g.node_count()];
        for &id in edges.iter() {
            let e = g.edge(id);
            degree[e.u.0] += 1;
            degree[e.v.0] += 1;
        }
        let before = edges.len();
        edges.retain(|&id| {
            let e = g.edge(id);
            let u_leaf = degree[e.u.0] == 1 && !terminals.contains(&e.u);
            let v_leaf = degree[e.v.0] == 1 && !terminals.contains(&e.v);
            !(u_leaf || v_leaf)
        });
        if edges.len() == before {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic KMB counterexample shape: a hub whose spokes beat the
    /// terminal-to-terminal shortcuts.
    fn star_with_shortcuts() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new(4);
        // Node 3 is the hub; 0,1,2 are terminals.
        g.add_edge(NodeId(0), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 1.9).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.9).unwrap();
        (g, vec![NodeId(0), NodeId(1), NodeId(2)])
    }

    #[test]
    fn kmb_uses_steiner_node_when_beneficial() {
        let (g, terms) = star_with_shortcuts();
        let t = g.steiner_kmb(&terms).unwrap();
        assert!(t.is_valid(&g, &terms));
        // Optimal is the star through the hub: cost 3.0. KMB may return the
        // 3.8 shortcut tree (its approximation gap) but never exceeds 2x OPT.
        let opt = g.steiner_exact(&terms).unwrap();
        assert!((opt.cost - 3.0).abs() < 1e-12);
        assert!(t.cost <= 2.0 * opt.cost + 1e-12);
    }

    #[test]
    fn exact_beats_or_ties_heuristics_on_grid() {
        let g = grid(3, 3, |i| 1.0 + (i as f64) * 0.1);
        let terms = vec![NodeId(0), NodeId(2), NodeId(6), NodeId(8)];
        let opt = g.steiner_exact(&terms).unwrap();
        let kmb = g.steiner_kmb(&terms).unwrap();
        let tm = g.steiner_takahashi(&terms).unwrap();
        assert!(opt.is_valid(&g, &terms));
        assert!(kmb.is_valid(&g, &terms));
        assert!(tm.is_valid(&g, &terms));
        assert!(opt.cost <= kmb.cost + 1e-12);
        assert!(opt.cost <= tm.cost + 1e-12);
        assert!(kmb.cost <= 2.0 * opt.cost + 1e-12);
        assert!(tm.cost <= 2.0 * opt.cost + 1e-12);
    }

    /// Builds an r x c grid graph with weights from `w(edge_index)`.
    fn grid(r: usize, c: usize, w: impl Fn(usize) -> f64) -> Graph {
        let mut g = Graph::new(r * c);
        let mut i = 0;
        for y in 0..r {
            for x in 0..c {
                let n = y * c + x;
                if x + 1 < c {
                    g.add_edge(NodeId(n), NodeId(n + 1), w(i)).unwrap();
                    i += 1;
                }
                if y + 1 < r {
                    g.add_edge(NodeId(n), NodeId(n + c), w(i)).unwrap();
                    i += 1;
                }
            }
        }
        g
    }

    #[test]
    fn two_terminals_reduce_to_shortest_path() {
        let g = grid(3, 3, |_| 1.0);
        let terms = vec![NodeId(0), NodeId(8)];
        let t = g.steiner_kmb(&terms).unwrap();
        assert!((t.cost - 4.0).abs() < 1e-12);
        assert_eq!(t.edges.len(), 4);
        let sp = g.dijkstra(NodeId(0));
        assert_eq!(t.cost, sp.distance(NodeId(8)).unwrap());
    }

    #[test]
    fn single_terminal_yields_empty_tree() {
        let (g, _) = star_with_shortcuts();
        for f in [
            Graph::steiner_kmb,
            Graph::steiner_takahashi,
            Graph::steiner_exact,
        ] {
            let t = f(&g, &[NodeId(2)]).unwrap();
            assert!(t.edges.is_empty());
            assert_eq!(t.cost, 0.0);
            assert!(t.is_valid(&g, &[NodeId(2)]));
        }
    }

    #[test]
    fn duplicate_terminals_are_deduplicated() {
        let (g, _) = star_with_shortcuts();
        let t = g
            .steiner_kmb(&[NodeId(0), NodeId(0), NodeId(1), NodeId(1)])
            .unwrap();
        let direct = g.steiner_kmb(&[NodeId(0), NodeId(1)]).unwrap();
        assert!((t.cost - direct.cost).abs() < 1e-12);
    }

    #[test]
    fn errors_on_empty_invalid_or_disconnected_terminals() {
        let (g, _) = star_with_shortcuts();
        assert_eq!(g.steiner_kmb(&[]), Err(GraphError::EmptySelection));
        assert!(matches!(
            g.steiner_kmb(&[NodeId(42)]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        let mut h = Graph::new(4);
        h.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        h.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        assert_eq!(
            h.steiner_kmb(&[NodeId(0), NodeId(3)]),
            Err(GraphError::Disconnected)
        );
        assert_eq!(
            h.steiner_takahashi(&[NodeId(0), NodeId(3)]),
            Err(GraphError::Disconnected)
        );
        assert_eq!(
            h.steiner_exact(&[NodeId(0), NodeId(3)]),
            Err(GraphError::Disconnected)
        );
    }

    #[test]
    fn all_terminals_reduces_to_mst() {
        let g = grid(2, 3, |i| (i + 1) as f64);
        let terms: Vec<NodeId> = g.nodes().collect();
        let t = g.steiner_kmb(&terms).unwrap();
        let mst = g.minimum_spanning_tree().unwrap();
        assert!((t.cost - mst.weight).abs() < 1e-12);
    }

    #[test]
    fn pruning_removes_dangling_non_terminals() {
        // Path 0-1-2 plus a dangling spur 1-3; terminals 0 and 2.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        let terms = vec![NodeId(0), NodeId(2)];
        for f in [
            Graph::steiner_kmb,
            Graph::steiner_takahashi,
            Graph::steiner_exact,
        ] {
            let t = f(&g, &terms).unwrap();
            assert!(!t.node_set(&g).contains(&NodeId(3)), "spur not pruned");
            assert!((t.cost - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_kmb_matches_dijkstra_kmb() {
        let g = grid(4, 4, |i| 1.0 + ((i * 7) % 5) as f64 * 0.3);
        let dist = g.all_pairs_shortest_paths().unwrap();
        for terms in [
            vec![NodeId(0), NodeId(15)],
            vec![NodeId(0), NodeId(3), NodeId(12), NodeId(15)],
            vec![NodeId(5), NodeId(6), NodeId(9), NodeId(10), NodeId(0)],
        ] {
            let a = g.steiner_kmb(&terms).unwrap();
            let b = g.steiner_kmb_with_matrix(&dist, &terms).unwrap();
            assert!(b.is_valid(&g, &terms));
            // Tie-breaking may differ; both must be within the KMB bound
            // of each other and of the optimum.
            let opt = g.steiner_exact(&terms).unwrap();
            assert!(a.cost <= 2.0 * opt.cost + 1e-9);
            assert!(b.cost <= 2.0 * opt.cost + 1e-9);
        }
    }

    #[test]
    fn provider_kmb_is_bit_identical_across_dense_and_lazy() {
        let g = grid(4, 4, |i| 1.0 + ((i * 7) % 5) as f64 * 0.3);
        // The sparse-built matrix and the lazy provider share the same
        // per-source Dijkstra, so the trees must match exactly — edge ids
        // and cost bits, not just within tolerance.
        let dense = g.all_pairs_shortest_paths_sparse().unwrap();
        let lazy = crate::LazyDistances::new(&g);
        for terms in [
            vec![NodeId(0), NodeId(15)],
            vec![NodeId(0), NodeId(3), NodeId(12), NodeId(15)],
            vec![NodeId(5), NodeId(6), NodeId(9), NodeId(10), NodeId(0)],
        ] {
            let a = g.steiner_kmb_with_provider(&dense, &terms, None).unwrap();
            let b = g.steiner_kmb_with_provider(&lazy, &terms, None).unwrap();
            assert_eq!(a, b, "terminals {terms:?}");
        }
    }

    #[test]
    fn provider_kmb_propagates_cancellation() {
        let g = grid(4, 4, |_| 1.0);
        let lazy = crate::LazyDistances::new(&g);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            g.steiner_kmb_with_provider(&lazy, &[NodeId(0), NodeId(15)], Some(&token)),
            Err(GraphError::Cancelled)
        );
        // The dense matrix has nothing to cancel: it still answers.
        let dense = g.all_pairs_shortest_paths_sparse().unwrap();
        assert!(g
            .steiner_kmb_with_provider(&dense, &[NodeId(0), NodeId(15)], Some(&token))
            .is_ok());
    }

    #[test]
    fn matrix_kmb_rejects_foreign_matrix() {
        let g = grid(2, 2, |_| 1.0);
        let other = grid(3, 3, |_| 1.0).all_pairs_shortest_paths().unwrap();
        assert!(matches!(
            g.steiner_kmb_with_matrix(&other, &[NodeId(0), NodeId(3)]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn takahashi_matches_exact_on_star() {
        let (g, terms) = star_with_shortcuts();
        let tm = g.steiner_takahashi(&terms).unwrap();
        assert!(tm.is_valid(&g, &terms));
        assert!(tm.cost <= 2.0 * 3.0 + 1e-12);
    }

    #[test]
    fn is_valid_rejects_cyclic_or_non_spanning_edge_sets() {
        let (g, terms) = star_with_shortcuts();
        // Cycle 0-3, 1-3, 0-1.
        let cyc = SteinerTree {
            edges: vec![
                g.find_edge(NodeId(0), NodeId(3)).unwrap(),
                g.find_edge(NodeId(1), NodeId(3)).unwrap(),
                g.find_edge(NodeId(0), NodeId(1)).unwrap(),
            ],
            cost: 0.0,
        };
        assert!(!cyc.is_valid(&g, &terms));
        // Missing terminal 2.
        let partial = SteinerTree {
            edges: vec![g.find_edge(NodeId(0), NodeId(1)).unwrap()],
            cost: 0.0,
        };
        assert!(!partial.is_valid(&g, &terms));
    }
}
