//! Rooted views of trees embedded in a graph.
//!
//! Stage 2 of the paper's algorithm (OPA) decomposes the stage-1 Steiner
//! tree, rooted at the last-VNF node, into root-to-leaf paths, and then
//! classifies them as *dependent* or *independent* of the embedded chain.
//! [`RootedTree`] provides exactly the traversals that decomposition needs.

use crate::{EdgeId, Graph, GraphError, NodeId};
use std::collections::BTreeMap;

/// A tree given by a subset of a host graph's edges, rooted at a chosen
/// node. Construction validates treeness (acyclic, connected, containing
/// the root).
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    /// parent[n] = (parent node, connecting edge); absent for the root and
    /// for nodes outside the tree.
    parent: BTreeMap<NodeId, (NodeId, EdgeId)>,
    children: BTreeMap<NodeId, Vec<NodeId>>,
    /// Depth-first preorder of the tree's nodes, starting at the root.
    preorder: Vec<NodeId>,
}

impl RootedTree {
    /// Builds a rooted view of the tree formed by `edges` within `g`.
    ///
    /// A tree with no edges is valid and consists of the root alone.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if the root is invalid.
    /// * [`GraphError::Disconnected`] if the edges do not form a single tree
    ///   containing the root (cycles, forests, or a detached root).
    pub fn from_edges(g: &Graph, root: NodeId, edges: &[EdgeId]) -> Result<Self, GraphError> {
        if root.0 >= g.node_count() {
            return Err(GraphError::NodeOutOfBounds {
                node: root.0,
                len: g.node_count(),
            });
        }
        // Adjacency restricted to the chosen edges.
        let mut adj: BTreeMap<NodeId, Vec<(NodeId, EdgeId)>> = BTreeMap::new();
        for &id in edges {
            let e = g.edge(id);
            adj.entry(e.u).or_default().push((e.v, id));
            adj.entry(e.v).or_default().push((e.u, id));
        }
        if !edges.is_empty() && !adj.contains_key(&root) {
            return Err(GraphError::Disconnected);
        }
        let mut parent = BTreeMap::new();
        let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut preorder = vec![root];
        let mut stack = vec![root];
        let mut visited = BTreeMap::new();
        visited.insert(root, ());
        while let Some(u) = stack.pop() {
            if let Some(ns) = adj.get(&u) {
                for &(v, id) in ns {
                    if parent.get(&u).map(|&(_, pe)| pe) == Some(id) {
                        continue;
                    }
                    if visited.insert(v, ()).is_some() {
                        // Reaching an already-visited node means a cycle.
                        return Err(GraphError::Disconnected);
                    }
                    parent.insert(v, (u, id));
                    children.entry(u).or_default().push(v);
                    preorder.push(v);
                    stack.push(v);
                }
            }
        }
        if visited.len() != edges.len() + 1 {
            // Some edges were never reached: forest or detached component.
            return Err(GraphError::Disconnected);
        }
        Ok(RootedTree {
            root,
            parent,
            children,
            preorder,
        })
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree (≥ 1; the root counts).
    pub fn node_count(&self) -> usize {
        self.preorder.len()
    }

    /// Whether `n` belongs to the tree.
    pub fn contains(&self, n: NodeId) -> bool {
        n == self.root || self.parent.contains_key(&n)
    }

    /// Parent of `n` and the edge to it, or `None` for the root / outside
    /// nodes.
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent.get(&n).copied()
    }

    /// Children of `n`, in discovery order (empty for leaves and outside
    /// nodes).
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        self.children.get(&n).map_or(&[], Vec::as_slice)
    }

    /// Depth-first preorder over the tree's nodes, starting at the root.
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.preorder.iter().copied()
    }

    /// The tree's leaves (nodes without children), in preorder. The root is
    /// a leaf only in the single-node tree.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.preorder
            .iter()
            .copied()
            .filter(|n| self.children(*n).is_empty())
            .collect()
    }

    /// The node path from the root down to `n` (both inclusive), or `None`
    /// if `n` is outside the tree.
    pub fn path_from_root(&self, n: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(n) {
            return None;
        }
        let mut path = vec![n];
        let mut cur = n;
        while let Some((p, _)) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// The edges on the path from the root down to `n`, or `None` if `n` is
    /// outside the tree.
    pub fn path_edges_from_root(&self, n: NodeId) -> Option<Vec<EdgeId>> {
        if !self.contains(n) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = n;
        while let Some((p, e)) = self.parent(cur) {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    /// Decomposes the tree into root-to-leaf node paths, one per leaf, in
    /// preorder of the leaves. For the single-node tree this is one
    /// singleton path.
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<NodeId>> {
        self.leaves()
            .into_iter()
            .map(|l| self.path_from_root(l).expect("leaf is in tree"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small tree:
    /// ```text
    ///        0 (root)
    ///       / \
    ///      1   2
    ///     / \    \
    ///    3   4    5
    /// ```
    fn sample() -> (Graph, Vec<EdgeId>) {
        let mut g = Graph::new(6);
        let e01 = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let e02 = g.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let e13 = g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        let e14 = g.add_edge(NodeId(1), NodeId(4), 1.0).unwrap();
        let e25 = g.add_edge(NodeId(2), NodeId(5), 1.0).unwrap();
        // An extra graph edge NOT in the tree.
        g.add_edge(NodeId(4), NodeId(5), 1.0).unwrap();
        (g, vec![e01, e02, e13, e14, e25])
    }

    #[test]
    fn builds_and_reports_structure() {
        let (g, edges) = sample();
        let t = RootedTree::from_edges(&g, NodeId(0), &edges).unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.node_count(), 6);
        assert!(t.contains(NodeId(5)));
        assert_eq!(t.parent(NodeId(5)).unwrap().0, NodeId(2));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.children(NodeId(1)).len(), 2);
    }

    #[test]
    fn leaves_and_paths() {
        let (g, edges) = sample();
        let t = RootedTree::from_edges(&g, NodeId(0), &edges).unwrap();
        let mut leaves = t.leaves();
        leaves.sort();
        assert_eq!(leaves, vec![NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(
            t.path_from_root(NodeId(4)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(4)]
        );
        assert_eq!(t.path_edges_from_root(NodeId(4)).unwrap().len(), 2);
        let paths = t.root_to_leaf_paths();
        assert_eq!(paths.len(), 3);
        for p in paths {
            assert_eq!(p[0], NodeId(0));
        }
    }

    #[test]
    fn rerooting_changes_orientation() {
        let (g, edges) = sample();
        let t = RootedTree::from_edges(&g, NodeId(3), &edges).unwrap();
        assert_eq!(t.parent(NodeId(1)).unwrap().0, NodeId(3));
        assert_eq!(t.parent(NodeId(0)).unwrap().0, NodeId(1));
        let mut leaves = t.leaves();
        leaves.sort();
        assert_eq!(leaves, vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn empty_tree_is_the_root_alone() {
        let (g, _) = sample();
        let t = RootedTree::from_edges(&g, NodeId(2), &[]).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaves(), vec![NodeId(2)]);
        assert_eq!(t.root_to_leaf_paths(), vec![vec![NodeId(2)]]);
        assert!(!t.contains(NodeId(0)));
        assert_eq!(t.path_from_root(NodeId(0)), None);
    }

    #[test]
    fn rejects_cycles_forests_and_detached_roots() {
        let (g, edges) = sample();
        // Cycle: add the 4-5 edge to the tree edge set.
        let cyc_edge = g.find_edge(NodeId(4), NodeId(5)).unwrap();
        let mut cyc = edges.clone();
        cyc.push(cyc_edge);
        assert!(matches!(
            RootedTree::from_edges(&g, NodeId(0), &cyc),
            Err(GraphError::Disconnected)
        ));
        // Forest: drop the 0-2 edge so 2-5 floats.
        let forest: Vec<EdgeId> = edges
            .iter()
            .copied()
            .filter(|&e| e != g.find_edge(NodeId(0), NodeId(2)).unwrap())
            .collect();
        assert!(matches!(
            RootedTree::from_edges(&g, NodeId(0), &forest),
            Err(GraphError::Disconnected)
        ));
        // Detached root.
        assert!(matches!(
            RootedTree::from_edges(&g, NodeId(5), &edges[..1]),
            Err(GraphError::Disconnected)
        ));
        // Invalid root.
        assert!(matches!(
            RootedTree::from_edges(&g, NodeId(77), &edges),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }
}
