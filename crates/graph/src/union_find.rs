//! Disjoint-set union (union-find) with path halving and union by rank.
//!
//! Used by Kruskal's MST ([`crate::mst`]) and by the brute-force Steiner
//! oracle to test connectivity of induced subgraphs.

/// A disjoint-set forest over dense indices `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    ///
    /// ```
    /// use sft_graph::UnionFind;
    /// let mut uf = UnionFind::new(3);
    /// assert_eq!(uf.set_count(), 3);
    /// uf.union(0, 2);
    /// assert!(uf.connected(0, 2));
    /// assert_eq!(uf.set_count(), 2);
    /// ```
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x` (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(uf.connected(a, b), a == b);
            }
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn transitivity_over_long_chains() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
