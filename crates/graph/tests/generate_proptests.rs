//! Property-based tests for the topology generators ([`sft_graph::generate`]).
//!
//! Every family must satisfy three invariants across its parameter space:
//! seeded determinism (same seed ⇒ identical topology), connectivity after
//! augmentation, and the family's structural node/edge-count laws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_graph::generate::{euclidean_er, fat_tree, grid, random_geometric, waxman};
use sft_graph::Graph;

/// Edge multiset fingerprint: (u, v, weight-bits) sorted. Two graphs with
/// equal fingerprints are identical for our purposes.
fn fingerprint(g: &Graph) -> Vec<(usize, usize, u64)> {
    let mut edges: Vec<_> = g
        .edges()
        .map(|e| (e.u.0.min(e.v.0), e.u.0.max(e.v.0), e.weight.to_bits()))
        .collect();
    edges.sort_unstable();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn euclidean_er_is_deterministic_connected_and_sized(
        n in 1usize..40,
        p_mil in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let p = p_mil as f64 / 1000.0;
        let a = euclidean_er(n, p, 100.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = euclidean_er(n, p, 100.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.positions.clone(), b.positions.clone());
        prop_assert_eq!(fingerprint(&a.graph), fingerprint(&b.graph));
        prop_assert_eq!(a.graph.node_count(), n);
        prop_assert!(a.graph.is_connected());
        // Connectivity needs at least a spanning tree; ER sampling caps at
        // the complete graph.
        prop_assert!(a.graph.edge_count() >= n - 1);
        prop_assert!(a.graph.edge_count() <= n * (n - 1) / 2);
    }

    #[test]
    fn random_geometric_is_deterministic_connected_and_sized(
        n in 1usize..40,
        radius_pct in 1u64..100,
        seed in 0u64..10_000,
    ) {
        let radius = radius_pct as f64;
        let a = random_geometric(n, radius, 100.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = random_geometric(n, radius, 100.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.positions.clone(), b.positions.clone());
        prop_assert_eq!(fingerprint(&a.graph), fingerprint(&b.graph));
        prop_assert_eq!(a.graph.node_count(), n);
        prop_assert!(a.graph.is_connected());
        prop_assert!(a.graph.edge_count() >= n - 1 || n == 1);
    }

    #[test]
    fn waxman_is_deterministic_connected_and_sized(
        n in 1usize..40,
        alpha_pct in 1u64..100,
        beta_mil in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let beta = beta_mil as f64 / 1000.0;
        let a = waxman(n, alpha, beta, 100.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = waxman(n, alpha, beta, 100.0, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.positions.clone(), b.positions.clone());
        prop_assert_eq!(fingerprint(&a.graph), fingerprint(&b.graph));
        prop_assert_eq!(a.graph.node_count(), n);
        prop_assert!(a.graph.is_connected());
        prop_assert!(a.graph.edge_count() <= n.saturating_mul(n - 1) / 2 || n == 1);
        // Every edge weight is the Euclidean distance of its endpoints.
        for e in a.graph.edges() {
            let d = a.distance(e.u, e.v).max(f64::MIN_POSITIVE);
            prop_assert!((e.weight - d).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_obeys_lattice_counts(rows in 1usize..12, cols in 1usize..12) {
        let g = grid(rows, cols, 1.5).unwrap();
        prop_assert_eq!(g.node_count(), rows * cols);
        prop_assert_eq!(g.edge_count(), rows * (cols - 1) + cols * (rows - 1));
        prop_assert!(g.is_connected());
    }

    #[test]
    fn fat_tree_obeys_structural_counts(half in 1usize..5) {
        let k = 2 * half;
        let g = fat_tree(k, 2.0).unwrap();
        // (k/2)² cores + k pods × k switches + (k/2)²·k hosts.
        let switches = half * half + k * k;
        let hosts = half * half * k;
        prop_assert_eq!(g.node_count(), switches + hosts);
        // Edges: core↔agg k·(k/2)·(k/2), agg↔edge k·(k/2)², edge↔host
        // k·(k/2)².
        prop_assert_eq!(g.edge_count(), 3 * k * half * half);
        prop_assert!(g.is_connected());
    }
}
