//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sft_graph::generate::euclidean_er;
use sft_graph::{Graph, NodeId, RootedTree, UnionFind};

/// A random connected Euclidean graph plus its parameters.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..24, 0.0f64..0.6, 0u64..10_000).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        euclidean_er(n, p, 100.0, &mut rng).unwrap().graph
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_agrees_with_floyd_warshall(g in arb_graph()) {
        let m = g.all_pairs_shortest_paths().unwrap();
        for s in g.nodes() {
            let sp = g.dijkstra(s);
            for t in g.nodes() {
                let (a, b) = (sp.distance(t), m.distance(s, t));
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability disagreement {s:?}->{t:?}"),
                }
            }
        }
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality(g in arb_graph()) {
        let m = g.all_pairs_shortest_paths().unwrap();
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (m.distance(a, b), m.distance(b, c), m.distance(a, c))
                    {
                        prop_assert!(ac <= ab + bc + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn shortest_paths_are_locally_optimal(g in arb_graph()) {
        // Every edge relaxation is tight at the fixpoint.
        let sp = g.dijkstra(NodeId(0));
        for e in g.edges() {
            if let (Some(du), Some(dv)) = (sp.distance(e.u), sp.distance(e.v)) {
                prop_assert!(dv <= du + e.weight + 1e-9);
                prop_assert!(du <= dv + e.weight + 1e-9);
            }
        }
    }

    #[test]
    fn mst_weight_is_invariant_under_algorithm(g in arb_graph()) {
        let forest = g.minimum_spanning_forest();
        if g.is_connected() && g.node_count() > 0 {
            let prim = g.prim(NodeId(0)).unwrap();
            prop_assert!((forest.weight - prim.weight).abs() < 1e-9);
        }
        // Cut property spot-check: every non-tree edge closes a cycle in
        // which it is a heaviest edge; verify via the tree path.
        if g.is_connected() && g.node_count() >= 2 {
            let tree = RootedTree::from_edges(&g, NodeId(0), &forest.edges).unwrap();
            for id in g.edge_ids() {
                if forest.edges.contains(&id) {
                    continue;
                }
                let e = g.edge(id);
                let pu = tree.path_from_root(e.u).unwrap();
                let pv = tree.path_from_root(e.v).unwrap();
                // Max tree-edge weight on the u-v tree path.
                let mut max_w: f64 = 0.0;
                let shared = pu.iter().zip(&pv).take_while(|(a, b)| a == b).count();
                for w in pu[shared.saturating_sub(1)..].windows(2) {
                    max_w = max_w.max(g.weight(g.find_edge(w[0], w[1]).unwrap()));
                }
                for w in pv[shared.saturating_sub(1)..].windows(2) {
                    max_w = max_w.max(g.weight(g.find_edge(w[0], w[1]).unwrap()));
                }
                prop_assert!(e.weight >= max_w - 1e-9, "cycle property violated");
            }
        }
    }

    #[test]
    fn kmb_tree_is_valid_and_within_bound(
        g in arb_graph(),
        picks in proptest::collection::vec(0usize..1000, 2..6),
    ) {
        prop_assume!(g.is_connected());
        let terminals: Vec<NodeId> = picks
            .iter()
            .map(|&i| NodeId(i % g.node_count()))
            .collect();
        let kmb = g.steiner_kmb(&terminals).unwrap();
        prop_assert!(kmb.is_valid(&g, &terminals));
        let dist = g.all_pairs_shortest_paths().unwrap();
        let matrix = g.steiner_kmb_with_matrix(&dist, &terminals).unwrap();
        prop_assert!(matrix.is_valid(&g, &terminals));
        let tm = g.steiner_takahashi(&terminals).unwrap();
        prop_assert!(tm.is_valid(&g, &terminals));
        // All variants within the 2x bound of the exact optimum when the
        // instance is small enough for the oracle.
        let distinct: std::collections::BTreeSet<_> = terminals.iter().collect();
        if g.node_count() - distinct.len() <= 12 {
            let opt = g.steiner_exact(&terminals).unwrap();
            prop_assert!(opt.cost <= kmb.cost + 1e-9);
            prop_assert!(opt.cost <= tm.cost + 1e-9);
            prop_assert!(kmb.cost <= 2.0 * opt.cost + 1e-9);
            prop_assert!(matrix.cost <= 2.0 * opt.cost + 1e-9);
            prop_assert!(tm.cost <= 2.0 * opt.cost + 1e-9);
        }
    }

    #[test]
    fn union_find_matches_component_labels(g in arb_graph()) {
        let mut uf = UnionFind::new(g.node_count());
        for e in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        let labels = g.components();
        for a in g.nodes() {
            for b in g.nodes() {
                prop_assert_eq!(
                    uf.connected(a.index(), b.index()),
                    labels[a.index()] == labels[b.index()]
                );
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_distances_upper_bound(g in arb_graph()) {
        // Distances in an induced subgraph never beat the full graph's.
        let take = (g.node_count() / 2).max(2);
        let nodes: Vec<NodeId> = (0..take).map(NodeId).collect();
        let sub = g.induced_subgraph(&nodes).unwrap();
        let full = g.all_pairs_shortest_paths().unwrap();
        let subm = sub.all_pairs_shortest_paths().unwrap();
        for i in 0..take {
            for j in 0..take {
                if let Some(ds) = subm.distance(NodeId(i), NodeId(j)) {
                    let df = full.distance(NodeId(i), NodeId(j)).unwrap();
                    prop_assert!(df <= ds + 1e-9);
                }
            }
        }
    }
}
