//! Pluggable LP solver backends.
//!
//! [`LpBackend`] abstracts "solve the LP relaxation of a [`Problem`]" so
//! branch-and-bound and callers above it can switch between:
//!
//! * [`DenseBackend`] — the original full-tableau two-phase simplex
//!   ([`crate::simplex`]), kept as the oracle implementation;
//! * [`RevisedBackend`] — the sparse revised simplex ([`crate::revised`])
//!   with LU-factorized bases, eta-file updates, and warm starts from a
//!   [`BasisSnapshot`].
//!
//! Every solve returns [`SimplexStats`] alongside the outcome so callers
//! can report iteration, refactorization, and fill-in counts.

use crate::problem::Problem;
use crate::simplex::{LpOutcome, SimplexConfig};
use crate::LpError;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Work counters of a simplex solve.
///
/// The dense backend reports iterations only; `refactorizations` and
/// `fill_in` are specific to the revised path (`fill_in` is the peak
/// number of nonzeros in the LU factors of the basis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Pivots spent restoring feasibility (phase 1).
    pub phase1_iterations: usize,
    /// Pivots spent optimizing the real objective (phase 2).
    pub phase2_iterations: usize,
    /// Basis refactorizations after the initial factorization.
    pub refactorizations: usize,
    /// Peak nonzero count of the LU factors across refactorizations.
    pub fill_in: usize,
}

impl SimplexStats {
    /// Total pivots across both phases.
    pub fn iterations(&self) -> usize {
        self.phase1_iterations + self.phase2_iterations
    }

    /// Accumulates another solve's counters (fill-in takes the maximum).
    pub fn absorb(&mut self, other: &SimplexStats) {
        self.phase1_iterations += other.phase1_iterations;
        self.phase2_iterations += other.phase2_iterations;
        self.refactorizations += other.refactorizations;
        self.fill_in = self.fill_in.max(other.fill_in);
    }
}

impl fmt::Display for SimplexStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase1={} phase2={} refactor={} fill-in={}",
            self.phase1_iterations, self.phase2_iterations, self.refactorizations, self.fill_in
        )
    }
}

/// A basis captured at the end of a revised-simplex solve, reusable as the
/// starting basis of a closely related problem (branch-and-bound child
/// nodes, which only tighten variable bounds).
///
/// Columns are identified by *working-column* ids in the revised layout
/// (structural columns first, then one slack per row), which are stable
/// across bound changes because the structural layout depends only on
/// which bounds are finite.
#[derive(Clone, Debug)]
pub struct BasisSnapshot {
    pub(crate) nstruct: usize,
    pub(crate) ncols: usize,
    /// Basic working column per basis position (one per row).
    pub(crate) basic: Vec<usize>,
    /// Nonbasic working columns sitting at their upper bound.
    pub(crate) at_upper: Vec<usize>,
}

/// Outcome of a backend solve: the LP result, its work counters, and (for
/// backends that support warm starts) the final basis.
#[derive(Clone, Debug)]
pub struct LpReport {
    /// The LP outcome in the problem's own sense.
    pub outcome: LpOutcome,
    /// Work counters of this solve.
    pub stats: SimplexStats,
    /// Final basis, present when the backend supports warm starts.
    pub basis: Option<Arc<BasisSnapshot>>,
}

/// A linear-programming solver backend.
pub trait LpBackend: Sync {
    /// Short stable identifier (`"dense"` / `"revised"`).
    fn name(&self) -> &'static str;

    /// Solves the LP relaxation of `problem`, optionally warm-starting
    /// from a basis captured on a related problem. Backends that cannot
    /// use `warm` must ignore it.
    ///
    /// # Errors
    ///
    /// [`LpError::IterationLimit`] if the iteration budget is exhausted.
    fn solve(
        &self,
        problem: &Problem,
        config: &SimplexConfig,
        warm: Option<&BasisSnapshot>,
    ) -> Result<LpReport, LpError>;
}

/// The dense full-tableau two-phase simplex — the oracle implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseBackend;

impl LpBackend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn solve(
        &self,
        problem: &Problem,
        config: &SimplexConfig,
        _warm: Option<&BasisSnapshot>,
    ) -> Result<LpReport, LpError> {
        let (outcome, stats) = crate::simplex::solve_dense_with_stats(problem, config)?;
        Ok(LpReport {
            outcome,
            stats,
            basis: None,
        })
    }
}

/// The sparse revised simplex with LU-factorized bases and eta updates.
///
/// On (rare) numerical failure the solve is retried once from a cold
/// basis, and if that also fails it falls back to the dense oracle, so
/// callers always get an answer consistent with the dense path.
#[derive(Clone, Copy, Debug, Default)]
pub struct RevisedBackend;

impl LpBackend for RevisedBackend {
    fn name(&self) -> &'static str {
        "revised"
    }

    fn solve(
        &self,
        problem: &Problem,
        config: &SimplexConfig,
        warm: Option<&BasisSnapshot>,
    ) -> Result<LpReport, LpError> {
        match crate::revised::solve_revised(problem, config, warm)? {
            Some(report) => Ok(report),
            None => {
                // Numerical failure from the warm basis: retry cold.
                let cold = if warm.is_some() {
                    crate::revised::solve_revised(problem, config, None)?
                } else {
                    None
                };
                match cold {
                    Some(report) => Ok(report),
                    None => DenseBackend.solve(problem, config, None),
                }
            }
        }
    }
}

static DENSE: DenseBackend = DenseBackend;
static REVISED: RevisedBackend = RevisedBackend;

/// Dense-tableau work estimate: rows × columns of the full tableau. Above
/// this, `Auto` switches to the revised backend.
const AUTO_DENSE_CELLS: usize = 50_000;

/// Backend selection policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Always the dense full-tableau oracle.
    Dense,
    /// Always the sparse revised simplex.
    Revised,
    /// Pick per problem: dense for small tableaus (where its cache-friendly
    /// pivots win), revised once the dense tableau would exceed
    /// [`AUTO_DENSE_CELLS`] cells.
    #[default]
    Auto,
}

impl BackendChoice {
    /// Resolves the policy for a concrete problem.
    pub fn resolve(self, problem: &Problem) -> &'static dyn LpBackend {
        match self {
            BackendChoice::Dense => &DENSE,
            BackendChoice::Revised => &REVISED,
            BackendChoice::Auto => {
                let m = problem.constraint_count();
                // The dense tableau allocates structural + slack +
                // artificial columns: roughly n + 2m.
                let cells = m.saturating_mul(problem.var_count() + 2 * m);
                if cells > AUTO_DENSE_CELLS {
                    &REVISED
                } else {
                    &DENSE
                }
            }
        }
    }
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(BackendChoice::Dense),
            "revised" => Ok(BackendChoice::Revised),
            "auto" => Ok(BackendChoice::Auto),
            other => Err(format!(
                "unknown LP backend `{other}` (expected dense, revised, or auto)"
            )),
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendChoice::Dense => "dense",
            BackendChoice::Revised => "revised",
            BackendChoice::Auto => "auto",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Cmp;

    #[test]
    fn choice_parses_and_displays() {
        for (s, c) in [
            ("dense", BackendChoice::Dense),
            ("revised", BackendChoice::Revised),
            ("auto", BackendChoice::Auto),
        ] {
            assert_eq!(s.parse::<BackendChoice>().unwrap(), c);
            assert_eq!(c.to_string(), s);
        }
        assert!("simplex".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn auto_prefers_dense_for_small_problems() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint("c", [(x, 1.0)], Cmp::Le, 1.0).unwrap();
        assert_eq!(BackendChoice::Auto.resolve(&p).name(), "dense");
        assert_eq!(BackendChoice::Revised.resolve(&p).name(), "revised");
    }

    #[test]
    fn auto_switches_to_revised_at_scale() {
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..200)
            .map(|i| p.add_binary(format!("x{i}"), 1.0).unwrap())
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            p.add_constraint(format!("c{i}"), [(v, 1.0)], Cmp::Le, 1.0)
                .unwrap();
        }
        assert_eq!(BackendChoice::Auto.resolve(&p).name(), "revised");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = SimplexStats {
            phase1_iterations: 2,
            phase2_iterations: 3,
            refactorizations: 1,
            fill_in: 10,
        };
        let b = SimplexStats {
            phase1_iterations: 5,
            phase2_iterations: 7,
            refactorizations: 0,
            fill_in: 4,
        };
        a.absorb(&b);
        assert_eq!(a.phase1_iterations, 7);
        assert_eq!(a.phase2_iterations, 10);
        assert_eq!(a.iterations(), 17);
        assert_eq!(a.refactorizations, 1);
        assert_eq!(a.fill_in, 10);
    }
}
