//! Branch-and-bound for mixed-integer programs.
//!
//! Best-first search over LP relaxations solved through an
//! [`LpBackend`] selected by [`MipConfig::backend`]:
//!
//! * node selection: smallest relaxation bound first (a `BinaryHeap`);
//! * branching variable: most fractional integer variable;
//! * basis reuse: each child node warm-starts its LP from the parent's
//!   final basis (backends that support [`BasisSnapshot`]s, i.e. the
//!   revised simplex; the dense oracle solves cold);
//! * incumbents: an optional warm start (e.g. the paper's two-stage
//!   heuristic solution) plus a cheap round-and-check heuristic at every
//!   node;
//! * limits: node budget and wall-clock budget, reported honestly via
//!   [`MipStatus`].

use crate::backend::{BackendChoice, BasisSnapshot, LpBackend, SimplexStats};
use crate::problem::{ObjectiveSense, Problem, VarId, VarKind};
use crate::simplex::{LpOutcome, SimplexConfig};
use crate::LpError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs and limits for [`solve_mip`].
#[derive(Clone, Debug)]
pub struct MipConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Prune nodes whose bound is within this absolute distance of the
    /// incumbent (also the optimality tolerance of the final result).
    pub absolute_gap: f64,
    /// Tolerance for considering an LP value integral.
    pub integrality_tol: f64,
    /// A known-feasible full assignment used as the initial incumbent
    /// (e.g. a heuristic solution). Ignored if it is not feasible.
    pub warm_start: Option<Vec<f64>>,
    /// Configuration for the underlying LP solves.
    pub simplex: SimplexConfig,
    /// Which LP backend solves the node relaxations.
    pub backend: BackendChoice,
}

impl Default for MipConfig {
    fn default() -> Self {
        MipConfig {
            max_nodes: 100_000,
            time_limit: None,
            // Both default tolerances come from the workspace-wide numeric
            // module, so incumbent acceptance here and capacity/validator
            // slack in the embedding crates move together.
            absolute_gap: sft_graph::numeric::MIP_TOL,
            integrality_tol: sft_graph::numeric::MIP_TOL,
            warm_start: None,
            simplex: SimplexConfig::default(),
            backend: BackendChoice::default(),
        }
    }
}

/// An integral feasible solution found by branch-and-bound.
#[derive(Clone, Debug)]
pub struct MipSolution {
    /// Objective value in the problem's own sense.
    pub objective: f64,
    values: Vec<f64>,
}

impl MipSolution {
    /// Value of a variable (integer variables are exactly rounded).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Value of a variable, or `None` if the id does not belong to the
    /// solved problem (e.g. a stale id from a different [`Problem`]).
    pub fn get(&self, v: VarId) -> Option<f64> {
        self.values.get(v.0).copied()
    }

    /// The full assignment, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Resolution status of a mixed-integer solve.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MipStatus {
    /// The incumbent is optimal within the configured gap.
    Optimal,
    /// A limit was hit; the incumbent is feasible but not proved optimal.
    Feasible,
    /// The problem has no integral feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded (so the MIP is unbounded or
    /// infeasible; no ray certificate is produced).
    Unbounded,
    /// A limit was hit before any feasible solution was found.
    Unknown,
}

/// Result of a mixed-integer solve.
#[derive(Clone, Debug)]
pub struct MipOutcome {
    /// Resolution status.
    pub status: MipStatus,
    /// Best integral solution found, if any.
    pub best: Option<MipSolution>,
    /// Best proven bound on the optimum, in the problem's own sense
    /// (lower bound when minimizing, upper bound when maximizing).
    /// `NaN` when no bound was established (e.g. instant infeasibility).
    pub best_bound: f64,
    /// Number of branch-and-bound nodes whose relaxation was solved.
    pub nodes_explored: usize,
    /// LP work accumulated across every node relaxation solved.
    pub lp_stats: SimplexStats,
}

/// Key for the best-first heap: node bound in minimize-space.
#[derive(Clone, Copy, PartialEq)]
struct BoundKey(f64);

impl Eq for BoundKey {}

impl PartialOrd for BoundKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BoundKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Node {
    /// Relaxation bound of the parent (minimize-space); used as the heap
    /// priority until the node's own relaxation is solved.
    bound: f64,
    /// Bounds for each integer variable, aligned with `int_vars`.
    int_bounds: Vec<(f64, f64)>,
    /// The parent's final basis, to warm-start this node's relaxation.
    basis: Option<Arc<BasisSnapshot>>,
}

/// Solves a mixed-integer program by branch-and-bound.
///
/// Integer variables must have finite bounds (enforced at model build
/// time). Continuous variables are unrestricted.
///
/// # Errors
///
/// [`LpError::IterationLimit`] if an underlying LP solve exhausts its
/// iteration budget.
pub fn solve_mip(problem: &Problem, config: &MipConfig) -> Result<MipOutcome, LpError> {
    let start = Instant::now();
    let sign = match problem.sense() {
        ObjectiveSense::Minimize => 1.0,
        ObjectiveSense::Maximize => -1.0,
    };
    let int_vars = problem.integer_vars();
    let mut lp_stats = SimplexStats::default();

    // Working copy whose integer bounds are overwritten per node. Cloning
    // shares the problem's CSC view, and `set_bounds` keeps it valid, so
    // sparse backends build the matrix once for the whole search.
    let mut work = problem.relaxed();
    let backend: &dyn LpBackend = config.backend.resolve(&work);
    let root_bounds: Vec<(f64, f64)> = int_vars
        .iter()
        .map(|&v| {
            let var = problem.variable(v);
            // Tighten to the integral hull of the domain immediately.
            (var.lower.ceil(), var.upper.floor())
        })
        .collect();
    for (b, &v) in root_bounds.iter().zip(&int_vars) {
        if b.0 > b.1 {
            return Ok(MipOutcome {
                status: MipStatus::Infeasible,
                best: None,
                best_bound: f64::NAN,
                nodes_explored: 0,
                lp_stats,
            });
        }
        work.set_bounds(v, b.0, b.1)?;
    }

    // Incumbent in minimize-space.
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(ws) = &config.warm_start {
        if ws.len() == problem.var_count() && problem.is_feasible(ws, config.integrality_tol) {
            let mut vals = ws.clone();
            round_integers(&mut vals, &int_vars);
            let obj = sign * problem.objective_value(&vals);
            incumbent = Some((obj, vals));
        }
    }

    let mut heap: BinaryHeap<(Reverse<BoundKey>, usize)> = BinaryHeap::new();
    let mut nodes: Vec<Node> = Vec::new();
    nodes.push(Node {
        bound: f64::NEG_INFINITY,
        int_bounds: root_bounds,
        basis: None,
    });
    heap.push((Reverse(BoundKey(f64::NEG_INFINITY)), 0));

    let mut explored = 0;
    let mut unbounded_root = false;
    let mut limit_hit = false;
    // The tightest bound among nodes we pruned/deferred due to limits.
    let mut frontier_bound = f64::INFINITY;

    while let Some((Reverse(BoundKey(parent_bound)), idx)) = heap.pop() {
        // Prune against the incumbent before paying for the LP.
        if let Some((inc, _)) = &incumbent {
            if parent_bound >= inc - config.absolute_gap {
                continue;
            }
        }
        if explored >= config.max_nodes || config.time_limit.is_some_and(|tl| start.elapsed() >= tl)
        {
            limit_hit = true;
            frontier_bound = frontier_bound.min(nodes[idx].bound);
            // Drain the rest of the heap for bound bookkeeping.
            for (Reverse(BoundKey(b)), _) in heap.drain() {
                frontier_bound = frontier_bound.min(b);
            }
            break;
        }

        // Install the node's integer bounds.
        for (&v, &(lo, hi)) in int_vars.iter().zip(&nodes[idx].int_bounds) {
            work.set_bounds(v, lo, hi)?;
        }
        explored += 1;

        let report = backend.solve(&work, &config.simplex, nodes[idx].basis.as_deref())?;
        lp_stats.absorb(&report.stats);
        let sol = match report.outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // Only meaningful at the root: deeper nodes restrict the
                // root polyhedron, and an unbounded child implies an
                // unbounded root anyway.
                unbounded_root = true;
                break;
            }
            LpOutcome::Optimal(sol) => sol,
        };
        let node_bound = sign * sol.objective;
        if let Some((inc, _)) = &incumbent {
            if node_bound >= inc - config.absolute_gap {
                continue; // dominated
            }
        }

        // Integral already?
        let frac = most_fractional(sol.values(), &int_vars, config.integrality_tol);
        match frac {
            None => {
                let mut vals = sol.values().to_vec();
                round_integers(&mut vals, &int_vars);
                // LP-optimal for the node means feasible in exact arithmetic,
                // but rounding plus simplex round-off can still break a tight
                // constraint — never let an infeasible point become the
                // incumbent the search certifies as Optimal.
                if problem.is_feasible(&vals, config.integrality_tol) {
                    let obj = sign * problem.objective_value(&vals);
                    if incumbent.as_ref().is_none_or(|(inc, _)| obj < *inc) {
                        incumbent = Some((obj, vals));
                    }
                }
            }
            Some((vi, value)) => {
                // Round-and-check heuristic for an early incumbent.
                let mut rounded = sol.values().to_vec();
                round_integers(&mut rounded, &int_vars);
                if problem.is_feasible(&rounded, config.integrality_tol) {
                    let obj = sign * problem.objective_value(&rounded);
                    if incumbent.as_ref().is_none_or(|(inc, _)| obj < *inc) {
                        incumbent = Some((obj, rounded));
                    }
                }

                // Branch on the most fractional variable.
                let (lo, hi) = nodes[idx].int_bounds[vi];
                let floor = value.floor();
                let down = (lo, floor);
                let up = (floor + 1.0, hi);
                for (nlo, nhi) in [down, up] {
                    if nlo > nhi {
                        continue;
                    }
                    let mut nb = nodes[idx].int_bounds.clone();
                    nb[vi] = (nlo, nhi);
                    nodes.push(Node {
                        bound: node_bound,
                        int_bounds: nb,
                        basis: report.basis.clone(),
                    });
                    heap.push((Reverse(BoundKey(node_bound)), nodes.len() - 1));
                }
            }
        }
    }

    // Assemble the outcome, converting back to the problem's own sense.
    if unbounded_root {
        return Ok(MipOutcome {
            status: MipStatus::Unbounded,
            best: None,
            best_bound: f64::NAN,
            nodes_explored: explored,
            lp_stats,
        });
    }
    let best = incumbent.as_ref().map(|(obj, vals)| MipSolution {
        objective: sign * obj,
        values: vals.clone(),
    });
    let (status, bound_min_space) = match (&incumbent, limit_hit) {
        (Some((inc, _)), false) => (MipStatus::Optimal, *inc),
        (Some((inc, _)), true) => (MipStatus::Feasible, frontier_bound.min(*inc)),
        (None, false) => (MipStatus::Infeasible, f64::NAN),
        (None, true) => (MipStatus::Unknown, frontier_bound),
    };
    Ok(MipOutcome {
        status,
        best,
        best_bound: sign * bound_min_space,
        nodes_explored: explored,
        lp_stats,
    })
}

/// Rounds integer variables of an assignment in place.
fn round_integers(values: &mut [f64], int_vars: &[VarId]) {
    for &v in int_vars {
        values[v.0] = values[v.0].round();
    }
}

/// The integer variable whose LP value is farthest from integral, if any.
/// Returns the index *within `int_vars`* and the fractional value.
fn most_fractional(values: &[f64], int_vars: &[VarId], tol: f64) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, &v) in int_vars.iter().enumerate() {
        let x = values[v.0];
        let dist = (x - x.round()).abs();
        if dist > tol && best.is_none_or(|(_, _, d)| dist > d) {
            best = Some((i, x, dist));
        }
    }
    best.map(|(i, x, _)| (i, x))
}

/// Convenience: `VarKind` is re-checked nowhere else, keep the import used.
#[allow(dead_code)]
fn is_integral_kind(kind: VarKind) -> bool {
    matches!(kind, VarKind::Integer | VarKind::Binary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Cmp;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a + c (17)...
        // check by enumeration: a+c: w=5 v=17; b+c: w=6 v=20; a+b: w=7 no.
        let mut p = Problem::maximize();
        let a = p.add_binary("a", 10.0).unwrap();
        let b = p.add_binary("b", 13.0).unwrap();
        let c = p.add_binary("c", 7.0).unwrap();
        p.add_constraint("w", [(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0)
            .unwrap();
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        let s = out.best.unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.value(b), 1.0);
        assert_close(s.value(c), 1.0);
        assert_close(s.value(a), 0.0);
        assert_close(out.best_bound, 20.0);
    }

    #[test]
    fn integer_rounding_differs_from_lp_relaxation() {
        // max x + y s.t. 2x + y <= 5.5, x + 2y <= 5.5, integer.
        // LP optimum ~ (1.833, 1.833) obj 3.667; integer optimum 3.
        let mut p = Problem::maximize();
        let x = p.add_integer("x", 0.0, 10.0, 1.0).unwrap();
        let y = p.add_integer("y", 0.0, 10.0, 1.0).unwrap();
        p.add_constraint("c1", [(x, 2.0), (y, 1.0)], Cmp::Le, 5.5)
            .unwrap();
        p.add_constraint("c2", [(x, 1.0), (y, 2.0)], Cmp::Le, 5.5)
            .unwrap();
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        assert_close(out.best.unwrap().objective, 3.0);
    }

    #[test]
    fn infeasible_mip_is_detected() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x", 1.0).unwrap();
        p.add_constraint("half", [(x, 2.0)], Cmp::Eq, 1.0).unwrap(); // x = 0.5
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Infeasible);
        assert!(out.best.is_none());
    }

    #[test]
    fn fractional_domain_without_integer_points() {
        let mut p = Problem::minimize();
        p.add_integer("x", 0.2, 0.8, 1.0).unwrap();
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Infeasible);
    }

    #[test]
    fn unbounded_mip_is_detected() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let b = p.add_binary("b", 0.0).unwrap();
        p.add_constraint("tie", [(b, 1.0)], Cmp::Le, 1.0).unwrap();
        let _ = (x, b);
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Unbounded);
    }

    #[test]
    fn warm_start_is_used_and_kept_when_optimal() {
        let mut p = Problem::maximize();
        let a = p.add_binary("a", 10.0).unwrap();
        let b = p.add_binary("b", 13.0).unwrap();
        let c = p.add_binary("c", 7.0).unwrap();
        p.add_constraint("w", [(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0)
            .unwrap();
        let cfg = MipConfig {
            warm_start: Some(vec![0.0, 1.0, 1.0]), // the optimum
            ..MipConfig::default()
        };
        let out = solve_mip(&p, &cfg).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        assert_close(out.best.unwrap().objective, 20.0);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let mut p = Problem::maximize();
        let a = p.add_binary("a", 1.0).unwrap();
        p.add_constraint("w", [(a, 1.0)], Cmp::Le, 0.0).unwrap();
        let cfg = MipConfig {
            warm_start: Some(vec![1.0]), // violates w
            ..MipConfig::default()
        };
        let out = solve_mip(&p, &cfg).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        assert_close(out.best.unwrap().objective, 0.0);
    }

    #[test]
    fn node_limit_reports_feasible_with_bound() {
        // A knapsack large enough to need several nodes.
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| {
                p.add_binary(format!("x{i}"), (7 + (i * 13) % 11) as f64)
                    .unwrap()
            })
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (3 + (i * 7) % 9) as f64))
            .collect();
        p.add_constraint("w", terms, Cmp::Le, 20.0).unwrap();
        let exact = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(exact.status, MipStatus::Optimal);
        let exact_obj = exact.best.as_ref().unwrap().objective;
        let cfg = MipConfig {
            max_nodes: 1,
            ..MipConfig::default()
        };
        let out = solve_mip(&p, &cfg).unwrap();
        // With a single node the solver may or may not have stumbled on an
        // incumbent, but it must never claim optimality it cannot prove
        // (unless the root really was integral) and its reported bound must
        // dominate the true optimum (maximization: upper bound).
        match out.status {
            MipStatus::Optimal => assert_close(out.best.unwrap().objective, exact_obj),
            MipStatus::Feasible | MipStatus::Unknown => {
                assert!(out.best_bound >= exact_obj - 1e-6);
                if let Some(best) = &out.best {
                    assert!(best.objective <= exact_obj + 1e-6);
                }
            }
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // min 3y - x s.t. x <= 4.3 (cont), y >= x / 2, y integer.
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 4.3, -1.0).unwrap();
        let y = p.add_integer("y", 0.0, 10.0, 3.0).unwrap();
        p.add_constraint("link", [(y, 2.0), (x, -1.0)], Cmp::Ge, 0.0)
            .unwrap();
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        let s = out.best.unwrap();
        // Candidates: y=0,x=0 -> 0; y=1,x=2 -> 1; y=2,x=4 -> 2; y=3,x=4.3 -> 4.7.
        assert_close(s.objective, 0.0);
        assert_close(s.value(y), 0.0);
    }

    #[test]
    fn equality_constrained_assignment() {
        // 2x2 assignment problem as a MIP; optimal picks the diagonal.
        let mut p = Problem::minimize();
        let x00 = p.add_binary("x00", 1.0).unwrap();
        let x01 = p.add_binary("x01", 5.0).unwrap();
        let x10 = p.add_binary("x10", 5.0).unwrap();
        let x11 = p.add_binary("x11", 2.0).unwrap();
        p.add_constraint("r0", [(x00, 1.0), (x01, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        p.add_constraint("r1", [(x10, 1.0), (x11, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        p.add_constraint("c0", [(x00, 1.0), (x10, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        p.add_constraint("c1", [(x01, 1.0), (x11, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        let s = out.best.unwrap();
        assert_close(s.objective, 3.0);
        assert_close(s.value(x00), 1.0);
        assert_close(s.value(x11), 1.0);
    }

    #[test]
    fn every_backend_reaches_the_same_mip_optimum() {
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..14)
            .map(|i| {
                p.add_binary(format!("x{i}"), (5 + (i * 17) % 13) as f64)
                    .unwrap()
            })
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (2 + (i * 5) % 8) as f64))
            .collect();
        p.add_constraint("w", terms, Cmp::Le, 23.0).unwrap();
        for pair in vars.chunks(2) {
            if let [a, b] = pair {
                p.add_constraint(
                    format!("pair{}", a.index()),
                    [(*a, 1.0), (*b, 1.0)],
                    Cmp::Le,
                    1.0,
                )
                .unwrap();
            }
        }
        let mut objectives = Vec::new();
        for backend in [
            BackendChoice::Dense,
            BackendChoice::Revised,
            BackendChoice::Auto,
        ] {
            let cfg = MipConfig {
                backend,
                ..MipConfig::default()
            };
            let out = solve_mip(&p, &cfg).unwrap();
            assert_eq!(out.status, MipStatus::Optimal, "{backend}");
            assert!(out.lp_stats.iterations() > 0, "{backend}");
            objectives.push(out.best.unwrap().objective);
        }
        assert_close(objectives[0], objectives[1]);
        assert_close(objectives[0], objectives[2]);
    }

    #[test]
    fn pure_lp_passes_straight_through() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, 3.0, 2.0).unwrap();
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        assert_eq!(out.status, MipStatus::Optimal);
        assert_close(out.best.unwrap().value(x), 3.0);
        assert_eq!(out.nodes_explored, 1);
    }
}
