use std::fmt;

/// Errors produced while building or solving a linear program.
///
/// Note that infeasibility and unboundedness are *not* errors — they are
/// legitimate outcomes reported through [`crate::LpOutcome`] /
/// [`crate::MipStatus`]. `LpError` covers malformed models and solver
/// resource exhaustion only.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable id referenced a different problem or was out of bounds.
    UnknownVariable {
        /// The offending variable index.
        var: usize,
        /// Number of variables in the problem.
        len: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN (infinities are
    /// allowed in bounds only).
    NotANumber {
        /// Where the NaN appeared.
        context: &'static str,
    },
    /// A variable's lower bound exceeded its upper bound.
    EmptyDomain {
        /// Variable name.
        name: String,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// An integer or binary variable had an infinite bound, which
    /// branch-and-bound cannot enumerate.
    UnboundedInteger {
        /// Variable name.
        name: String,
    },
    /// The simplex did not converge within its iteration budget.
    IterationLimit {
        /// Iterations performed.
        iterations: usize,
    },
    /// A constraint had duplicate variables (coefficients must be merged by
    /// the caller; silently summing hides modelling bugs).
    DuplicateTerm {
        /// Constraint name.
        constraint: String,
        /// The duplicated variable index.
        var: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable { var, len } => {
                write!(
                    f,
                    "variable index {var} out of bounds for problem with {len} variables"
                )
            }
            LpError::NotANumber { context } => write!(f, "NaN encountered in {context}"),
            LpError::EmptyDomain { name, lower, upper } => {
                write!(f, "variable `{name}` has empty domain [{lower}, {upper}]")
            }
            LpError::UnboundedInteger { name } => {
                write!(f, "integer variable `{name}` has an infinite bound")
            }
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex exceeded its iteration budget of {iterations}")
            }
            LpError::DuplicateTerm { constraint, var } => {
                write!(
                    f,
                    "constraint `{constraint}` mentions variable {var} more than once"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}
