//! Export of [`Problem`]s in the CPLEX LP file format.
//!
//! The paper obtained its optimal solutions with CPLEX; this writer lets
//! any model built here (in particular the `sft-core` ILP) be dumped and
//! cross-checked against CPLEX, Gurobi, HiGHS, SCIP, glpsol — all of which
//! read this format.

use crate::problem::{Cmp, ObjectiveSense, Problem, VarKind};
use std::fmt::Write as _;

/// Serializes a problem in the CPLEX LP file format.
///
/// Variable names are sanitized to `x<N>` if they contain characters the
/// format forbids; constraint names likewise to `c<N>`. The output ends
/// with `End`.
pub fn to_lp_format(problem: &Problem) -> String {
    let mut out = String::new();
    let var_name = |i: usize| -> String {
        let name = &problem.variables()[i].name;
        if is_clean(name) {
            name.clone()
        } else {
            format!("x{i}")
        }
    };

    let _ = writeln!(
        out,
        "{}",
        match problem.sense() {
            ObjectiveSense::Minimize => "Minimize",
            ObjectiveSense::Maximize => "Maximize",
        }
    );
    let mut obj = String::from(" obj:");
    let mut any = false;
    for (i, v) in problem.variables().iter().enumerate() {
        if v.objective != 0.0 {
            let _ = write!(obj, " {} {}", signed(v.objective), var_name(i));
            any = true;
        }
    }
    if !any {
        if problem.var_count() == 0 {
            obj = " obj: 0 x_dummy".into();
        } else {
            let _ = write!(obj, " 0 {}", var_name(0));
        }
    }
    let _ = writeln!(out, "{obj}");

    let _ = writeln!(out, "Subject To");
    for (ci, c) in problem.constraints().iter().enumerate() {
        let name = if is_clean(&c.name) {
            c.name.clone()
        } else {
            format!("c{ci}")
        };
        let mut line = format!(" {name}:");
        if c.terms.is_empty() {
            // The LP format needs at least one term; encode `0 <= rhs`
            // with a zero coefficient on the first variable (if any).
            if problem.var_count() > 0 {
                let _ = write!(line, " 0 {}", var_name(0));
            } else {
                let _ = write!(line, " 0 x_dummy");
            }
        }
        for (v, coef) in &c.terms {
            let _ = write!(line, " {} {}", signed(*coef), var_name(v.index()));
        }
        let cmp = match c.cmp {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        };
        let _ = writeln!(out, "{line} {cmp} {}", c.rhs);
    }

    let _ = writeln!(out, "Bounds");
    for (i, v) in problem.variables().iter().enumerate() {
        let name = var_name(i);
        match (v.lower.is_finite(), v.upper.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {} <= {name} <= {}", v.lower, v.upper);
            }
            (true, false) => {
                let _ = writeln!(out, " {} <= {name} <= +inf", v.lower);
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= {name} <= {}", v.upper);
            }
            (false, false) => {
                let _ = writeln!(out, " {name} free");
            }
        }
    }

    let generals: Vec<String> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| var_name(i))
        .collect();
    if !generals.is_empty() {
        let _ = writeln!(out, "Generals");
        let _ = writeln!(out, " {}", generals.join(" "));
    }
    let binaries: Vec<String> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Binary)
        .map(|(i, _)| var_name(i))
        .collect();
    if !binaries.is_empty() {
        let _ = writeln!(out, "Binaries");
        let _ = writeln!(out, " {}", binaries.join(" "));
    }
    let _ = writeln!(out, "End");
    out
}

/// LP-format identifiers: alphanumerics plus a safe punctuation subset,
/// not starting with a digit, `e`, or `E` (which would parse as numbers).
fn is_clean(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit() || c == 'e' || c == 'E' || c == '.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-[]{}".contains(c))
}

fn signed(x: f64) -> String {
    if x >= 0.0 {
        format!("+ {x}")
    } else {
        format!("- {}", -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn knapsack() -> Problem {
        let mut p = Problem::maximize();
        let a = p.add_binary("take_a", 10.0).unwrap();
        let b = p.add_binary("take_b", 13.0).unwrap();
        let y = p.add_integer("count", 0.0, 4.0, 1.0).unwrap();
        let x = p
            .add_continuous("slack var!", 0.0, f64::INFINITY, 0.0)
            .unwrap();
        p.add_constraint("weight", [(a, 3.0), (b, 4.0), (y, 1.0)], Cmp::Le, 6.0)
            .unwrap();
        p.add_constraint("link", [(x, 1.0), (y, -1.0)], Cmp::Ge, 0.0)
            .unwrap();
        p.add_constraint("fix", [(a, 1.0), (b, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        p
    }

    #[test]
    fn sections_appear_in_order() {
        let s = to_lp_format(&knapsack());
        let idx = |pat: &str| s.find(pat).unwrap_or_else(|| panic!("missing {pat}"));
        assert!(idx("Maximize") < idx("Subject To"));
        assert!(idx("Subject To") < idx("Bounds"));
        assert!(idx("Bounds") < idx("Generals"));
        assert!(idx("Generals") < idx("Binaries"));
        assert!(idx("Binaries") < idx("End"));
    }

    #[test]
    fn objective_and_constraints_are_rendered() {
        let s = to_lp_format(&knapsack());
        assert!(s.contains("+ 10 take_a"));
        assert!(s.contains("+ 13 take_b"));
        assert!(s.contains("weight: + 3 take_a + 4 take_b + 1 count <= 6"));
        assert!(s.contains("- 1 count >= 0"));
        assert!(s.contains("= 1"));
    }

    #[test]
    fn dirty_names_are_sanitized() {
        let s = to_lp_format(&knapsack());
        assert!(!s.contains("slack var!"), "raw dirty name leaked");
        assert!(s.contains("x3"), "sanitized name missing");
    }

    #[test]
    fn bounds_cover_all_variable_shapes() {
        let mut p = Problem::minimize();
        p.add_continuous("a", 0.0, 1.0, 1.0).unwrap();
        p.add_continuous("b", -1.0, f64::INFINITY, 1.0).unwrap();
        p.add_continuous("c", f64::NEG_INFINITY, 5.0, 1.0).unwrap();
        p.add_continuous("d", f64::NEG_INFINITY, f64::INFINITY, 1.0)
            .unwrap();
        let s = to_lp_format(&p);
        assert!(s.contains(" 0 <= a <= 1"));
        assert!(s.contains(" -1 <= b <= +inf"));
        assert!(s.contains(" -inf <= c <= 5"));
        assert!(s.contains(" d free"));
    }

    #[test]
    fn empty_problem_is_still_well_formed() {
        let s = to_lp_format(&Problem::minimize());
        assert!(s.starts_with("Minimize"));
        assert!(s.trim_end().ends_with("End"));
    }

    #[test]
    fn core_ilp_style_names_survive() {
        let mut p = Problem::minimize();
        let v = p.add_binary("w_1_n3", 2.0).unwrap();
        p.add_constraint("cap_n3", [(v, 1.0)], Cmp::Le, 1.0)
            .unwrap();
        let s = to_lp_format(&p);
        assert!(s.contains("w_1_n3"));
        assert!(s.contains("cap_n3"));
    }
}
