//! Import of CPLEX LP-format files into [`Problem`]s.
//!
//! The counterpart of [`crate::export`]: together they give a lossless
//! round trip for the model subset this crate produces (linear objective,
//! linear constraints, bounds, `Generals` / `Binaries` sections), which is
//! how the ILP models here can be cross-checked against external solvers
//! in both directions.
//!
//! Supported grammar (a pragmatic subset of the format):
//!
//! ```text
//! Minimize|Maximize
//!  name: [+|-] coef var [[+|-] coef var]...
//! Subject To
//!  name: terms <=|>=|= rhs
//! Bounds
//!  lo <= var <= hi | -inf <= var <= hi | lo <= var <= +inf | var free
//! Generals / Binaries
//!  var...
//! End
//! ```

use crate::problem::{Cmp, Problem};
use crate::LpError;
use std::collections::BTreeMap;

/// Parses a problem from LP-format text.
///
/// # Errors
///
/// [`LpError::NotANumber`] with context for malformed numerics; parse
/// failures of structure are reported through the same error type with a
/// descriptive context string.
pub fn from_lp_format(text: &str) -> Result<Problem, LpError> {
    let fail = |_context: &'static str| LpError::NotANumber { context: _context };

    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Objective,
        Constraints,
        Bounds,
        Generals,
        Binaries,
        Done,
    }

    // First pass: tokenize into logical lines per section.
    let mut sense_minimize = true;
    let mut section = None;
    let mut objective_text = String::new();
    let mut constraint_lines: Vec<String> = Vec::new();
    let mut bound_lines: Vec<String> = Vec::new();
    let mut generals: Vec<String> = Vec::new();
    let mut binaries: Vec<String> = Vec::new();

    for raw in text.lines() {
        let line = raw.split('\\').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        match lower.as_str() {
            "minimize" | "min" => {
                sense_minimize = true;
                section = Some(Section::Objective);
                continue;
            }
            "maximize" | "max" => {
                sense_minimize = false;
                section = Some(Section::Objective);
                continue;
            }
            "subject to" | "st" | "s.t." => {
                section = Some(Section::Constraints);
                continue;
            }
            "bounds" => {
                section = Some(Section::Bounds);
                continue;
            }
            "generals" | "general" | "integers" => {
                section = Some(Section::Generals);
                continue;
            }
            "binaries" | "binary" => {
                section = Some(Section::Binaries);
                continue;
            }
            "end" => {
                section = Some(Section::Done);
                continue;
            }
            _ => {}
        }
        match section {
            Some(Section::Objective) => {
                objective_text.push(' ');
                objective_text.push_str(line);
            }
            Some(Section::Constraints) => constraint_lines.push(line.to_string()),
            Some(Section::Bounds) => bound_lines.push(line.to_string()),
            Some(Section::Generals) => generals.extend(line.split_whitespace().map(String::from)),
            Some(Section::Binaries) => binaries.extend(line.split_whitespace().map(String::from)),
            _ => return Err(fail("unexpected content outside any section")),
        }
    }

    // Parse linear expressions of the form `[+|-] [coef] var ...`.
    fn parse_terms(expr: &str) -> Result<Vec<(String, f64)>, LpError> {
        let tokens: Vec<&str> = expr.split_whitespace().collect();
        let mut terms = Vec::new();
        let mut sign = 1.0;
        let mut pending_coef: Option<f64> = None;
        for tok in tokens {
            match tok {
                "+" => {
                    sign = 1.0;
                }
                "-" => {
                    sign = -1.0;
                }
                _ => {
                    if let Ok(num) = tok.parse::<f64>() {
                        pending_coef = Some(pending_coef.unwrap_or(1.0) * num);
                    } else {
                        let coef = sign * pending_coef.unwrap_or(1.0);
                        terms.push((tok.to_string(), coef));
                        sign = 1.0;
                        pending_coef = None;
                    }
                }
            }
        }
        if pending_coef.is_some() {
            return Err(LpError::NotANumber {
                context: "dangling coefficient in expression",
            });
        }
        Ok(terms)
    }

    // Objective: strip the `name:` prefix.
    let obj_body = objective_text
        .split_once(':')
        .map(|(_, b)| b)
        .unwrap_or(&objective_text);
    let obj_terms = parse_terms(obj_body)?;

    // Collect variables in first-appearance order.
    let mut var_order: Vec<String> = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let note = |name: &str, var_order: &mut Vec<String>, seen: &mut BTreeMap<String, usize>| {
        if !seen.contains_key(name) {
            seen.insert(name.to_string(), var_order.len());
            var_order.push(name.to_string());
        }
    };
    for (name, _) in &obj_terms {
        note(name, &mut var_order, &mut seen);
    }

    struct RawConstraint {
        name: String,
        terms: Vec<(String, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut raw_constraints = Vec::new();
    for (i, line) in constraint_lines.iter().enumerate() {
        let body = line.split_once(':').map(|(_, b)| b).unwrap_or(line);
        let (cmp, split) = if let Some(p) = body.find("<=") {
            (Cmp::Le, p)
        } else if let Some(p) = body.find(">=") {
            (Cmp::Ge, p)
        } else if let Some(p) = body.find('=') {
            (Cmp::Eq, p)
        } else {
            return Err(fail("constraint without comparison operator"));
        };
        let (lhs, rest) = body.split_at(split);
        let rhs_text = rest.trim_start_matches(['<', '>', '=']).trim();
        let rhs: f64 = rhs_text
            .parse()
            .map_err(|_| fail("unparsable constraint rhs"))?;
        let terms = parse_terms(lhs)?;
        for (name, _) in &terms {
            note(name, &mut var_order, &mut seen);
        }
        let name = line
            .split_once(':')
            .map(|(n, _)| n.trim().to_string())
            .unwrap_or_else(|| format!("c{i}"));
        raw_constraints.push(RawConstraint {
            name,
            terms,
            cmp,
            rhs,
        });
    }

    // Bounds.
    let mut bounds: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for line in &bound_lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            [var, "free"] => {
                note(var, &mut var_order, &mut seen);
                bounds.insert(var.to_string(), (f64::NEG_INFINITY, f64::INFINITY));
            }
            [lo, "<=", var, "<=", hi] => {
                note(var, &mut var_order, &mut seen);
                let parse_bound = |s: &str, neg: bool| -> Result<f64, LpError> {
                    match s {
                        "+inf" | "inf" => Ok(f64::INFINITY),
                        "-inf" => Ok(f64::NEG_INFINITY),
                        _ => s.parse().map_err(|_| LpError::NotANumber {
                            context: if neg { "lower bound" } else { "upper bound" },
                        }),
                    }
                };
                let lo = parse_bound(lo, true)?;
                let hi = parse_bound(hi, false)?;
                bounds.insert(var.to_string(), (lo, hi));
            }
            _ => return Err(fail("unsupported bounds line")),
        }
    }
    for v in generals.iter().chain(binaries.iter()) {
        note(v, &mut var_order, &mut seen);
    }

    // Assemble the Problem.
    let mut p = if sense_minimize {
        Problem::minimize()
    } else {
        Problem::maximize()
    };
    let obj_map: BTreeMap<&str, f64> = obj_terms.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    let mut ids = BTreeMap::new();
    for name in &var_order {
        let obj = obj_map.get(name.as_str()).copied().unwrap_or(0.0);
        let id = if binaries.contains(name) {
            p.add_binary(name.clone(), obj)?
        } else if generals.contains(name) {
            let (lo, hi) = bounds.get(name).copied().unwrap_or((0.0, f64::INFINITY));
            p.add_integer(name.clone(), lo, hi.min(1e18), obj)?
        } else {
            let (lo, hi) = bounds.get(name).copied().unwrap_or((0.0, f64::INFINITY));
            p.add_continuous(name.clone(), lo, hi, obj)?
        };
        ids.insert(name.clone(), id);
    }
    for rc in raw_constraints {
        // Merge duplicate mentions (the exporter never produces them, but
        // hand-written files may).
        let mut merged: BTreeMap<&str, f64> = BTreeMap::new();
        for (n, c) in &rc.terms {
            *merged.entry(n.as_str()).or_insert(0.0) += c;
        }
        let terms: Vec<_> = merged.into_iter().map(|(n, c)| (ids[n], c)).collect();
        p.add_constraint(rc.name, terms, rc.cmp, rc.rhs)?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_lp_format;
    use crate::problem::VarKind;
    use crate::{solve_lp, solve_mip, LpOutcome, MipConfig, MipStatus};

    #[test]
    fn parses_a_hand_written_model() {
        let text = "\
Maximize
 obj: + 3 x + 2 y
Subject To
 cap: + 1 x + 1 y <= 4
 mix: + 1 x + 3 y <= 6
Bounds
 0 <= x <= +inf
 0 <= y <= +inf
End
";
        let p = from_lp_format(text).unwrap();
        assert_eq!(p.var_count(), 2);
        assert_eq!(p.constraint_count(), 2);
        let out = solve_lp(&p).unwrap();
        let s = out.solution().expect("optimal");
        assert!((s.objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn round_trips_the_exporter_output() {
        let mut p = Problem::maximize();
        let a = p.add_binary("take_a", 10.0).unwrap();
        let b = p.add_binary("take_b", 13.0).unwrap();
        let y = p.add_integer("count", 0.0, 4.0, 1.0).unwrap();
        let z = p.add_continuous("z", -2.0, 5.5, -0.5).unwrap();
        p.add_constraint("w", [(a, 3.0), (b, 4.0), (y, 1.0)], Cmp::Le, 6.0)
            .unwrap();
        p.add_constraint("link", [(z, 1.0), (y, -1.0)], Cmp::Ge, -1.0)
            .unwrap();
        p.add_constraint("pick", [(a, 1.0), (b, 1.0)], Cmp::Eq, 1.0)
            .unwrap();

        let text = to_lp_format(&p);
        let q = from_lp_format(&text).unwrap();
        assert_eq!(q.var_count(), p.var_count());
        assert_eq!(q.constraint_count(), p.constraint_count());
        // Kinds survive.
        assert_eq!(q.variables()[0].kind, VarKind::Binary);
        assert_eq!(q.variables()[2].kind, VarKind::Integer);
        assert_eq!(q.variables()[3].kind, VarKind::Continuous);
        // And, decisively, both models have the same MIP optimum.
        let orig = solve_mip(&p, &MipConfig::default()).unwrap();
        let round = solve_mip(&q, &MipConfig::default()).unwrap();
        assert_eq!(orig.status, MipStatus::Optimal);
        assert_eq!(round.status, MipStatus::Optimal);
        let (o, r) = (orig.best.unwrap(), round.best.unwrap());
        assert!((o.objective - r.objective).abs() < 1e-6);
    }

    #[test]
    fn free_variables_and_negative_bounds_round_trip() {
        let mut p = Problem::minimize();
        p.add_continuous("f", f64::NEG_INFINITY, f64::INFINITY, 1.0)
            .unwrap();
        p.add_continuous("m", f64::NEG_INFINITY, 4.0, 0.0).unwrap();
        let x = p.add_continuous("x", -3.0, 3.0, 2.0).unwrap();
        p.add_constraint("c", [(x, 1.0)], Cmp::Ge, -2.0).unwrap();
        let q = from_lp_format(&to_lp_format(&p)).unwrap();
        // Variables re-appear in first-mention order; look them up by name.
        let by_name = |name: &str| {
            q.variables()
                .iter()
                .find(|v| v.name == name)
                .unwrap_or_else(|| panic!("variable {name} lost in round trip"))
        };
        assert_eq!(by_name("f").lower, f64::NEG_INFINITY);
        assert_eq!(by_name("f").upper, f64::INFINITY);
        assert_eq!(by_name("m").upper, 4.0);
        assert_eq!(by_name("m").lower, f64::NEG_INFINITY);
        assert_eq!(by_name("x").lower, -3.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_lp_format("garbage before any section").is_err());
        assert!(from_lp_format("Minimize\n obj: x\nSubject To\n c: x 5\nEnd").is_err());
        assert!(from_lp_format("Minimize\n obj: x\nBounds\n x nonsense line\nEnd").is_err());
    }

    #[test]
    fn ilp_sized_round_trip_preserves_the_optimum() {
        // A small assignment ILP through export -> import -> solve.
        let mut p = Problem::minimize();
        let mut xs = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                xs.push(
                    p.add_binary(format!("x_{i}_{j}"), ((i * 3 + j * 7) % 5 + 1) as f64)
                        .unwrap(),
                );
            }
        }
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| (xs[i * 3 + j], 1.0)).collect();
            p.add_constraint(format!("r{i}"), row, Cmp::Eq, 1.0)
                .unwrap();
            let col: Vec<_> = (0..3).map(|j| (xs[j * 3 + i], 1.0)).collect();
            p.add_constraint(format!("col{i}"), col, Cmp::Eq, 1.0)
                .unwrap();
        }
        let orig = solve_mip(&p, &MipConfig::default()).unwrap();
        let q = from_lp_format(&to_lp_format(&p)).unwrap();
        let round = solve_mip(&q, &MipConfig::default()).unwrap();
        assert!((orig.best.unwrap().objective - round.best.unwrap().objective).abs() < 1e-6);
    }

    #[test]
    fn lp_relaxation_agrees_after_round_trip() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, 10.0, 1.5).unwrap();
        let y = p.add_continuous("y", 0.0, 10.0, 1.0).unwrap();
        p.add_constraint("c", [(x, 2.0), (y, 1.0)], Cmp::Le, 10.0)
            .unwrap();
        let q = from_lp_format(&to_lp_format(&p)).unwrap();
        let (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) =
            (solve_lp(&p).unwrap(), solve_lp(&q).unwrap())
        else {
            panic!("both must be optimal");
        };
        assert!((a.objective - b.objective).abs() < 1e-6);
    }
}
