//! Linear and mixed-integer programming substrate.
//!
//! The paper obtains optimal SFT embeddings by handing its ILP formulation
//! (1a)–(1f) to CPLEX (§V-C). CPLEX is proprietary, so this crate is the
//! from-scratch substitute used by `sft-core::ilp`:
//!
//! * [`Problem`] — a model-building API for linear programs with bounded,
//!   continuous / integer / binary variables ([`problem`]), exposing a
//!   cached compressed sparse-column view of the constraint matrix.
//! * [`LpBackend`] — pluggable LP solver backends ([`backend`]): the dense
//!   two-phase tableau oracle ([`simplex`], also reachable directly via
//!   [`solve_lp`]) and a sparse revised simplex with LU-factorized bases,
//!   eta-file updates, and warm starts ([`revised`]); [`BackendChoice`]
//!   selects one by name or by problem size.
//! * [`solve_mip`] — best-first branch-and-bound over the LP relaxation
//!   through a backend (reusing parent bases on child nodes), with
//!   warm-start incumbents, node/time limits, and optimality gaps
//!   ([`branch_bound`]).
//!
//! # Example
//!
//! ```
//! use sft_lp::{Cmp, LpOutcome, Problem};
//!
//! # fn main() -> Result<(), sft_lp::LpError> {
//! // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut p = Problem::maximize();
//! let x = p.add_continuous("x", 0.0, f64::INFINITY, 3.0)?;
//! let y = p.add_continuous("y", 0.0, f64::INFINITY, 2.0)?;
//! p.add_constraint("cap", [(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)?;
//! p.add_constraint("mix", [(x, 1.0), (y, 3.0)], Cmp::Le, 6.0)?;
//! match sft_lp::solve_lp(&p)? {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective - 12.0).abs() < 1e-9);
//!         assert!((sol.value(x) - 4.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod branch_bound;
mod error;
pub mod export;
pub mod import;
pub mod problem;
pub mod revised;
pub mod simplex;
mod standard;

pub use backend::{
    BackendChoice, BasisSnapshot, DenseBackend, LpBackend, LpReport, RevisedBackend, SimplexStats,
};
pub use branch_bound::{solve_mip, MipConfig, MipOutcome, MipSolution, MipStatus};
pub use error::LpError;
pub use export::to_lp_format;
pub use import::from_lp_format;
pub use problem::{Cmp, CscMatrix, ObjectiveSense, Problem, VarId, VarKind};
pub use simplex::{solve_lp, solve_lp_with, LpOutcome, LpSolution, SimplexConfig};

/// Feasibility / optimality tolerance shared across the solvers.
pub const TOL: f64 = 1e-7;
