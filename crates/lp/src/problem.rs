//! Model-building API for linear and mixed-integer programs.
//!
//! A [`Problem`] collects variables (with bounds, kind, and objective
//! coefficients) and linear constraints. It is solver-agnostic: the simplex
//! ([`crate::simplex`]) and branch-and-bound ([`crate::branch_bound`])
//! consume it read-only.

use crate::LpError;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of a variable within a [`Problem`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl VarId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Variable integrality class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Shorthand for an integer variable with bounds `[0, 1]`.
    Binary,
}

/// Comparison operator of a linear constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Direction of optimization.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A decision variable.
#[derive(Clone, Debug)]
pub struct Variable {
    /// Human-readable name (used in error messages and debugging dumps).
    pub name: String,
    /// Lower bound (may be `-inf` for continuous variables).
    pub lower: f64,
    /// Upper bound (may be `+inf` for continuous variables).
    pub upper: f64,
    /// Integrality class.
    pub kind: VarKind,
    /// Objective coefficient.
    pub objective: f64,
}

/// A linear constraint `Σ coeff·var (cmp) rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Human-readable name.
    pub name: String,
    /// Sparse terms, each variable at most once.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Compressed sparse-column view of a problem's constraint matrix.
///
/// Column `j` holds the raw coefficients of variable `j` across all
/// constraints, with row indices strictly increasing (constraints are
/// scanned in insertion order and each mentions a variable at most once).
/// Bounds, senses, and objective coefficients are *not* part of the view,
/// so [`Problem::set_bounds`] — the only mutation branch-and-bound applies
/// per node — never invalidates it.
#[derive(Clone, Debug)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    fn build(problem: &Problem) -> CscMatrix {
        let ncols = problem.var_count();
        let nrows = problem.constraint_count();
        let mut counts = vec![0usize; ncols + 1];
        for c in &problem.constraints {
            for &(v, _) in &c.terms {
                counts[v.0 + 1] += 1;
            }
        }
        for j in 0..ncols {
            counts[j + 1] += counts[j];
        }
        let col_ptr = counts;
        let nnz = col_ptr[ncols];
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        for (i, c) in problem.constraints.iter().enumerate() {
            for &(v, coef) in &c.terms {
                let slot = cursor[v.0];
                row_idx[slot] = i;
                values[slot] = coef;
                cursor[v.0] += 1;
            }
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of constraint rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of variable columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, coefficient)` entries of column `j`, rows ascending.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of nonzeros in column `j`.
    pub fn column_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }
}

/// A linear or mixed-integer program.
#[derive(Clone, Debug)]
pub struct Problem {
    sense: ObjectiveSense,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    /// Lazily built CSC view, shared by clones (branch-and-bound clones the
    /// problem once and then only calls `set_bounds`, so the view is built
    /// once per MIP solve). Reset by any structural mutation.
    csc: OnceLock<Arc<CscMatrix>>,
}

impl Problem {
    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        Problem {
            sense: ObjectiveSense::Minimize,
            variables: Vec::new(),
            constraints: Vec::new(),
            csc: OnceLock::new(),
        }
    }

    /// Creates an empty maximization problem.
    pub fn maximize() -> Self {
        Problem {
            sense: ObjectiveSense::Maximize,
            variables: Vec::new(),
            constraints: Vec::new(),
            csc: OnceLock::new(),
        }
    }

    /// The CSC view of the constraint matrix, built on first use and cached
    /// for the problem's lifetime (clones share it; structural mutations
    /// reset it, bound overrides do not).
    pub fn csc(&self) -> Arc<CscMatrix> {
        self.csc
            .get_or_init(|| Arc::new(CscMatrix::build(self)))
            .clone()
    }

    /// The optimization direction.
    pub fn sense(&self) -> ObjectiveSense {
        self.sense
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The variables, indexable by [`VarId::index`].
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The variable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.0]
    }

    /// Adds a continuous variable and returns its id.
    ///
    /// # Errors
    ///
    /// * [`LpError::NotANumber`] if any argument is NaN.
    /// * [`LpError::EmptyDomain`] if `lower > upper`.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<VarId, LpError> {
        self.add_variable(Variable {
            name: name.into(),
            lower,
            upper,
            kind: VarKind::Continuous,
            objective,
        })
    }

    /// Adds a bounded integer variable and returns its id.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_continuous`], plus
    /// [`LpError::UnboundedInteger`] if either bound is infinite.
    pub fn add_integer(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<VarId, LpError> {
        self.add_variable(Variable {
            name: name.into(),
            lower,
            upper,
            kind: VarKind::Integer,
            objective,
        })
    }

    /// Adds a binary (0/1) variable and returns its id.
    ///
    /// # Errors
    ///
    /// [`LpError::NotANumber`] if `objective` is NaN.
    pub fn add_binary(
        &mut self,
        name: impl Into<String>,
        objective: f64,
    ) -> Result<VarId, LpError> {
        self.add_variable(Variable {
            name: name.into(),
            lower: 0.0,
            upper: 1.0,
            kind: VarKind::Binary,
            objective,
        })
    }

    /// Adds an explicitly constructed variable.
    ///
    /// # Errors
    ///
    /// See [`Problem::add_continuous`] / [`Problem::add_integer`].
    pub fn add_variable(&mut self, v: Variable) -> Result<VarId, LpError> {
        if v.lower.is_nan() || v.upper.is_nan() || v.objective.is_nan() {
            return Err(LpError::NotANumber {
                context: "variable definition",
            });
        }
        if v.lower > v.upper {
            return Err(LpError::EmptyDomain {
                name: v.name,
                lower: v.lower,
                upper: v.upper,
            });
        }
        if matches!(v.kind, VarKind::Integer | VarKind::Binary)
            && (!v.lower.is_finite() || !v.upper.is_finite())
        {
            return Err(LpError::UnboundedInteger { name: v.name });
        }
        self.variables.push(v);
        self.csc = OnceLock::new();
        Ok(VarId(self.variables.len() - 1))
    }

    /// Adds a linear constraint `Σ coeff·var (cmp) rhs`.
    ///
    /// Zero-coefficient terms are dropped. An empty (or all-zero) term list
    /// is allowed and evaluates as `0 (cmp) rhs` — the simplex reports
    /// infeasibility if that is violated, which keeps generated models
    /// uniform.
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] for out-of-range variable ids.
    /// * [`LpError::NotANumber`] for NaN coefficients / rhs or infinite rhs.
    /// * [`LpError::DuplicateTerm`] if a variable appears twice.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) -> Result<(), LpError> {
        let name = name.into();
        if rhs.is_nan() || rhs.is_infinite() {
            return Err(LpError::NotANumber {
                context: "constraint rhs",
            });
        }
        let mut seen = vec![false; self.variables.len()];
        let mut clean = Vec::new();
        for (v, c) in terms {
            if v.0 >= self.variables.len() {
                return Err(LpError::UnknownVariable {
                    var: v.0,
                    len: self.variables.len(),
                });
            }
            if c.is_nan() || c.is_infinite() {
                return Err(LpError::NotANumber {
                    context: "constraint coefficient",
                });
            }
            if seen[v.0] {
                return Err(LpError::DuplicateTerm {
                    constraint: name,
                    var: v.0,
                });
            }
            seen[v.0] = true;
            if c != 0.0 {
                clean.push((v, c));
            }
        }
        self.constraints.push(Constraint {
            name,
            terms: clean,
            cmp,
            rhs,
        });
        self.csc = OnceLock::new();
        Ok(())
    }

    /// Evaluates the objective at a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != var_count()`.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.var_count(), "assignment length mismatch");
        self.variables
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Checks whether a full assignment satisfies every bound, constraint,
    /// and integrality requirement within tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != var_count()`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.var_count(), "assignment length mismatch");
        for (v, &x) in self.variables.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if matches!(v.kind, VarKind::Integer | VarKind::Binary) && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, k)| k * values[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Ids of all integer and binary variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Returns a copy of the problem with every integrality requirement
    /// dropped (the LP relaxation).
    pub fn relaxed(&self) -> Problem {
        let mut p = self.clone();
        for v in &mut p.variables {
            v.kind = VarKind::Continuous;
        }
        p
    }

    /// Overrides the bounds of an existing variable (used by
    /// branch-and-bound when branching).
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] for an out-of-range id.
    /// * [`LpError::EmptyDomain`] if the new bounds are empty.
    /// * [`LpError::NotANumber`] if a bound is NaN.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) -> Result<(), LpError> {
        if var.0 >= self.variables.len() {
            return Err(LpError::UnknownVariable {
                var: var.0,
                len: self.variables.len(),
            });
        }
        if lower.is_nan() || upper.is_nan() {
            return Err(LpError::NotANumber {
                context: "bound override",
            });
        }
        if lower > upper {
            return Err(LpError::EmptyDomain {
                name: self.variables[var.0].name.clone(),
                lower,
                upper,
            });
        }
        self.variables[var.0].lower = lower;
        self.variables[var.0].upper = upper;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_variables_of_each_kind() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", -1.0, 1.0, 2.0).unwrap();
        let y = p.add_integer("y", 0.0, 5.0, -1.0).unwrap();
        let z = p.add_binary("z", 0.5).unwrap();
        assert_eq!(p.var_count(), 3);
        assert_eq!(p.variable(x).kind, VarKind::Continuous);
        assert_eq!(p.variable(y).kind, VarKind::Integer);
        assert_eq!(p.variable(z).kind, VarKind::Binary);
        assert_eq!(p.variable(z).upper, 1.0);
        assert_eq!(p.integer_vars(), vec![y, z]);
    }

    #[test]
    fn rejects_bad_variables() {
        let mut p = Problem::minimize();
        assert!(matches!(
            p.add_continuous("x", 2.0, 1.0, 0.0),
            Err(LpError::EmptyDomain { .. })
        ));
        assert!(matches!(
            p.add_continuous("x", f64::NAN, 1.0, 0.0),
            Err(LpError::NotANumber { .. })
        ));
        assert!(matches!(
            p.add_integer("y", 0.0, f64::INFINITY, 0.0),
            Err(LpError::UnboundedInteger { .. })
        ));
    }

    #[test]
    fn rejects_bad_constraints() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 0.0).unwrap();
        assert!(matches!(
            p.add_constraint("c", [(VarId(9), 1.0)], Cmp::Le, 1.0),
            Err(LpError::UnknownVariable { .. })
        ));
        assert!(matches!(
            p.add_constraint("c", [(x, f64::NAN)], Cmp::Le, 1.0),
            Err(LpError::NotANumber { .. })
        ));
        assert!(matches!(
            p.add_constraint("c", [(x, 1.0), (x, 2.0)], Cmp::Le, 1.0),
            Err(LpError::DuplicateTerm { .. })
        ));
        assert!(matches!(
            p.add_constraint("c", [(x, 1.0)], Cmp::Le, f64::INFINITY),
            Err(LpError::NotANumber { .. })
        ));
    }

    #[test]
    fn zero_terms_are_dropped() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 0.0).unwrap();
        let y = p.add_continuous("y", 0.0, 1.0, 0.0).unwrap();
        p.add_constraint("c", [(x, 0.0), (y, 2.0)], Cmp::Le, 1.0)
            .unwrap();
        assert_eq!(p.constraints()[0].terms, vec![(y, 2.0)]);
    }

    #[test]
    fn objective_and_feasibility_evaluation() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 10.0, 1.0).unwrap();
        let y = p.add_binary("y", 3.0).unwrap();
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], Cmp::Le, 5.0)
            .unwrap();
        assert_eq!(p.objective_value(&[2.0, 1.0]), 5.0);
        assert!(p.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[5.0, 1.0], 1e-9)); // violates c
        assert!(!p.is_feasible(&[2.0, 0.5], 1e-9)); // fractional binary
        assert!(!p.is_feasible(&[-1.0, 0.0], 1e-9)); // below lower bound
    }

    #[test]
    fn relaxation_drops_integrality() {
        let mut p = Problem::minimize();
        p.add_binary("y", 1.0).unwrap();
        let r = p.relaxed();
        assert!(r.integer_vars().is_empty());
        assert!(r.is_feasible(&[0.5], 1e-9));
    }

    #[test]
    fn set_bounds_validates() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 0.0).unwrap();
        p.set_bounds(x, 0.5, 0.75).unwrap();
        assert_eq!(p.variable(x).lower, 0.5);
        assert!(matches!(
            p.set_bounds(x, 1.0, 0.0),
            Err(LpError::EmptyDomain { .. })
        ));
        assert!(matches!(
            p.set_bounds(VarId(4), 0.0, 1.0),
            Err(LpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn csc_view_matches_constraints() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 0.0).unwrap();
        let y = p.add_continuous("y", 0.0, 1.0, 0.0).unwrap();
        let z = p.add_continuous("z", 0.0, 1.0, 0.0).unwrap();
        p.add_constraint("c0", [(x, 2.0), (z, -1.0)], Cmp::Le, 1.0)
            .unwrap();
        p.add_constraint("c1", [(y, 3.0)], Cmp::Eq, 2.0).unwrap();
        p.add_constraint("c2", [(x, 1.0), (y, -4.0), (z, 5.0)], Cmp::Ge, 0.0)
            .unwrap();
        let csc = p.csc();
        assert_eq!(csc.nrows(), 3);
        assert_eq!(csc.ncols(), 3);
        assert_eq!(csc.nnz(), 6);
        let col = |j: usize| csc.column(j).collect::<Vec<_>>();
        assert_eq!(col(0), vec![(0, 2.0), (2, 1.0)]);
        assert_eq!(col(1), vec![(1, 3.0), (2, -4.0)]);
        assert_eq!(col(2), vec![(0, -1.0), (2, 5.0)]);
        assert_eq!(csc.column_nnz(1), 2);
    }

    #[test]
    fn csc_view_is_cached_and_shared_across_set_bounds_and_clones() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint("c", [(x, 1.0)], Cmp::Le, 1.0).unwrap();
        let first = p.csc();
        p.set_bounds(x, 0.0, 0.5).unwrap();
        let after_bounds = p.csc();
        assert!(
            Arc::ptr_eq(&first, &after_bounds),
            "set_bounds must keep the view"
        );
        let clone = p.clone();
        assert!(
            Arc::ptr_eq(&first, &clone.csc()),
            "clones must share the view"
        );
    }

    #[test]
    fn csc_view_is_reset_by_structural_mutation() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint("c", [(x, 1.0)], Cmp::Le, 1.0).unwrap();
        let first = p.csc();
        assert_eq!(first.nnz(), 1);
        let y = p.add_continuous("y", 0.0, 1.0, 1.0).unwrap();
        let second = p.csc();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.ncols(), 2);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], Cmp::Le, 2.0)
            .unwrap();
        let third = p.csc();
        assert_eq!(third.nnz(), 3);
        assert_eq!(third.nrows(), 2);
    }

    #[test]
    fn empty_constraint_is_allowed() {
        let mut p = Problem::minimize();
        p.add_constraint("trivial", [], Cmp::Le, 0.0).unwrap();
        assert!(p.is_feasible(&[], 1e-9));
        p.add_constraint("impossible", [], Cmp::Ge, 1.0).unwrap();
        assert!(!p.is_feasible(&[], 1e-9));
    }
}
