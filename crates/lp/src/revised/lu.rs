//! Sparse LU factorization of a simplex basis with Markowitz-style
//! pivoting, plus the FTRAN/BTRAN triangular solves.
//!
//! The factorization is a right-looking, column-oriented Gaussian
//! elimination over dynamic sparse columns. At every step the pivot is
//! chosen to limit fill-in: the sparsest active column, and within it the
//! entry whose row touches the fewest active columns, subject to a
//! relative stability threshold against the column's largest active
//! entry. `L` is stored as per-step multiplier columns in original row
//! space, `U` column-wise in elimination order.

use std::collections::BTreeSet;

/// Relative pivot threshold: an entry qualifies as pivot only if its
/// magnitude is at least this fraction of the column's largest active
/// entry (classic Markowitz compromise between sparsity and stability).
const REL_PIVOT: f64 = 0.1;

/// Entries smaller than this are dropped during elimination.
const DROP_TOL: f64 = 1e-12;

/// Pivots smaller than this make the basis numerically singular.
const SINGULAR_TOL: f64 = 1e-10;

/// LU factors of an `m × m` basis matrix whose columns were given in
/// *basis-position* order. Row/column permutations are implicit in the
/// recorded elimination order.
#[derive(Clone, Debug)]
pub(crate) struct LuFactors {
    m: usize,
    /// `(pivot row, basis position)` of each elimination step.
    perm: Vec<(usize, usize)>,
    /// Per-step `L` multipliers `(row, l)` in original row space.
    lcols: Vec<Vec<(usize, f64)>>,
    /// Per-step off-diagonal `U` entries `(earlier step, u)`.
    ucols: Vec<Vec<(usize, f64)>>,
    /// `U` diagonal per step.
    udiag: Vec<f64>,
    /// Total nonzeros in `L` and `U` (including the diagonal).
    pub nnz: usize,
}

/// Factorizes the basis given as `m` sparse columns (`(row, value)`
/// pairs, one column per basis position). Returns `None` if the matrix is
/// numerically singular.
pub(crate) fn factorize(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<LuFactors> {
    debug_assert_eq!(cols.len(), m);
    // Dynamic sparse working copy: per column, (row -> value) kept as a
    // sorted vec for cheap scans; per active row, the set of active
    // columns containing it.
    let mut work: Vec<Vec<(usize, f64)>> = cols.to_vec();
    let mut row_cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
    for (j, col) in work.iter().enumerate() {
        for &(r, _) in col {
            row_cols[r].insert(j);
        }
    }
    let mut row_active = vec![true; m];
    let mut col_active = vec![true; m];
    let mut row_step = vec![usize::MAX; m];
    // Active-row nonzero count per column, maintained incrementally so
    // pivot-column selection is an O(m) scan.
    let mut col_nnz: Vec<usize> = work.iter().map(Vec::len).collect();

    let mut perm = Vec::with_capacity(m);
    let mut lcols = Vec::with_capacity(m);
    let mut ucols = Vec::with_capacity(m);
    let mut udiag = Vec::with_capacity(m);
    let mut nnz = 0usize;

    for step in 0..m {
        // Pivot column: the sparsest active column (counting active rows).
        let mut best_col: Option<(usize, usize)> = None;
        for j in 0..m {
            if !col_active[j] {
                continue;
            }
            if best_col.is_none_or(|(_, n)| col_nnz[j] < n) {
                best_col = Some((j, col_nnz[j]));
            }
        }
        let (c, _) = best_col?;
        // Pivot row within the column: largest-magnitude fallback, but
        // prefer the fewest-active-columns row among entries passing the
        // relative threshold.
        let col_max = work[c]
            .iter()
            .filter(|&&(r, _)| row_active[r])
            .map(|&(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        if col_max < SINGULAR_TOL {
            return None;
        }
        let mut best_row: Option<(usize, usize, f64)> = None; // (row, row count, |v|)
        for &(r, v) in &work[c] {
            if !row_active[r] || v.abs() < REL_PIVOT * col_max {
                continue;
            }
            let count = row_cols[r].len();
            if best_row.is_none_or(|(_, n, a)| count < n || (count == n && v.abs() > a)) {
                best_row = Some((r, count, v.abs()));
            }
        }
        let (r, _, _) = best_row?;
        let pivot = work[c].iter().find(|&&(row, _)| row == r).unwrap().1;

        // Record U entries (rows already pivoted) and L multipliers
        // (still-active rows) of the pivot column.
        let mut ucol = Vec::new();
        let mut lcol = Vec::new();
        for &(row, v) in &work[c] {
            if row == r {
                continue;
            }
            if row_active[row] {
                lcol.push((row, v / pivot));
            } else {
                ucol.push((row_step[row], v));
            }
        }
        nnz += 1 + ucol.len() + lcol.len();

        // Right-looking update of every other active column touching the
        // pivot row.
        let touched: Vec<usize> = row_cols[r].iter().copied().filter(|&j| j != c).collect();
        for j in touched {
            if !col_active[j] {
                continue;
            }
            let Some(fpos) = work[j].iter().position(|&(row, _)| row == r) else {
                continue;
            };
            let f = work[j][fpos].1;
            if f == 0.0 {
                continue;
            }
            for &(i, l) in &lcol {
                let delta = f * l;
                match work[j].iter().position(|&(row, _)| row == i) {
                    Some(pos) => {
                        work[j][pos].1 -= delta;
                        if work[j][pos].1.abs() < DROP_TOL {
                            work[j].remove(pos);
                            row_cols[i].remove(&j);
                            col_nnz[j] -= 1;
                        }
                    }
                    None => {
                        if delta.abs() >= DROP_TOL {
                            work[j].push((i, -delta));
                            row_cols[i].insert(j);
                            col_nnz[j] += 1;
                        }
                    }
                }
            }
        }

        // Retire the pivot row and column: drop them from the active
        // bookkeeping so Markowitz counts keep meaning "active".
        for &(row, _) in &work[c] {
            if row != r && row_active[row] {
                row_cols[row].remove(&c);
            }
        }
        for &j in &row_cols[r] {
            if col_active[j] && j != c {
                col_nnz[j] -= 1;
            }
        }
        row_active[r] = false;
        col_active[c] = false;
        row_step[r] = step;
        perm.push((r, c));
        lcols.push(lcol);
        ucols.push(ucol);
        udiag.push(pivot);
    }

    Some(LuFactors {
        m,
        perm,
        lcols,
        ucols,
        udiag,
        nnz,
    })
}

impl LuFactors {
    /// Solves `B x = a`. Input `a` is a dense vector in row space; the
    /// result is written into `out`, indexed by basis position. `a` is
    /// consumed as scratch.
    pub fn ftran(&self, a: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(a.len(), self.m);
        debug_assert_eq!(out.len(), self.m);
        // Forward: coordinates in the L column basis.
        for k in 0..self.m {
            let t = a[self.perm[k].0];
            if t != 0.0 {
                for &(i, l) in &self.lcols[k] {
                    a[i] -= l * t;
                }
            }
        }
        // Backward: column-oriented U solve, scattering into basis
        // positions.
        for k in (0..self.m).rev() {
            let (r, pos) = self.perm[k];
            let z = a[r] / self.udiag[k];
            if z != 0.0 {
                for &(j, u) in &self.ucols[k] {
                    a[self.perm[j].0] -= u * z;
                }
            }
            out[pos] = z;
        }
    }

    /// Solves `Bᵀ y = c`. Input `c` is indexed by basis position; the
    /// result is written into `out` in row space. `scratch` must be a
    /// zeroed length-`m` buffer and is returned zeroed-by-overwrite.
    pub fn btran(&self, c: &[f64], scratch: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Forward: Uᵀ is lower triangular in elimination order.
        for k in 0..self.m {
            let mut acc = c[self.perm[k].1];
            for &(j, u) in &self.ucols[k] {
                acc -= u * scratch[j];
            }
            scratch[k] = acc / self.udiag[k];
        }
        // Backward: peel the transposed L ops newest-first.
        for k in 0..self.m {
            out[self.perm[k].0] = scratch[k];
        }
        for k in (0..self.m).rev() {
            let mut acc = 0.0;
            for &(i, l) in &self.lcols[k] {
                acc += l * out[i];
            }
            out[self.perm[k].0] -= acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference multiply `B x` for columns in basis-position order.
    fn mat_vec(m: usize, cols: &[Vec<(usize, f64)>], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (pos, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * x[pos];
            }
        }
        out
    }

    fn mat_t_vec(m: usize, cols: &[Vec<(usize, f64)>], y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (pos, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[pos] += v * y[r];
            }
        }
        out
    }

    /// A deterministic sparse nonsingular test matrix: strong diagonal
    /// plus scattered off-diagonal entries.
    fn test_matrix(m: usize) -> Vec<Vec<(usize, f64)>> {
        (0..m)
            .map(|j| {
                let mut col = vec![(j, 4.0 + (j % 3) as f64)];
                if j > 0 && (j * 7) % 3 != 0 {
                    col.push((j - 1, 1.0 + ((j * 5) % 4) as f64 * 0.5));
                }
                if j + 2 < m && (j * 11) % 4 == 1 {
                    col.push((j + 2, -1.5));
                }
                col.sort_by_key(|&(r, _)| r);
                col
            })
            .collect()
    }

    #[test]
    fn ftran_solves_against_reference() {
        for m in [1, 2, 5, 17, 40] {
            let cols = test_matrix(m);
            let lu = factorize(m, &cols).expect("nonsingular");
            let x_true: Vec<f64> = (0..m).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
            let mut rhs = mat_vec(m, &cols, &x_true);
            let mut x = vec![0.0; m];
            lu.ftran(&mut rhs, &mut x);
            for i in 0..m {
                assert!((x[i] - x_true[i]).abs() < 1e-9, "m={m} i={i}");
            }
        }
    }

    #[test]
    fn btran_solves_against_reference() {
        for m in [1, 2, 5, 17, 40] {
            let cols = test_matrix(m);
            let lu = factorize(m, &cols).expect("nonsingular");
            let y_true: Vec<f64> = (0..m).map(|i| ((i * 5) % 9) as f64 * 0.5 - 2.0).collect();
            let c = mat_t_vec(m, &cols, &y_true);
            let mut scratch = vec![0.0; m];
            let mut y = vec![0.0; m];
            lu.btran(&c, &mut scratch, &mut y);
            for i in 0..m {
                assert!((y[i] - y_true[i]).abs() < 1e-9, "m={m} i={i}");
            }
        }
    }

    #[test]
    fn permuted_identity_and_signs_factorize() {
        // Slack-style basis: ± unit columns in scrambled positions.
        let m = 6;
        let cols: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|j| vec![((j + 3) % m, if j % 2 == 0 { 1.0 } else { -1.0 })])
            .collect();
        let lu = factorize(m, &cols).expect("nonsingular");
        assert_eq!(lu.nnz, m);
        let mut rhs: Vec<f64> = (0..m).map(|i| i as f64 + 1.0).collect();
        let expected = {
            let mut x = vec![0.0; m];
            for (j, col) in cols.iter().enumerate() {
                let (r, v) = col[0];
                x[j] = (r as f64 + 1.0) / v;
            }
            x
        };
        let mut x = vec![0.0; m];
        lu.ftran(&mut rhs, &mut x);
        for i in 0..m {
            assert!((x[i] - expected[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // Two identical columns.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        assert!(factorize(2, &cols).is_none());
        // A structurally empty column.
        let cols = vec![vec![(0, 1.0)], vec![]];
        assert!(factorize(2, &cols).is_none());
    }
}
