//! Sparse revised simplex with bounded variables.
//!
//! Unlike the dense tableau ([`crate::simplex`]), this solver never forms
//! `B⁻¹A`. It keeps the basis as a sparse LU factorization
//! ([`lu`], Markowitz-style pivoting) updated by a product-form eta file,
//! refactorizing every [`REFACTOR_EVERY`] basis changes. Per iteration it
//! runs BTRAN (simplex multipliers), prices the nonbasic columns against
//! the problem's CSC view, FTRANs the entering column, and applies the
//! same bounded-variable ratio test — including bound flips — and
//! Dantzig-then-Bland pricing discipline as the dense oracle.
//!
//! Phase 1 is a *composite* infeasibility minimization: basic variables
//! outside their bounds get cost ∓1 (recomputed every iteration) and the
//! solver minimizes total bound violation. Because that works from any
//! starting basis, a cold start (the all-slack basis) and a warm start
//! from a parent node's [`BasisSnapshot`] are the same algorithm — which
//! is how branch-and-bound reuses bases between parent and child nodes.

mod lu;

use crate::backend::{BasisSnapshot, LpReport, SimplexStats};
use crate::problem::{Cmp, CscMatrix, Problem};
use crate::simplex::{LpOutcome, LpSolution, SimplexConfig};
use crate::standard::{self, StandardForm};
use crate::{LpError, TOL};
use lu::LuFactors;
use std::sync::Arc;

/// Basis changes between refactorizations of the LU factors.
const REFACTOR_EVERY: usize = 64;

/// Bound-violation tolerance: basic values within this of their bounds
/// count as feasible (mirrors the dense path's phase-1 acceptance).
const FEAS: f64 = 1e-6;

/// Eta entries below this are dropped.
const ETA_DROP: f64 = 1e-11;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
}

/// A product-form eta: basis position `pos` was replaced by a column
/// whose FTRAN image had diagonal `diag` and off-diagonals `rest`.
struct Eta {
    pos: usize,
    diag: f64,
    rest: Vec<(usize, f64)>,
}

const NO_POS: usize = usize::MAX;

struct Solver<'a> {
    problem: &'a Problem,
    csc: Arc<CscMatrix>,
    sf: StandardForm,
    m: usize,
    nstruct: usize,
    /// Working columns: structural, then one slack per row.
    ncols: usize,
    span: Vec<f64>,
    /// Phase-2 minimization cost per working column.
    cost: Vec<f64>,
    slack_sign: Vec<f64>,
    /// Adjusted right-hand side (bound shifts folded in).
    rhs: Vec<f64>,
    status: Vec<ColStatus>,
    /// Basis position -> working column.
    basis: Vec<usize>,
    /// Working column -> basis position (or `NO_POS`).
    pos_of: Vec<usize>,
    /// Basic values, by basis position.
    values: Vec<f64>,
    factors: LuFactors,
    etas: Vec<Eta>,
    stats: SimplexStats,
}

/// Solves the LP relaxation of `problem` with the revised simplex.
///
/// Returns `Ok(None)` on numerical failure (singular refactorization or a
/// phase-1 ray, both of which indicate the factors have degraded); the
/// backend retries cold and ultimately falls back to the dense oracle.
///
/// # Errors
///
/// [`LpError::IterationLimit`] if the iteration budget is exhausted.
pub(crate) fn solve_revised(
    problem: &Problem,
    config: &SimplexConfig,
    warm: Option<&BasisSnapshot>,
) -> Result<Option<LpReport>, LpError> {
    let Some(mut solver) = Solver::init(problem, warm) else {
        return Ok(None);
    };
    solver.run(config)
}

impl<'a> Solver<'a> {
    /// Builds the solver state, warm-starting from `warm` when it is
    /// structurally valid and factorizable, else from the all-slack
    /// basis. Returns `None` only if even the slack basis fails to
    /// factorize (impossible in practice — it is diagonal).
    fn init(problem: &'a Problem, warm: Option<&BasisSnapshot>) -> Option<Solver<'a>> {
        let sf = standard::standardize(problem);
        let csc = problem.csc();
        let m = problem.constraint_count();
        let nstruct = sf.nstruct();
        let ncols = nstruct + m;

        let mut span = sf.span.clone();
        let mut cost = sf.cost.clone();
        let mut slack_sign = Vec::with_capacity(m);
        for con in problem.constraints() {
            let (sign, s) = match con.cmp {
                Cmp::Le => (1.0, f64::INFINITY),
                Cmp::Ge => (-1.0, f64::INFINITY),
                Cmp::Eq => (1.0, 0.0),
            };
            slack_sign.push(sign);
            span.push(s);
            cost.push(0.0);
        }
        let rhs = standard::adjusted_rhs(problem, &sf.transforms);

        let mut solver = Solver {
            problem,
            csc,
            sf,
            m,
            nstruct,
            ncols,
            span,
            cost,
            slack_sign,
            rhs,
            status: vec![ColStatus::AtLower; ncols],
            basis: Vec::new(),
            pos_of: vec![NO_POS; ncols],
            values: vec![0.0; m],
            factors: lu::factorize(0, &[])?,
            etas: Vec::new(),
            stats: SimplexStats::default(),
        };

        if let Some(snap) = warm {
            let layout_matches = snap.nstruct == nstruct && snap.ncols == ncols;
            if layout_matches && solver.install_basis(&snap.basic, &snap.at_upper) {
                return Some(solver);
            }
            // Fall through to the cold basis; reset any partial statuses.
            solver.status.fill(ColStatus::AtLower);
            solver.pos_of.fill(NO_POS);
        }
        let slack_basis: Vec<usize> = (0..m).map(|i| nstruct + i).collect();
        if solver.install_basis(&slack_basis, &[]) {
            Some(solver)
        } else {
            None
        }
    }

    /// Installs a basis (and upper-bound statuses), factorizes it, and
    /// refreshes the basic values. Returns `false` if the candidate is
    /// structurally invalid or singular.
    fn install_basis(&mut self, basic: &[usize], at_upper: &[usize]) -> bool {
        if basic.len() != self.m {
            return false;
        }
        let mut seen = vec![false; self.ncols];
        for &j in basic {
            if j >= self.ncols || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        for &j in at_upper {
            if j >= self.ncols || seen[j] || !self.span[j].is_finite() {
                return false;
            }
        }
        let cols: Vec<Vec<(usize, f64)>> = basic.iter().map(|&j| self.sparse_column(j)).collect();
        let Some(factors) = lu::factorize(self.m, &cols) else {
            return false;
        };
        self.stats.fill_in = self.stats.fill_in.max(factors.nnz);
        self.factors = factors;
        self.etas.clear();
        self.basis = basic.to_vec();
        for (p, &j) in basic.iter().enumerate() {
            self.status[j] = ColStatus::Basic;
            self.pos_of[j] = p;
        }
        for &j in at_upper {
            self.status[j] = ColStatus::AtUpper;
        }
        self.refresh_values();
        true
    }

    /// Applies `f(row, coefficient)` over the entries of working column
    /// `j`.
    fn for_each_entry(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.nstruct {
            let (var, sign) = self.sf.src[j];
            for (r, v) in self.csc.column(var) {
                f(r, sign * v);
            }
        } else {
            let i = j - self.nstruct;
            f(i, self.slack_sign[i]);
        }
    }

    fn sparse_column(&self, j: usize) -> Vec<(usize, f64)> {
        let mut col = Vec::new();
        self.for_each_entry(j, |r, v| col.push((r, v)));
        col
    }

    /// `y·A_j` against a row-space vector.
    fn dot_column(&self, j: usize, y: &[f64]) -> f64 {
        let mut acc = 0.0;
        self.for_each_entry(j, |r, v| acc += y[r] * v);
        acc
    }

    /// FTRAN: `B⁻¹ a` for a row-space vector, through LU then the eta
    /// file oldest-first. Result indexed by basis position.
    fn ftran(&self, a: &mut [f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.m];
        self.factors.ftran(a, &mut out);
        for eta in &self.etas {
            let xp = out[eta.pos] / eta.diag;
            if xp != 0.0 {
                for &(i, v) in &eta.rest {
                    out[i] -= v * xp;
                }
            }
            out[eta.pos] = xp;
        }
        out
    }

    /// BTRAN: `B⁻ᵀ c` for a basis-position vector, through the eta file
    /// newest-first then LU. Result in row space.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut c = c.to_vec();
        for eta in self.etas.iter().rev() {
            let mut acc = c[eta.pos];
            for &(i, v) in &eta.rest {
                acc -= v * c[i];
            }
            c[eta.pos] = acc / eta.diag;
        }
        let mut scratch = vec![0.0; self.m];
        let mut out = vec![0.0; self.m];
        self.factors.btran(&c, &mut scratch, &mut out);
        out
    }

    /// Recomputes every basic value from the right-hand side and the
    /// nonbasic columns at their upper bounds.
    fn refresh_values(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.ncols {
            if self.status[j] == ColStatus::AtUpper {
                let s = self.span[j];
                self.for_each_entry(j, |row, v| r[row] -= v * s);
            }
        }
        self.values = self.ftran(&mut r);
    }

    /// Refactorizes the current basis from scratch. `false` on a
    /// (numerically) singular basis.
    fn refactorize(&mut self) -> bool {
        let cols: Vec<Vec<(usize, f64)>> =
            self.basis.iter().map(|&j| self.sparse_column(j)).collect();
        let Some(factors) = lu::factorize(self.m, &cols) else {
            return false;
        };
        self.stats.refactorizations += 1;
        self.stats.fill_in = self.stats.fill_in.max(factors.nnz);
        self.factors = factors;
        self.etas.clear();
        self.refresh_values();
        true
    }

    /// Composite phase-1 costs of the basic variables (∓1 per violated
    /// bound) and the total violation.
    fn infeasibility(&self) -> (Vec<f64>, f64) {
        let mut cb = vec![0.0; self.m];
        let mut total = 0.0;
        for (p, c) in cb.iter_mut().enumerate() {
            let x = self.values[p];
            let s = self.span[self.basis[p]];
            if x < -FEAS {
                *c = -1.0;
                total += -x;
            } else if x > s + FEAS {
                *c = 1.0;
                total += x - s;
            }
        }
        (cb, total)
    }

    /// Picks an entering column given the simplex multipliers, or `None`
    /// at (phase-local) optimality.
    fn choose_entering(&self, y: &[f64], phase1: bool, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.ncols {
            if self.status[j] == ColStatus::Basic || self.span[j] <= TOL {
                continue;
            }
            let cj = if phase1 { 0.0 } else { self.cost[j] };
            let rc = cj - self.dot_column(j, y);
            let violation = match self.status[j] {
                ColStatus::AtLower => -rc,
                ColStatus::AtUpper => rc,
                ColStatus::Basic => unreachable!(),
            };
            if violation > TOL {
                if bland {
                    return Some(j);
                }
                if best.is_none_or(|(_, v)| violation > v) {
                    best = Some((j, violation));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn run(&mut self, config: &SimplexConfig) -> Result<Option<LpReport>, LpError> {
        let mut iterations = 0usize;
        loop {
            let (cb_phase1, infeas) = self.infeasibility();
            let phase1 = infeas > 0.0;
            let cb = if phase1 {
                cb_phase1
            } else {
                self.basis.iter().map(|&j| self.cost[j]).collect()
            };
            let y = self.btran(&cb);
            let bland = iterations >= config.bland_after;
            let Some(e) = self.choose_entering(&y, phase1, bland) else {
                if phase1 {
                    return Ok(Some(self.report(LpOutcome::Infeasible, false)));
                }
                return Ok(Some(self.optimal_report()));
            };
            if iterations >= config.max_iterations {
                return Err(LpError::IterationLimit { iterations });
            }
            iterations += 1;
            if phase1 {
                self.stats.phase1_iterations += 1;
            } else {
                self.stats.phase2_iterations += 1;
            }

            let mut a = vec![0.0; self.m];
            self.for_each_entry(e, |r, v| a[r] += v);
            let d = self.ftran(&mut a);
            match self.ratio_test(e, &d) {
                RatioOutcome::Unbounded => {
                    if phase1 {
                        // A phase-1 ray contradicts the bounded-below
                        // composite objective: the factors have degraded.
                        return Ok(None);
                    }
                    return Ok(Some(self.report(LpOutcome::Unbounded, false)));
                }
                RatioOutcome::BoundFlip => {
                    let t = self.span[e];
                    let dir = if self.status[e] == ColStatus::AtLower {
                        1.0
                    } else {
                        -1.0
                    };
                    for (v, dp) in self.values.iter_mut().zip(&d) {
                        *v -= dp * dir * t;
                    }
                    self.status[e] = match self.status[e] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        ColStatus::Basic => unreachable!(),
                    };
                }
                RatioOutcome::Pivot {
                    row: r,
                    step: t,
                    leaver_status,
                } => {
                    let dir = if self.status[e] == ColStatus::AtLower {
                        1.0
                    } else {
                        -1.0
                    };
                    let entering_value = if dir > 0.0 { t } else { self.span[e] - t };
                    for (p, (v, dp)) in self.values.iter_mut().zip(&d).enumerate() {
                        if p != r {
                            *v -= dp * dir * t;
                        }
                    }
                    let old = self.basis[r];
                    self.status[old] = leaver_status;
                    self.pos_of[old] = NO_POS;
                    self.basis[r] = e;
                    self.status[e] = ColStatus::Basic;
                    self.pos_of[e] = r;
                    self.values[r] = entering_value;
                    let rest: Vec<(usize, f64)> = d
                        .iter()
                        .enumerate()
                        .filter(|&(p, &v)| p != r && v.abs() >= ETA_DROP)
                        .map(|(p, &v)| (p, v))
                        .collect();
                    self.etas.push(Eta {
                        pos: r,
                        diag: d[r],
                        rest,
                    });
                    if self.etas.len() >= REFACTOR_EVERY && !self.refactorize() {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// The bounded-variable ratio test over the FTRAN image `d` of the
    /// entering column. Mirrors the dense path, extended with the
    /// composite phase-1 rule: a basic variable outside its bounds blocks
    /// when it *reaches* the violated bound and leaves there.
    fn ratio_test(&self, e: usize, d: &[f64]) -> RatioOutcome {
        let dir = if self.status[e] == ColStatus::AtLower {
            1.0
        } else {
            -1.0
        };
        let mut t_best = self.span[e];
        let mut leave: Option<(usize, ColStatus)> = None;
        const TIE: f64 = 1e-10;
        for (p, &dp) in d.iter().enumerate() {
            let coef = dp * dir;
            if coef.abs() <= TOL {
                continue;
            }
            let x = self.values[p];
            let s = self.span[self.basis[p]];
            let (ratio, leaver_status) = if x < -FEAS {
                // Infeasible below: blocks at its lower bound only while
                // increasing towards it.
                if coef < -TOL {
                    (-x / -coef, ColStatus::AtLower)
                } else {
                    continue;
                }
            } else if x > s + FEAS {
                // Infeasible above: blocks at its upper bound only while
                // decreasing towards it.
                if coef > TOL {
                    ((x - s) / coef, ColStatus::AtUpper)
                } else {
                    continue;
                }
            } else if coef > TOL {
                (x.max(0.0) / coef, ColStatus::AtLower)
            } else {
                if !s.is_finite() {
                    continue;
                }
                ((s - x).max(0.0) / -coef, ColStatus::AtUpper)
            };
            if ratio < t_best - TIE {
                t_best = ratio;
                leave = Some((p, leaver_status));
            } else if ratio <= t_best + TIE {
                // Bland tie-break among minimum-ratio rows: smallest
                // basic working-column id leaves.
                match leave {
                    Some((q, _)) if self.basis[p] < self.basis[q] => {
                        t_best = t_best.min(ratio);
                        leave = Some((p, leaver_status));
                    }
                    None if ratio <= t_best => {
                        t_best = ratio;
                        leave = Some((p, leaver_status));
                    }
                    _ => {}
                }
            }
        }
        if t_best.is_infinite() {
            return RatioOutcome::Unbounded;
        }
        match leave {
            None => RatioOutcome::BoundFlip,
            Some((row, leaver_status)) => RatioOutcome::Pivot {
                row,
                step: t_best,
                leaver_status,
            },
        }
    }

    fn optimal_report(&self) -> LpReport {
        let col_value = |j: usize| -> f64 {
            match self.status[j] {
                ColStatus::Basic => self.values[self.pos_of[j]],
                ColStatus::AtLower => 0.0,
                ColStatus::AtUpper => self.span[j],
            }
        };
        let values = standard::reconstruct(self.problem, &self.sf.transforms, col_value);
        let objective = self.problem.objective_value(&values);
        self.report(LpOutcome::Optimal(LpSolution::new(objective, values)), true)
    }

    fn report(&self, outcome: LpOutcome, with_basis: bool) -> LpReport {
        let basis = with_basis.then(|| {
            let at_upper: Vec<usize> = (0..self.ncols)
                .filter(|&j| self.status[j] == ColStatus::AtUpper)
                .collect();
            Arc::new(BasisSnapshot {
                nstruct: self.nstruct,
                ncols: self.ncols,
                basic: self.basis.clone(),
                at_upper,
            })
        });
        LpReport {
            outcome,
            stats: self.stats,
            basis,
        }
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip,
    Pivot {
        row: usize,
        step: f64,
        leaver_status: ColStatus,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LpBackend, RevisedBackend};
    use crate::problem::Problem;

    fn solve(p: &Problem) -> LpReport {
        RevisedBackend
            .solve(p, &SimplexConfig::default(), None)
            .unwrap()
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 3.0).unwrap();
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 5.0).unwrap();
        p.add_constraint("c1", [(x, 1.0)], Cmp::Le, 4.0).unwrap();
        p.add_constraint("c2", [(y, 2.0)], Cmp::Le, 12.0).unwrap();
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], Cmp::Le, 18.0)
            .unwrap();
        let rep = solve(&p);
        let s = rep.outcome.solution().expect("optimal");
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
        assert!(rep.basis.is_some());
    }

    #[test]
    fn minimization_with_ge_and_eq() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 2.0).unwrap();
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 3.0).unwrap();
        p.add_constraint("sum", [(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0)
            .unwrap();
        p.add_constraint("xmin", [(x, 1.0)], Cmp::Ge, 3.0).unwrap();
        p.add_constraint("ymin", [(y, 1.0)], Cmp::Ge, 2.0).unwrap();
        let rep = solve(&p);
        let s = rep.outcome.solution().expect("optimal");
        assert_close(s.objective, 22.0);
        assert_close(s.value(x), 8.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn detects_infeasibility_and_unboundedness() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint("hi", [(x, 1.0)], Cmp::Ge, 2.0).unwrap();
        assert!(matches!(solve(&p).outcome, LpOutcome::Infeasible));

        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint("lo", [(x, 1.0)], Cmp::Ge, 1.0).unwrap();
        assert!(matches!(solve(&p).outcome, LpOutcome::Unbounded));
    }

    #[test]
    fn bound_flips_without_constraints() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", -3.0, 7.0, -1.0).unwrap();
        let y = p.add_continuous("y", -4.0, 9.0, 2.0).unwrap();
        let rep = solve(&p);
        let s = rep.outcome.solution().expect("optimal");
        assert_close(s.value(x), 7.0);
        assert_close(s.value(y), -4.0);
        assert_close(s.objective, -15.0);
    }

    #[test]
    fn mirrored_and_free_variables() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", f64::NEG_INFINITY, 4.0, 1.0).unwrap();
        let rep = solve(&p);
        assert_close(rep.outcome.solution().expect("optimal").value(x), 4.0);

        let mut p = Problem::minimize();
        let x = p
            .add_continuous("x", f64::NEG_INFINITY, f64::INFINITY, 1.0)
            .unwrap();
        p.add_constraint("lo", [(x, 1.0)], Cmp::Ge, -7.0).unwrap();
        let rep = solve(&p);
        assert_close(rep.outcome.solution().expect("optimal").value(x), -7.0);
    }

    #[test]
    fn equality_with_negative_rhs() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", -10.0, 10.0, 1.0).unwrap();
        p.add_constraint("eq", [(x, 1.0)], Cmp::Eq, -4.0).unwrap();
        let rep = solve(&p);
        assert_close(rep.outcome.solution().expect("optimal").value(x), -4.0);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        let mut p = Problem::minimize();
        let x = p.add_continuous("x", 0.0, 10.0, 1.0).unwrap();
        let y = p.add_continuous("y", 0.0, 10.0, 1.0).unwrap();
        p.add_constraint("e1", [(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0)
            .unwrap();
        p.add_constraint("e2", [(x, 2.0), (y, 2.0)], Cmp::Eq, 8.0)
            .unwrap();
        let rep = solve(&p);
        assert_close(rep.outcome.solution().expect("optimal").objective, 4.0);
    }

    #[test]
    fn warm_start_from_own_basis_resolves_in_zero_phase1_pivots() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 3.0).unwrap();
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 5.0).unwrap();
        p.add_constraint("c1", [(x, 1.0)], Cmp::Le, 4.0).unwrap();
        p.add_constraint("c2", [(y, 2.0)], Cmp::Le, 12.0).unwrap();
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], Cmp::Le, 18.0)
            .unwrap();
        let first = solve(&p);
        let basis = first.basis.clone().unwrap();
        let again = RevisedBackend
            .solve(&p, &SimplexConfig::default(), Some(&basis))
            .unwrap();
        let s = again.outcome.solution().expect("optimal");
        assert_close(s.objective, 36.0);
        assert_eq!(
            again.stats.iterations(),
            0,
            "optimal basis must be re-certified pivot-free"
        );
    }

    #[test]
    fn warm_start_survives_bound_tightening() {
        // Branch-and-bound's move: same problem, tighter variable bound.
        let mut p = Problem::maximize();
        let x = p.add_integer("x", 0.0, 10.0, 1.0).unwrap();
        let y = p.add_integer("y", 0.0, 10.0, 1.0).unwrap();
        p.add_constraint("c1", [(x, 2.0), (y, 1.0)], Cmp::Le, 5.5)
            .unwrap();
        p.add_constraint("c2", [(x, 1.0), (y, 2.0)], Cmp::Le, 5.5)
            .unwrap();
        let relaxed = p.relaxed();
        let parent = solve(&relaxed);
        let basis = parent.basis.clone().unwrap();
        let mut child = relaxed.clone();
        child.set_bounds(x, 0.0, 1.0).unwrap();
        let rep = RevisedBackend
            .solve(&child, &SimplexConfig::default(), Some(&basis))
            .unwrap();
        let s = rep.outcome.solution().expect("optimal");
        assert!(s.value(x) <= 1.0 + 1e-9);
        assert!(child.is_feasible(s.values(), 1e-6));
        // The warm basis must beat a cold start on work: the parent basis
        // is one bound change away from child-optimal.
        let cold = solve(&child);
        assert_close(s.objective, cold.outcome.solution().unwrap().objective);
    }

    #[test]
    fn stale_snapshot_from_a_different_problem_falls_back_cold() {
        let mut small = Problem::minimize();
        let x = small.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        small.add_constraint("c", [(x, 1.0)], Cmp::Le, 1.0).unwrap();
        let snap = solve(&small).basis.unwrap();

        let mut big = Problem::maximize();
        let a = big.add_continuous("a", 0.0, 5.0, 1.0).unwrap();
        let b = big.add_continuous("b", 0.0, 5.0, 1.0).unwrap();
        big.add_constraint("c1", [(a, 1.0), (b, 1.0)], Cmp::Le, 6.0)
            .unwrap();
        big.add_constraint("c2", [(a, 1.0)], Cmp::Le, 4.0).unwrap();
        let rep = RevisedBackend
            .solve(&big, &SimplexConfig::default(), Some(&snap))
            .unwrap();
        assert_close(rep.outcome.solution().expect("optimal").objective, 6.0);
    }

    #[test]
    fn refactorization_kicks_in_on_long_runs() {
        // 100 Ge rows each force a phase-1 pivot (the slack basis starts
        // every surplus negative), crossing the refactorization threshold.
        let n = 100;
        let mut p = Problem::minimize();
        let xs: Vec<_> = (0..n)
            .map(|i| {
                p.add_continuous(format!("x{i}"), 0.0, f64::INFINITY, 1.0)
                    .unwrap()
            })
            .collect();
        let mut expected = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            let b = (i + 1) as f64;
            p.add_constraint(format!("lo{i}"), [(x, 1.0)], Cmp::Ge, b)
                .unwrap();
            expected += b;
        }
        let rep = solve(&p);
        let s = rep.outcome.solution().expect("optimal");
        assert!((s.objective - expected).abs() / expected < 1e-9);
        assert!(
            rep.stats.iterations() >= n,
            "every row needs a pivot, got {:?}",
            rep.stats
        );
        assert!(
            rep.stats.refactorizations >= 1,
            "expected at least one refactorization, got {:?}",
            rep.stats
        );
        assert!(rep.stats.fill_in > 0);
    }

    #[test]
    fn fixed_variables_are_honored() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 2.0, 2.0, 10.0).unwrap();
        let y = p.add_continuous("y", 0.0, 5.0, 1.0).unwrap();
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)
            .unwrap();
        let rep = solve(&p);
        let s = rep.outcome.solution().expect("optimal");
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = Problem::minimize();
        let rep = solve(&p);
        let s = rep.outcome.solution().expect("optimal");
        assert_eq!(s.values().len(), 0);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = Problem::maximize();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 3.0).unwrap();
        p.add_constraint("c", [(x, 3.0)], Cmp::Le, 18.0).unwrap();
        let cfg = SimplexConfig {
            max_iterations: 0,
            bland_after: 0,
        };
        assert!(matches!(
            solve_revised(&p, &cfg, None),
            Err(LpError::IterationLimit { .. })
        ));
    }
}
