//! Shared standard-form machinery for the simplex backends.
//!
//! Both the dense tableau ([`crate::simplex`]) and the sparse revised
//! simplex ([`crate::revised`]) rewrite every original variable into one or
//! two non-negative *structural columns* with an optional finite span
//! (shifted upper bound). Keeping the rewrite in one place guarantees the
//! backends agree on variable handling, which the differential test suite
//! then pins down end to end.

use crate::problem::{ObjectiveSense, Problem};

/// How an original variable was rewritten into non-negative columns.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Transform {
    /// `x = lower + col`, column bounded by `[0, upper - lower]`.
    Shift { col: usize, lower: f64 },
    /// `x = upper - col` for `(-inf, upper]` variables.
    Mirror { col: usize, upper: f64 },
    /// `x = pos - neg` for free variables.
    Split { pos: usize, neg: usize },
}

/// The structural-column layout of a problem: per-variable transforms plus
/// per-column span, minimization cost, and source `(variable, sign)`.
#[derive(Clone, Debug)]
pub(crate) struct StandardForm {
    pub transforms: Vec<Transform>,
    /// Upper bound of each structural column's shifted domain (`inf` if none).
    pub span: Vec<f64>,
    /// Minimization-sense objective coefficient of each structural column.
    pub cost: Vec<f64>,
    /// `(original variable index, sign)` feeding each structural column.
    pub src: Vec<(usize, f64)>,
}

impl StandardForm {
    /// Number of structural columns.
    pub fn nstruct(&self) -> usize {
        self.span.len()
    }
}

/// Builds the structural-column layout of `problem`.
///
/// The layout depends only on which bounds are finite, so branch-and-bound
/// nodes that merely tighten finite integer bounds keep identical column
/// ids — the property basis snapshots rely on.
pub(crate) fn standardize(problem: &Problem) -> StandardForm {
    let minimize = problem.sense() == ObjectiveSense::Minimize;
    let mut transforms = Vec::with_capacity(problem.var_count());
    let mut span = Vec::new();
    let mut cost = Vec::new();
    let mut src = Vec::new();
    for (vi, v) in problem.variables().iter().enumerate() {
        let c = if minimize { v.objective } else { -v.objective };
        if v.lower.is_finite() {
            transforms.push(Transform::Shift {
                col: span.len(),
                lower: v.lower,
            });
            span.push(v.upper - v.lower);
            cost.push(c);
            src.push((vi, 1.0));
        } else if v.upper.is_finite() {
            transforms.push(Transform::Mirror {
                col: span.len(),
                upper: v.upper,
            });
            span.push(f64::INFINITY);
            cost.push(-c);
            src.push((vi, -1.0));
        } else {
            transforms.push(Transform::Split {
                pos: span.len(),
                neg: span.len() + 1,
            });
            span.push(f64::INFINITY);
            cost.push(c);
            src.push((vi, 1.0));
            span.push(f64::INFINITY);
            cost.push(-c);
            src.push((vi, -1.0));
        }
    }
    StandardForm {
        transforms,
        span,
        cost,
        src,
    }
}

/// Per-row right-hand side after folding the bound shifts of every
/// variable into constants (`rhs' = rhs - Σ c·lower - Σ c·upper` for
/// shifted / mirrored terms respectively).
pub(crate) fn adjusted_rhs(problem: &Problem, transforms: &[Transform]) -> Vec<f64> {
    problem
        .constraints()
        .iter()
        .map(|con| {
            let mut rhs = con.rhs;
            for &(v, c) in &con.terms {
                match transforms[v.0] {
                    Transform::Shift { lower, .. } => rhs -= c * lower,
                    Transform::Mirror { upper, .. } => rhs -= c * upper,
                    Transform::Split { .. } => {}
                }
            }
            rhs
        })
        .collect()
}

/// Maps structural-column values back to original-variable values,
/// clamping round-off noise into each variable's domain.
pub(crate) fn reconstruct(
    problem: &Problem,
    transforms: &[Transform],
    col_value: impl Fn(usize) -> f64,
) -> Vec<f64> {
    let mut values = Vec::with_capacity(problem.var_count());
    for tr in transforms {
        let x = match *tr {
            Transform::Shift { col, lower } => lower + col_value(col),
            Transform::Mirror { col, upper } => upper - col_value(col),
            Transform::Split { pos, neg } => col_value(pos) - col_value(neg),
        };
        values.push(x);
    }
    for (v, x) in problem.variables().iter().zip(values.iter_mut()) {
        *x = x.clamp(v.lower, v.upper);
    }
    values
}
