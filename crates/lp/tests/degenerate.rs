//! Degenerate-pivot regression tests.
//!
//! Beale's example makes Dantzig-rule simplex cycle forever through six
//! degenerate bases; an all-zero right-hand side makes every phase-1 basis
//! degenerate from the start. Both backends must terminate at the optimum
//! even with Bland's rule forced from the first pivot.

use sft_lp::{Cmp, DenseBackend, LpBackend, LpOutcome, Problem, RevisedBackend, SimplexConfig};

fn backends() -> [(&'static str, &'static dyn LpBackend); 2] {
    [("dense", &DenseBackend), ("revised", &RevisedBackend)]
}

/// Solves with the given config and asserts an optimal outcome close to
/// `expected` on both backends.
fn assert_optimum(problem: &Problem, config: &SimplexConfig, expected: f64) {
    for (name, backend) in backends() {
        let report = backend.solve(problem, config, None).unwrap();
        let LpOutcome::Optimal(sol) = report.outcome else {
            panic!("{name}: expected Optimal, got {:?}", report.outcome);
        };
        assert!(
            (sol.objective - expected).abs() < 1e-6,
            "{name}: objective {} (expected {expected})",
            sol.objective
        );
        assert!(
            problem.is_feasible(sol.values(), 1e-6),
            "{name}: optimum violates constraints"
        );
    }
}

/// Beale (1955): minimize -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4 over two
/// degenerate rows and x3 <= 1. The optimum is -0.05 at (0.04, 0, 1, 0);
/// Dantzig pricing with an unlucky tie-break cycles on it forever.
fn beale() -> Problem {
    let mut p = Problem::minimize();
    let x1 = p.add_continuous("x1", 0.0, f64::INFINITY, -0.75).unwrap();
    let x2 = p.add_continuous("x2", 0.0, f64::INFINITY, 150.0).unwrap();
    let x3 = p.add_continuous("x3", 0.0, f64::INFINITY, -0.02).unwrap();
    let x4 = p.add_continuous("x4", 0.0, f64::INFINITY, 6.0).unwrap();
    p.add_constraint(
        "r1",
        [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Cmp::Le,
        0.0,
    )
    .unwrap();
    p.add_constraint(
        "r2",
        [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Cmp::Le,
        0.0,
    )
    .unwrap();
    p.add_constraint("r3", [(x3, 1.0)], Cmp::Le, 1.0).unwrap();
    p
}

/// Every constraint has rhs 0, so the all-slack start is fully degenerate
/// and phase 1 must pivot through zero-step bases without stalling.
fn zero_rhs() -> Problem {
    let mut p = Problem::minimize();
    let x1 = p.add_continuous("x1", 0.0, 1.0, -1.0).unwrap();
    let x2 = p.add_continuous("x2", 0.0, 1.0, -1.0).unwrap();
    let x3 = p.add_continuous("x3", 0.0, 1.0, 0.5).unwrap();
    p.add_constraint("balance", [(x1, 1.0), (x2, -1.0)], Cmp::Eq, 0.0)
        .unwrap();
    p.add_constraint("split", [(x1, 1.0), (x2, 1.0), (x3, -2.0)], Cmp::Eq, 0.0)
        .unwrap();
    p.add_constraint("cap", [(x1, 1.0), (x3, -1.0)], Cmp::Ge, 0.0)
        .unwrap();
    p
}

#[test]
fn beale_terminates_under_default_pricing() {
    assert_optimum(&beale(), &SimplexConfig::default(), -0.05);
}

#[test]
fn beale_terminates_with_bland_from_the_first_pivot() {
    let config = SimplexConfig {
        bland_after: 0,
        ..SimplexConfig::default()
    };
    assert_optimum(&beale(), &config, -0.05);
}

#[test]
fn all_zero_rhs_phase1_terminates_on_both_backends() {
    // Optimum: x1 = x2 = 1 forces x3 = 1; objective -1 - 1 + 0.5 = -1.5.
    assert_optimum(&zero_rhs(), &SimplexConfig::default(), -1.5);
    let bland = SimplexConfig {
        bland_after: 0,
        ..SimplexConfig::default()
    };
    assert_optimum(&zero_rhs(), &bland, -1.5);
}

#[test]
fn tight_iteration_budget_is_reported_not_looped() {
    // One pivot is never enough for Beale; both backends must come back
    // with the iteration-limit error rather than spinning.
    let config = SimplexConfig {
        max_iterations: 1,
        ..SimplexConfig::default()
    };
    for (name, backend) in backends() {
        let err = backend.solve(&beale(), &config, None);
        assert!(err.is_err(), "{name}: expected IterationLimit");
    }
}
