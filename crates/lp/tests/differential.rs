//! Differential tests: the sparse revised simplex against the dense
//! tableau oracle.
//!
//! Two sources of problems:
//!
//! * random bounded-variable LPs with every bound shape (boxed, one-sided,
//!   free) and every comparison sense, so Infeasible and Unbounded
//!   outcomes occur alongside Optimal ones;
//! * real `sft-core` ILP exports committed under `tests/corpus/`
//!   (regenerate with `cargo run -p sft-experiments --bin export_corpus`).
//!
//! Both backends must agree on the outcome class and, when optimal, on the
//! objective to within `MIP_TOL`.

use proptest::prelude::*;
use sft_graph::numeric::MIP_TOL;
use sft_lp::{
    solve_mip, BackendChoice, Cmp, DenseBackend, LpBackend, LpOutcome, MipConfig, MipStatus,
    Problem, RevisedBackend, SimplexConfig, VarId,
};

/// A random LP with heterogeneous bounds and mixed constraint senses.
#[derive(Clone, Debug)]
struct RandomLp {
    maximize: bool,
    objective: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

impl RandomLp {
    fn build(&self) -> Problem {
        let mut p = if self.maximize {
            Problem::maximize()
        } else {
            Problem::minimize()
        };
        let xs: Vec<VarId> = self
            .objective
            .iter()
            .zip(&self.bounds)
            .enumerate()
            .map(|(i, (&c, &(lo, up)))| p.add_continuous(format!("x{i}"), lo, up, c).unwrap())
            .collect();
        for (r, (coefs, cmp, rhs)) in self.rows.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = xs
                .iter()
                .zip(coefs)
                .filter(|(_, &c)| c != 0.0)
                .map(|(&v, &c)| (v, c))
                .collect();
            if terms.is_empty() {
                continue;
            }
            p.add_constraint(format!("r{r}"), terms, *cmp, *rhs)
                .unwrap();
        }
        p
    }
}

/// One variable's bounds: boxed, lower-only, upper-only, or free.
fn arb_bound() -> impl Strategy<Value = (f64, f64)> {
    (0u8..4, -4.0f64..4.0, 0.5f64..8.0).prop_map(|(shape, lo, span)| match shape {
        0 => (lo, lo + span),
        1 => (lo, f64::INFINITY),
        2 => (f64::NEG_INFINITY, lo + span),
        _ => (f64::NEG_INFINITY, f64::INFINITY),
    })
}

fn arb_cmp() -> impl Strategy<Value = Cmp> {
    (0u8..3).prop_map(|c| match c {
        0 => Cmp::Le,
        1 => Cmp::Ge,
        _ => Cmp::Eq,
    })
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..8, 1usize..7, any::<bool>()).prop_flat_map(|(nv, nr, maximize)| {
        let obj = proptest::collection::vec(-5.0f64..5.0, nv);
        let bounds = proptest::collection::vec(arb_bound(), nv);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(-3.0f64..3.0, nv),
                arb_cmp(),
                -10.0f64..10.0,
            ),
            nr,
        );
        (obj, bounds, rows).prop_map(move |(objective, bounds, rows)| RandomLp {
            maximize,
            objective,
            bounds,
            rows,
        })
    })
}

fn class(outcome: &LpOutcome) -> &'static str {
    match outcome {
        LpOutcome::Optimal(_) => "optimal",
        LpOutcome::Infeasible => "infeasible",
        LpOutcome::Unbounded => "unbounded",
    }
}

/// Solves with both backends and checks class + objective agreement.
fn assert_backends_agree(problem: &Problem, context: &str) -> Result<(), TestCaseError> {
    let config = SimplexConfig::default();
    let dense = DenseBackend.solve(problem, &config, None).unwrap().outcome;
    let revised = RevisedBackend
        .solve(problem, &config, None)
        .unwrap()
        .outcome;
    prop_assert_eq!(
        class(&dense),
        class(&revised),
        "{}: dense {:?} vs revised {:?}",
        context,
        dense,
        revised
    );
    if let (LpOutcome::Optimal(d), LpOutcome::Optimal(r)) = (&dense, &revised) {
        let tol = MIP_TOL * (1.0 + d.objective.abs());
        prop_assert!(
            (d.objective - r.objective).abs() <= tol,
            "{}: dense {} vs revised {}",
            context,
            d.objective,
            r.objective
        );
        prop_assert!(
            problem.is_feasible(r.values(), 1e-6),
            "{}: revised optimum violates constraints",
            context
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn revised_matches_dense_on_random_lps(lp in arb_lp()) {
        assert_backends_agree(&lp.build(), "random LP")?;
    }
}

/// Real ILP exports: the paper model (1a)–(1g) on reduced Palmetto
/// instances of increasing size.
const CORPUS: &[(&str, &str)] = &[
    (
        "palmetto08_d2_k1",
        include_str!("corpus/palmetto08_d2_k1.lp"),
    ),
    (
        "palmetto10_d2_k2",
        include_str!("corpus/palmetto10_d2_k2.lp"),
    ),
    (
        "palmetto10_d3_k1",
        include_str!("corpus/palmetto10_d3_k1.lp"),
    ),
    (
        "palmetto12_d3_k2",
        include_str!("corpus/palmetto12_d3_k2.lp"),
    ),
    (
        "palmetto14_d4_k2",
        include_str!("corpus/palmetto14_d4_k2.lp"),
    ),
];

#[test]
fn corpus_lp_relaxations_match_the_oracle() {
    for (name, text) in CORPUS {
        let problem = sft_lp::import::from_lp_format(text)
            .unwrap_or_else(|e| panic!("{name}: corpus file does not parse: {e}"));
        assert!(
            problem.var_count() > 50,
            "{name}: corpus instance suspiciously small"
        );
        let relaxed = problem.relaxed();
        assert_backends_agree(&relaxed, name).unwrap();
    }
}

#[test]
fn corpus_mip_backends_agree() {
    let problem = sft_lp::import::from_lp_format(CORPUS[0].1).unwrap();
    let mut objectives = Vec::new();
    for backend in [BackendChoice::Dense, BackendChoice::Revised] {
        let out = solve_mip(
            &problem,
            &MipConfig {
                backend,
                max_nodes: 20_000,
                ..MipConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.status, MipStatus::Optimal, "{backend:?}");
        let best = out.best.expect("optimal MIP has an incumbent");
        assert!(problem.is_feasible(best.values(), MIP_TOL), "{backend:?}");
        objectives.push(best.objective);
    }
    assert!(
        (objectives[0] - objectives[1]).abs() <= MIP_TOL * (1.0 + objectives[0].abs()),
        "MIP optima diverge: {objectives:?}"
    );
}
