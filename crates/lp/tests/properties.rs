//! Property-based tests for the LP / MILP substrate.

use proptest::prelude::*;
use sft_lp::{solve_lp, solve_mip, Cmp, LpOutcome, MipConfig, MipStatus, Problem, VarId};

/// A random bounded LP in `vars` variables with `rows` <= constraints.
/// All variables in [0, ub]; coefficients and rhs kept small and tame.
#[derive(Clone, Debug)]
struct RandomLp {
    objective: Vec<f64>,
    upper: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    maximize: bool,
}

impl RandomLp {
    fn build(&self) -> (Problem, Vec<VarId>) {
        let mut p = if self.maximize {
            Problem::maximize()
        } else {
            Problem::minimize()
        };
        let xs: Vec<VarId> = self
            .objective
            .iter()
            .zip(&self.upper)
            .enumerate()
            .map(|(i, (&c, &u))| p.add_continuous(format!("x{i}"), 0.0, u, c).unwrap())
            .collect();
        for (r, (coefs, rhs)) in self.rows.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = xs
                .iter()
                .zip(coefs)
                .filter(|(_, &c)| c != 0.0)
                .map(|(&v, &c)| (v, c))
                .collect();
            p.add_constraint(format!("r{r}"), terms, Cmp::Le, *rhs)
                .unwrap();
        }
        (p, xs)
    }
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..7, 1usize..6, any::<bool>()).prop_flat_map(|(nv, nr, maximize)| {
        let obj = proptest::collection::vec(-5.0f64..5.0, nv);
        let ub = proptest::collection::vec(0.5f64..8.0, nv);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(-3.0f64..3.0, nv), 0.5f64..20.0),
            nr,
        );
        (obj, ub, rows).prop_map(move |(objective, upper, rows)| RandomLp {
            objective,
            upper,
            rows,
            maximize,
        })
    })
}

/// Evaluates feasibility of a point for a RandomLp.
fn feasible(lp: &RandomLp, x: &[f64]) -> bool {
    for (xi, &u) in x.iter().zip(&lp.upper) {
        if *xi < -1e-7 || *xi > u + 1e-7 {
            return false;
        }
    }
    lp.rows
        .iter()
        .all(|(coefs, rhs)| coefs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-6)
}

fn objective(lp: &RandomLp, x: &[f64]) -> f64 {
    lp.objective.iter().zip(x).map(|(c, v)| c * v).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplex_solutions_are_feasible_and_dominant(lp in arb_lp()) {
        // Origin is always feasible (x = 0, rhs > 0), so the LP cannot be
        // infeasible; all variables bounded, so it cannot be unbounded.
        let (p, _) = lp.build();
        let out = solve_lp(&p).unwrap();
        let LpOutcome::Optimal(sol) = out else {
            return Err(TestCaseError::fail("bounded feasible LP must be optimal"));
        };
        prop_assert!(feasible(&lp, sol.values()), "solution violates constraints");
        prop_assert!((objective(&lp, sol.values()) - sol.objective).abs() < 1e-6);

        // The optimum dominates a grid of random feasible probes built by
        // scaling corners of the box until feasible.
        for mask in 0..(1u32 << lp.objective.len().min(5)) {
            let corner: Vec<f64> = lp
                .upper
                .iter()
                .enumerate()
                .map(|(i, &u)| if mask >> i & 1 == 1 { u } else { 0.0 })
                .collect();
            // Shrink the corner towards the origin until feasible.
            let mut t = 1.0;
            let mut probe = corner.clone();
            for _ in 0..20 {
                if feasible(&lp, &probe) {
                    break;
                }
                t *= 0.5;
                probe = corner.iter().map(|c| c * t).collect();
            }
            if feasible(&lp, &probe) {
                let val = objective(&lp, &probe);
                if lp.maximize {
                    prop_assert!(sol.objective >= val - 1e-5, "probe beats optimum");
                } else {
                    prop_assert!(sol.objective <= val + 1e-5, "probe beats optimum");
                }
            }
        }
    }

    #[test]
    fn mip_relaxation_bounds_and_integrality(lp in arb_lp()) {
        // Rebuild the LP with all-integer variables (floored bounds).
        let mut p = if lp.maximize { Problem::maximize() } else { Problem::minimize() };
        let xs: Vec<VarId> = lp
            .objective
            .iter()
            .zip(&lp.upper)
            .enumerate()
            .map(|(i, (&c, &u))| p.add_integer(format!("x{i}"), 0.0, u.floor().max(0.0), c).unwrap())
            .collect();
        for (r, (coefs, rhs)) in lp.rows.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = xs
                .iter()
                .zip(coefs)
                .filter(|(_, &c)| c != 0.0)
                .map(|(&v, &c)| (v, c))
                .collect();
            p.add_constraint(format!("r{r}"), terms, Cmp::Le, *rhs).unwrap();
        }
        let relaxed = solve_lp(&p.relaxed()).unwrap();
        let LpOutcome::Optimal(rel) = relaxed else {
            return Err(TestCaseError::fail("relaxation must solve"));
        };
        let out = solve_mip(&p, &MipConfig::default()).unwrap();
        prop_assert_eq!(out.status, MipStatus::Optimal);
        let best = out.best.unwrap();
        // Integrality.
        for &x in best.values() {
            prop_assert!((x - x.round()).abs() < 1e-6);
        }
        // Feasibility in the original problem.
        prop_assert!(p.is_feasible(best.values(), 1e-6));
        // Relaxation dominates.
        if lp.maximize {
            prop_assert!(rel.objective >= best.objective - 1e-5);
        } else {
            prop_assert!(rel.objective <= best.objective + 1e-5);
        }
        // Exhaustive check on small integer boxes.
        let sizes: Vec<usize> = lp.upper.iter().map(|u| u.floor() as usize + 1).collect();
        let space: usize = sizes.iter().product();
        if space <= 4096 {
            let mut best_brute: Option<f64> = None;
            let mut idx = vec![0usize; sizes.len()];
            loop {
                let x: Vec<f64> = idx.iter().map(|&i| i as f64).collect();
                if feasible(&lp, &x) {
                    let v = objective(&lp, &x);
                    best_brute = Some(match best_brute {
                        None => v,
                        Some(b) => if lp.maximize { b.max(v) } else { b.min(v) },
                    });
                }
                let mut pos = 0;
                loop {
                    if pos == sizes.len() {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < sizes[pos] {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == sizes.len() {
                    break;
                }
            }
            let brute = best_brute.expect("origin feasible");
            prop_assert!(
                (brute - best.objective).abs() < 1e-5,
                "brute force {} vs B&B {}",
                brute,
                best.objective
            );
        }
    }
}
