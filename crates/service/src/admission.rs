//! Capacity-aware admission control and queue-depth backpressure.
//!
//! Front-ends run two cheap checks before a task ever reaches a worker:
//!
//! 1. [`check_capacity`] — a *sound* lower bound on the new VNF capacity
//!    the task must consume (VNF types in its chain deployed nowhere in
//!    the network, §IV-D reuse semantics) against the remaining committed
//!    capacity. Sound means it never rejects a feasible task: a task is
//!    turned away only if even its cheapest possible placement cannot fit.
//! 2. [`JobQueue::try_push`] — a bounded queue between connection readers
//!    and the worker pool. When the bound is hit the request is rejected
//!    immediately with [`ServiceError::Overloaded`] instead of letting
//!    latency (and client memory) grow without bound.

use crate::service::ServiceError;
use sft_core::{MulticastTask, Network};
use sft_graph::numeric;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Knobs for the admission layer, shared by the socket server and tests.
#[derive(Copy, Clone, Debug)]
pub struct AdmissionConfig {
    /// Maximum requests queued ahead of the worker pool before new ones
    /// are rejected with `overloaded`.
    pub queue_bound: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Whether to run the capacity pre-check at all (quote-only traffic
    /// on a frozen network may want it off).
    pub capacity_check: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 128,
            default_deadline_ms: None,
            capacity_check: true,
        }
    }
}

/// Rejects `task` iff its minimum new-instance demand provably cannot fit
/// in the network's residual capacity, or its bandwidth demand cannot fit
/// on any single link.
///
/// Three bounds, all necessary conditions for feasibility:
///
/// * the *sum* of demands of chain VNF types with no live instance must
///   fit in the total residual capacity,
/// * the *largest* such single demand must fit on some one server (an
///   instance cannot be split across servers), and
/// * the task's bandwidth demand must fit on the *widest* residual link —
///   any feasible delivery tree crosses at least one edge. Uncapacitated
///   edges are infinitely wide, so networks without link capacities never
///   reject here.
///
/// Comparisons use the workspace-wide relative tolerance
/// ([`sft_graph::numeric`]), matching the solvers' own feasibility checks.
///
/// # Errors
///
/// [`ServiceError::InsufficientCapacity`] with the violated demand/supply
/// pair, or [`ServiceError::InsufficientBandwidth`] when the bandwidth
/// bound is the one violated (same `insufficient_capacity` wire code).
pub fn check_capacity(network: &Network, task: &MulticastTask) -> Result<(), ServiceError> {
    let demand = network.min_new_demand(task);
    let remaining = network.total_residual_capacity();
    if numeric::exceeds(demand, remaining) {
        return Err(ServiceError::InsufficientCapacity { demand, remaining });
    }
    let unit = network.max_new_instance_demand(task);
    let best = network.max_residual_capacity();
    if numeric::exceeds(unit, best) {
        return Err(ServiceError::InsufficientCapacity {
            demand: unit,
            remaining: best,
        });
    }
    let bandwidth = task.bandwidth();
    if bandwidth > 0.0 {
        let widest = network.max_edge_residual();
        if numeric::exceeds(bandwidth, widest) {
            return Err(ServiceError::InsufficientBandwidth {
                demand: bandwidth,
                remaining: widest,
            });
        }
    }
    Ok(())
}

/// A bounded MPMC queue between connection readers and the worker pool.
///
/// `try_push` never blocks — a full queue is an immediate, structured
/// rejection (backpressure surfaces to the client, not as latency).
/// `pop` blocks until a job arrives or the queue is closed; after
/// [`JobQueue::close`], workers drain what is already queued and then see
/// `None`.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    bound: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// A queue rejecting pushes beyond `bound` pending jobs.
    pub fn new(bound: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            bound,
        }
    }

    /// The configured bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Queue access recovers from poison: pushes and pops are single
    /// `VecDeque` operations that a panic cannot leave half-applied, so
    /// one panicking worker must not wedge every other thread's queue.
    fn lock_inner(&self) -> MutexGuard<'_, QueueInner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock_inner().jobs.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `job` unless the queue is full or closed.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when `bound` jobs are already pending;
    /// [`ServiceError::ShuttingDown`] after [`JobQueue::close`]. The job
    /// is handed back inside the error so the caller can still respond to
    /// the client that submitted it.
    pub fn try_push(&self, job: T) -> Result<(), (T, ServiceError)> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err((job, ServiceError::ShuttingDown));
        }
        if inner.jobs.len() >= self.bound {
            return Err((
                job,
                ServiceError::Overloaded {
                    queue_bound: self.bound,
                },
            ));
        }
        inner.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Removes every queued job matching `expired` and hands them back so
    /// the caller can still answer their clients. Admission calls this
    /// when the queue is full: a backlog of dead jobs must not hold
    /// `overloaded` against live ones.
    pub fn shed<F: FnMut(&T) -> bool>(&self, mut expired: F) -> Vec<T> {
        let mut inner = self.lock_inner();
        let mut kept = VecDeque::with_capacity(inner.jobs.len());
        let mut out = Vec::new();
        for job in inner.jobs.drain(..) {
            if expired(&job) {
                out.push(job);
            } else {
                kept.push_back(job);
            }
        }
        inner.jobs = kept;
        out
    }

    /// Stops accepting new jobs; queued jobs remain for workers to drain.
    pub fn close(&self) {
        self.lock_inner().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_core::{Sfc, VnfCatalog, VnfId};
    use sft_graph::{Graph, NodeId};
    use std::sync::Arc;

    fn network(capacity: f64) -> Network {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap();
        }
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn task(sfc: &[usize]) -> MulticastTask {
        MulticastTask::new(
            NodeId(0),
            vec![NodeId(2), NodeId(4)],
            Sfc::new(sfc.iter().map(|&f| VnfId(f)).collect::<Vec<_>>()).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn ample_capacity_admits() {
        assert!(check_capacity(&network(3.0), &task(&[0, 1])).is_ok());
    }

    #[test]
    fn zero_capacity_rejects_with_the_demand_pair() {
        let err = check_capacity(&network(0.0), &task(&[0, 1])).unwrap_err();
        match err {
            ServiceError::InsufficientCapacity { demand, remaining } => {
                assert!(demand > 0.0);
                assert_eq!(remaining, 0.0);
            }
            other => panic!("expected InsufficientCapacity, got {other:?}"),
        }
    }

    #[test]
    fn per_instance_demand_must_fit_on_a_single_server() {
        // Catalog demand is 1.0 per instance; 6 servers × 0.5 gives total
        // residual 3.0 ≥ 2.0 (sum bound passes) but no single server can
        // host one instance — the max bound must catch it.
        let err = check_capacity(&network(0.5), &task(&[0, 1])).unwrap_err();
        match err {
            ServiceError::InsufficientCapacity { demand, remaining } => {
                assert_eq!(demand, 1.0);
                assert_eq!(remaining, 0.5);
            }
            other => panic!("expected InsufficientCapacity, got {other:?}"),
        }
    }

    #[test]
    fn reuse_only_chains_are_always_admitted() {
        let mut net = network(2.0);
        let t = task(&[0]);
        // Deploy f0 somewhere, then exhaust all remaining capacity checks:
        // a chain served purely by reuse has zero new demand.
        let r = sft_core::solve_with_options(
            &net,
            &t,
            sft_core::Strategy::Msa,
            sft_core::SolveOptions::default(),
        )
        .unwrap();
        net.commit_embedding(&t, &r.embedding).unwrap();
        assert_eq!(net.min_new_demand(&t), 0.0);
        assert!(check_capacity(&net, &t).is_ok());
    }

    #[test]
    fn bandwidth_wider_than_every_link_rejects() {
        let mut g = Graph::new(3);
        g.add_edge_with_capacity(NodeId(0), NodeId(1), 1.0, Some(2.0))
            .unwrap();
        g.add_edge_with_capacity(NodeId(1), NodeId(2), 1.0, Some(5.0))
            .unwrap();
        let net = Network::builder(g, VnfCatalog::uniform(2))
            .all_servers(4.0)
            .unwrap()
            .build()
            .unwrap();
        let t = MulticastTask::new(
            NodeId(0),
            vec![NodeId(2)],
            Sfc::new(vec![VnfId(0)]).unwrap(),
        )
        .unwrap();
        // Within the widest link: admitted (the bound is per-link, sound).
        assert!(check_capacity(&net, &t.clone().with_bandwidth(5.0).unwrap()).is_ok());
        // Wider than every link: provably cannot route.
        let err = check_capacity(&net, &t.clone().with_bandwidth(6.0).unwrap()).unwrap_err();
        match err {
            ServiceError::InsufficientBandwidth { demand, remaining } => {
                assert_eq!(demand, 6.0);
                assert_eq!(remaining, 5.0);
            }
            other => panic!("expected InsufficientBandwidth, got {other:?}"),
        }
        // Zero bandwidth (and uncapacitated networks) never consult it.
        assert!(check_capacity(&net, &t).is_ok());
        assert!(
            check_capacity(&network(4.0), &task(&[0]).with_bandwidth(1e9).unwrap()).is_ok(),
            "uncapacitated links are infinitely wide"
        );
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (job, err) = q.try_push(3).unwrap_err();
        assert_eq!(job, 3, "the rejected job is handed back");
        assert!(matches!(err, ServiceError::Overloaded { queue_bound: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_new_work_but_drains_old() {
        let q = JobQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        let (_, err) = q.try_push(3).unwrap_err();
        assert!(matches!(err, ServiceError::ShuttingDown));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn shed_removes_matching_jobs_and_hands_them_back() {
        let q = JobQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert!(q.try_push(4).is_err(), "queue is full");
        let shed = q.shed(|&j| j % 2 == 0);
        assert_eq!(shed, vec![0, 2], "shed jobs come back for responding");
        assert_eq!(q.len(), 2);
        q.try_push(4).unwrap();
        assert_eq!(q.pop(), Some(1), "survivors keep their order");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn drain_completes_in_flight_work_across_threads() {
        let q = Arc::new(JobQueue::new(64));
        for i in 0..32 {
            q.try_push(i).unwrap();
        }
        q.close();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(j) = q.pop() {
                    got.push(j);
                }
                got
            }));
        }
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<_>>(), "every queued job drains");
    }
}
