//! Newline-delimited JSON task ingestion for `sft batch` / `sft serve`.
//!
//! One task per line:
//!
//! ```text
//! {"source": 0, "dests": [12, 31, 40], "sfc": [0, 1, 2]}
//! ```
//!
//! The parser is hand-rolled (the workspace has no serde) and deliberately
//! strict: the three keys above, in any order, with non-negative integer
//! values. Blank lines and lines starting with `#` are skipped. A
//! malformed line produces a per-line error — callers report it and keep
//! going, so one bad line can never take down a long-running service.

use sft_core::{CoreError, MulticastTask, Sfc, VnfId};
use sft_graph::NodeId;

/// One parsed task line, before domain validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Source node index.
    pub source: usize,
    /// Destination node indices.
    pub dests: Vec<usize>,
    /// Service function chain as VNF type indices.
    pub sfc: Vec<usize>,
}

impl TaskSpec {
    /// Converts the spec into a validated [`MulticastTask`].
    ///
    /// # Errors
    ///
    /// [`CoreError`] for an empty/duplicated destination set, an empty
    /// chain, or a source listed as a destination.
    pub fn to_task(&self) -> Result<MulticastTask, CoreError> {
        let sfc = Sfc::new(self.sfc.iter().map(|&f| VnfId(f)).collect::<Vec<_>>())?;
        MulticastTask::new(
            NodeId(self.source),
            self.dests.iter().map(|&d| NodeId(d)).collect::<Vec<_>>(),
            sfc,
        )
    }
}

/// Parses one JSONL line into a [`TaskSpec`].
///
/// # Errors
///
/// A human-readable description of the first syntax or schema problem.
pub fn parse_line(line: &str) -> Result<TaskSpec, String> {
    let mut s = Scanner::new(line);
    s.skip_ws();
    s.expect(b'{')?;
    let mut source: Option<usize> = None;
    let mut dests: Option<Vec<usize>> = None;
    let mut sfc: Option<Vec<usize>> = None;
    loop {
        s.skip_ws();
        if s.eat(b'}') {
            break;
        }
        let key = s.parse_string()?;
        s.skip_ws();
        s.expect(b':')?;
        s.skip_ws();
        match key.as_str() {
            "source" => source = Some(s.parse_uint()?),
            "dests" => dests = Some(s.parse_uint_array()?),
            "sfc" => sfc = Some(s.parse_uint_array()?),
            other => return Err(format!("unknown key \"{other}\"")),
        }
        s.skip_ws();
        if s.eat(b',') {
            continue;
        }
        s.expect(b'}')?;
        break;
    }
    s.skip_ws();
    if !s.at_end() {
        return Err(format!("trailing input at byte {}", s.pos));
    }
    Ok(TaskSpec {
        source: source.ok_or("missing key \"source\"")?,
        dests: dests.ok_or("missing key \"dests\"")?,
        sfc: sfc.ok_or("missing key \"sfc\"")?,
    })
}

/// Parses a whole JSONL stream; returns `(1-based line number, outcome)`
/// for every non-blank, non-comment line.
pub fn parse_stream(text: &str) -> Vec<(usize, Result<TaskSpec, String>)> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(i, l)| (i + 1, parse_line(l)))
        .collect()
}

/// Minimal byte scanner over one line.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Self {
        Scanner {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `c` if it is next; returns whether it did.
    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {}",
                c as char,
                self.pos,
                match self.peek() {
                    Some(b) => format!("`{}`", b as char),
                    None => "end of line".into(),
                }
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?
                    .to_string();
                self.pos += 1;
                if s.contains('\\') {
                    return Err("escape sequences are not supported".into());
                }
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn parse_uint(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a non-negative integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| format!("integer out of range at byte {start}"))
    }

    fn parse_uint_array(&mut self) -> Result<Vec<usize>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.parse_uint()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_shape() {
        let spec = parse_line(r#"{"source": 0, "dests": [12, 31, 40], "sfc": [0, 1, 2]}"#).unwrap();
        assert_eq!(
            spec,
            TaskSpec {
                source: 0,
                dests: vec![12, 31, 40],
                sfc: vec![0, 1, 2],
            }
        );
        let task = spec.to_task().unwrap();
        assert_eq!(task.destination_count(), 3);
    }

    #[test]
    fn key_order_and_whitespace_are_free() {
        let spec = parse_line(r#"  { "sfc":[1] ,"source":5,  "dests":[ 2 ] }  "#).unwrap();
        assert_eq!(spec.source, 5);
        assert_eq!(spec.dests, vec![2]);
        assert_eq!(spec.sfc, vec![1]);
    }

    #[test]
    fn rejects_malformed_lines_with_reasons() {
        for (line, needle) in [
            ("", "expected `{`"),
            ("{", "expected `\"`"),
            (r#"{"source": 1}"#, "missing key \"dests\""),
            (r#"{"source": 1, "dests": [2], "sfc": [0]} x"#, "trailing"),
            (r#"{"source": -1, "dests": [2], "sfc": [0]}"#, "integer"),
            (r#"{"bogus": 1}"#, "unknown key"),
            (r#"{"source": 1, "dests": 2, "sfc": [0]}"#, "expected `[`"),
            (r#"{"source": 1, "dests": [2,], "sfc": [0]}"#, "integer"),
        ] {
            let err = parse_line(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?}: got {err:?}");
        }
    }

    #[test]
    fn stream_skips_blanks_and_comments_and_numbers_lines() {
        let text =
            "\n# palmetto demo tasks\n{\"source\": 0, \"dests\": [1], \"sfc\": [0]}\nnot json\n";
        let parsed = parse_stream(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, 3);
        assert!(parsed[0].1.is_ok());
        assert_eq!(parsed[1].0, 4);
        assert!(parsed[1].1.is_err());
    }

    #[test]
    fn spec_to_task_validates_domain_rules() {
        // Source among destinations is a domain error, not a parse error.
        let spec = parse_line(r#"{"source": 2, "dests": [2], "sfc": [0]}"#).unwrap();
        assert!(spec.to_task().is_err());
        // Empty chain.
        let spec = parse_line(r#"{"source": 0, "dests": [1], "sfc": []}"#).unwrap();
        assert!(spec.to_task().is_err());
    }
}
