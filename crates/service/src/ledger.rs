//! The optimistic per-resource capacity ledger behind transactional
//! commits.
//!
//! The socket server used to serialize every commit under the
//! `RwLock<EmbedService>` write half for the *whole* solve, and — worse —
//! could report `deadline_exceeded` for a solve that had already mutated
//! the network (the ghost-capacity leak). The ledger splits a commit into
//! the MVCC-style phases of SOF session admission:
//!
//! 1. **Snapshot.** A worker records the ledger sequence number
//!    ([`CapacityLedger::snapshot`]) under the service *read* lock, then
//!    solves against that frozen state concurrently with quotes and other
//!    commit solves — no write lock is held during the solve.
//! 2. **Validate.** Under the write lock, [`CapacityLedger::validate`]
//!    re-checks that (a) the request's deadline has not expired and
//!    (b) no committed transaction has touched any node the delta deploys
//!    onto since the snapshot (per-node version vector). Residual
//!    capacity is re-checked by [`sft_core::Network::apply_delta`] against
//!    the authoritative network in the same critical section, so the
//!    capacity arithmetic is never duplicated in floating point.
//! 3. **Confirm.** [`CapacityLedger::confirm`] bumps the sequence number
//!    and the touched nodes' versions, updates the residual mirror the
//!    admission layer reads, and appends the *effective* delta to the
//!    commit log.
//!
//! Rejections at step 2 mutate nothing: an expired deadline surfaces as
//! `deadline_exceeded`, a version conflict sends the worker back to
//! re-solve against the new state (bounded retry budget, then `conflict`).
//!
//! The commit log is the determinism contract: serially replaying the
//! recorded deltas in sequence order — [`Network::apply_delta`] for
//! [`LedgerOp::Commit`] records, [`Network::apply_release`] for
//! [`LedgerOp::Release`] records — onto an identically-built network
//! reproduces the final deployment set, reference counts and residuals
//! bit-for-bit (`tests/commit_storm.rs` and `tests/session_lifecycle.rs`
//! check exactly this under racing workers).
//!
//! **Sessions.** A confirmed commit carrying a wire id registers a live
//! *session*: the full usage delta (new deploys + pinned reuses) it
//! holds. [`CapacityLedger::release_usage`] looks the session up for the
//! release path, and [`CapacityLedger::confirm_release`] retires it,
//! giving back one reference per used pair. Because the mirror reference
//! counts instances exactly like [`Network`] does, an instance shared
//! with another live session survives and only last-reference drops free
//! residual capacity — naive subtraction would corrupt the mirror the
//! admission layer reads.
//!
//! **Bandwidth.** Edge bandwidth rides the same cycle as node capacity:
//! the mirror keeps per-edge residuals, session counts and a per-edge
//! version vector next to the per-node ones. A commit whose delta charges
//! an edge a later transaction also charged conflicts exactly like a
//! node-version conflict ([`CommitRejection::ConflictEdge`]), the session
//! remembers its edge charges so a release gives the bandwidth back
//! refcount-style (the last session on an edge snaps its usage to exactly
//! zero), and the admission bound learns a sound lower bound: a task
//! demanding more bandwidth than the widest residual edge (plus queued
//! release credit) cannot route at all.

use crate::service::ServiceError;
use sft_core::{CommitDelta, MulticastTask, Network, VnfId};
use sft_graph::numeric;
use sft_graph::{EdgeId, NodeId};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The ledger state a commit solve ran against: the sequence number of the
/// last transaction confirmed before the solve started.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LedgerSnapshot {
    seq: u64,
}

impl LedgerSnapshot {
    /// The sequence number captured at snapshot time.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Why a commit was turned away at validation — in both cases **nothing**
/// has been mutated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommitRejection {
    /// The request's deadline expired between solve and apply.
    Expired,
    /// A transaction confirmed after the snapshot touched this node, so
    /// the quoted delta (and its setup costs) may be stale — re-solve.
    Conflict {
        /// The first touched node whose version outran the snapshot.
        node: NodeId,
    },
    /// A transaction confirmed after the snapshot moved bandwidth on this
    /// edge, so the quoted route may oversubscribe it — re-solve.
    ConflictEdge {
        /// The first touched edge whose version outran the snapshot.
        edge: EdgeId,
    },
}

/// Which way a confirmed transaction moved capacity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LedgerOp {
    /// A session arrival: references added, new instances charged.
    Commit,
    /// A session departure: references dropped, last-reference instances
    /// freed.
    Release,
}

/// One confirmed transaction: the effective delta it applied.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitRecord {
    /// Position in the committed order (1-based, contiguous).
    pub seq: u64,
    /// The wire request id that produced the commit, or the released
    /// session's id for a [`LedgerOp::Release`] record.
    pub id: Option<u64>,
    /// Whether this transaction committed or released a session.
    pub op: LedgerOp,
    /// The capacity-moving `(VNF, node)` pairs, in canonical order: newly
    /// created instances for a commit, last-reference freed instances for
    /// a release. Empty for a fully-reused embedding.
    pub deploys: Vec<(VnfId, NodeId)>,
    /// The reference-only pairs, in canonical order: reused instances for
    /// a commit, dropped-but-surviving references for a release.
    pub refs: Vec<(VnfId, NodeId)>,
    /// The `(edge, bandwidth)` charges the session holds, in canonical
    /// order. A commit record charges them; a release record carries the
    /// session's full list so replaying it gives every charge back.
    pub edges: Vec<(EdgeId, f64)>,
}

impl CommitRecord {
    /// The record's delta, ready to replay with
    /// [`sft_core::Network::apply_delta`] ([`LedgerOp::Commit`]) or
    /// [`sft_core::Network::apply_release`] ([`LedgerOp::Release`]).
    pub fn delta(&self) -> CommitDelta {
        CommitDelta::with_usage(self.deploys.clone(), self.refs.clone(), self.edges.clone())
    }
}

/// Per-node residuals and versions mirroring one [`Network`], plus the
/// commit log. All access goes through one short-held mutex; the ledger
/// never takes the service lock, so lock order is always service → ledger.
#[derive(Debug)]
pub struct CapacityLedger {
    inner: Mutex<Inner>,
}

/// A committed session's full usage, for the release path.
#[derive(Clone, Debug)]
struct Session {
    /// Pairs charged as new instances at commit time.
    deploys: Vec<(VnfId, NodeId)>,
    /// Pairs pinned by reuse at commit time.
    refs: Vec<(VnfId, NodeId)>,
    /// `(edge, bandwidth)` charges the session holds on the wire.
    edges: Vec<(EdgeId, f64)>,
    /// False once released; a session releases exactly once.
    live: bool,
    /// The task the session embeds, when the commit path supplied it —
    /// what the defragmentation pass re-solves.
    task: Option<MulticastTask>,
}

#[derive(Debug)]
struct Inner {
    /// Sequence number of the last confirmed transaction (0 = none).
    seq: u64,
    /// `node_version[v]` = seq of the last transaction that changed `v`'s
    /// capacity (a new instance deployed or a last reference freed).
    node_version: Vec<u64>,
    /// Residual capacity mirror, for admission reads without any lock on
    /// the service.
    residual: Vec<f64>,
    is_server: Vec<bool>,
    /// Per-VNF-type resource demand (`μ_f`).
    demand: Vec<f64>,
    /// Live instances per VNF type anywhere in the network — the reuse
    /// bound the admission check needs.
    instances: Vec<u64>,
    /// `refcount[f][v]` mirror of [`Network::refcount`]: live references
    /// per instance, counting the builder's pinned pre-deployments.
    refcount: Vec<Vec<u32>>,
    /// `edge_version[e]` = seq of the last transaction that moved
    /// bandwidth on edge `e` — the edge half of the version vector.
    edge_version: Vec<u64>,
    /// Per-edge bandwidth capacity (`f64::INFINITY` = uncapacitated).
    edge_capacity: Vec<f64>,
    /// Committed bandwidth per edge, mirroring [`Network::edge_usage`].
    edge_used: Vec<f64>,
    /// Live sessions charging each edge; the last release snaps
    /// `edge_used` to exactly zero, mirroring the network's refcount
    /// discipline.
    edge_sessions: Vec<u32>,
    /// Committed sessions by wire id. Ids may repeat across clients, so
    /// each id keys a stack of sessions; a release targets the most
    /// recent live one.
    sessions: BTreeMap<u64, Vec<Session>>,
    /// Capacity about to come back: per-node credit for release jobs
    /// queued ahead of the worker pool, keyed by session id. The
    /// admission bound adds these so feasible work arriving right behind
    /// a teardown is not bounced off a residual mirror the queued release
    /// is about to refill.
    pending_release: BTreeMap<u64, Vec<(usize, f64)>>,
    /// Bandwidth about to come back: per-edge credit for queued release
    /// jobs, the link analogue of `pending_release`.
    pending_release_bw: BTreeMap<u64, Vec<(usize, f64)>>,
    log: Vec<CommitRecord>,
}

impl CapacityLedger {
    /// A ledger mirroring `network`'s current servers, residuals and
    /// deployments, with an empty commit log.
    pub fn new(network: &Network) -> Self {
        let n = network.node_count();
        let catalog = network.catalog();
        let refcount: Vec<Vec<u32>> = catalog
            .ids()
            .map(|f| (0..n).map(|v| network.refcount(f, NodeId(v))).collect())
            .collect();
        let instances = refcount
            .iter()
            .map(|row| row.iter().filter(|&&d| d > 0).count() as u64)
            .collect();
        let graph = network.graph();
        let edge_capacity: Vec<f64> = graph
            .edge_ids()
            .map(|e| graph.edge_capacity(e).unwrap_or(f64::INFINITY))
            .collect();
        let edge_used: Vec<f64> = graph
            .edge_ids()
            .map(|e| match graph.edge_capacity(e) {
                Some(cap) => cap - network.edge_residual(e),
                None => 0.0,
            })
            .collect();
        let edge_sessions: Vec<u32> = graph
            .edge_ids()
            .map(|e| network.edge_session_count(e))
            .collect();
        CapacityLedger {
            inner: Mutex::new(Inner {
                seq: 0,
                node_version: vec![0; n],
                residual: (0..n)
                    .map(|v| network.residual_capacity(NodeId(v)))
                    .collect(),
                is_server: (0..n).map(|v| network.is_server(NodeId(v))).collect(),
                demand: catalog.ids().map(|f| catalog.demand(f)).collect(),
                instances,
                refcount,
                edge_version: vec![0; edge_capacity.len()],
                edge_capacity,
                edge_used,
                edge_sessions,
                sessions: BTreeMap::new(),
                pending_release: BTreeMap::new(),
                pending_release_bw: BTreeMap::new(),
                log: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Ledger updates are tiny flag/counter flips; a panic cannot leave
        // them half-applied, so a poisoned mutex is safe to keep using.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Captures the current sequence number. Call under the service read
    /// lock so the solve and the snapshot observe the same state.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            seq: self.lock().seq,
        }
    }

    /// Transactions confirmed so far.
    pub fn commit_count(&self) -> u64 {
        self.lock().seq
    }

    /// Step 2 of a commit: under the service write lock, re-check the
    /// deadline and the touched nodes' versions against the snapshot.
    ///
    /// # Errors
    ///
    /// [`CommitRejection::Expired`] when `deadline_expired`;
    /// [`CommitRejection::Conflict`] when any node the delta deploys onto
    /// was changed by a transaction the snapshot did not see. Neither
    /// mutates anything, here or in the network.
    pub fn validate(
        &self,
        snapshot: &LedgerSnapshot,
        delta: &CommitDelta,
        deadline_expired: bool,
    ) -> Result<(), CommitRejection> {
        if deadline_expired {
            return Err(CommitRejection::Expired);
        }
        let inner = self.lock();
        for node in delta.touched_nodes() {
            if inner.node_version[node.0] > snapshot.seq {
                return Err(CommitRejection::Conflict { node });
            }
        }
        for edge in delta.touched_edges() {
            if inner.edge_version[edge.0] > snapshot.seq {
                return Err(CommitRejection::ConflictEdge { edge });
            }
        }
        Ok(())
    }

    /// Step 3 of a commit: records `delta` as the next transaction after
    /// the network apply succeeded (same write-lock critical section),
    /// adding one mirror reference per used pair. When the delta carries
    /// a wire id, the session it opens is registered for later release.
    /// Returns the assigned sequence number.
    pub fn confirm(&self, id: Option<u64>, delta: &CommitDelta) -> u64 {
        self.confirm_with_task(id, delta, None)
    }

    /// [`CapacityLedger::confirm`], additionally remembering the task the
    /// session embeds so [`CapacityLedger::live_session_tasks`] can offer
    /// it to the defragmentation pass.
    pub fn confirm_with_task(
        &self,
        id: Option<u64>,
        delta: &CommitDelta,
        task: Option<MulticastTask>,
    ) -> u64 {
        let mut inner = self.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let mut deploys = Vec::new();
        let mut refs = Vec::new();
        for (f, v) in delta.usage() {
            if inner.refcount[f.0][v.0] == 0 {
                // A genuinely new instance: charge capacity, version-bump.
                inner.instances[f.0] += 1;
                inner.residual[v.0] -= inner.demand[f.0];
                inner.node_version[v.0] = seq;
                deploys.push((f, v));
            } else {
                // Reused instance: free, reference-only. Capacity did not
                // move, so the node version stays — a reuse never stales
                // anyone else's snapshot.
                refs.push((f, v));
            }
            inner.refcount[f.0][v.0] += 1;
        }
        let edges = delta.edges().to_vec();
        for &(e, b) in &edges {
            // Every charge moves residual bandwidth, so every touched
            // edge version-bumps (unlike node reuse, there is no free
            // reference-only case for an edge).
            inner.edge_used[e.0] += b;
            inner.edge_sessions[e.0] += 1;
            inner.edge_version[e.0] = seq;
        }
        if let Some(session) = id {
            inner.sessions.entry(session).or_default().push(Session {
                deploys: deploys.clone(),
                refs: refs.clone(),
                edges: edges.clone(),
                live: true,
                task,
            });
        }
        inner.log.push(CommitRecord {
            seq,
            id,
            op: LedgerOp::Commit,
            deploys,
            refs,
            edges,
        });
        seq
    }

    /// The full usage delta of the most recent **live** session committed
    /// under `session`, for the release path: the caller applies it to
    /// the authoritative network with [`Network::apply_release`] (same
    /// write-lock critical section) and then calls
    /// [`CapacityLedger::confirm_release`]. Mutates nothing.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::UnknownSession`] — no commit ever carried this
    ///   id.
    /// * [`ServiceError::AlreadyReleased`] — every session under this id
    ///   has already been released.
    pub fn release_usage(&self, session: u64) -> Result<CommitDelta, ServiceError> {
        let inner = self.lock();
        let stack = inner
            .sessions
            .get(&session)
            .ok_or(ServiceError::UnknownSession { session })?;
        stack
            .iter()
            .rev()
            .find(|s| s.live)
            .map(|s| CommitDelta::with_usage(s.deploys.clone(), s.refs.clone(), s.edges.clone()))
            .ok_or(ServiceError::AlreadyReleased { session })
    }

    /// Step 3 of a release: retires the most recent live session under
    /// `session` after [`Network::apply_release`] succeeded on the
    /// authoritative network (same write-lock critical section). Drops
    /// one mirror reference per used pair; pairs whose count reaches zero
    /// free their capacity and version-bump their node. Edge charges come
    /// back refcount-style: the last session on an edge snaps its usage
    /// to exactly zero. Clears any queued admission credit for the
    /// session. Returns the assigned sequence number, the total node
    /// capacity freed, and the total bandwidth given back.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CapacityLedger::release_usage`]; nothing is
    /// mutated on error.
    pub fn confirm_release(&self, session: u64) -> Result<(u64, f64, f64), ServiceError> {
        let mut inner = self.lock();
        let stack = inner
            .sessions
            .get_mut(&session)
            .ok_or(ServiceError::UnknownSession { session })?;
        let slot = stack
            .iter_mut()
            .rev()
            .find(|s| s.live)
            .ok_or(ServiceError::AlreadyReleased { session })?;
        slot.live = false;
        let usage: Vec<(VnfId, NodeId)> = slot
            .deploys
            .iter()
            .chain(slot.refs.iter())
            .copied()
            .collect();
        let edges = slot.edges.clone();
        inner.seq += 1;
        let seq = inner.seq;
        let mut freed_demand = 0.0;
        let mut deploys = Vec::new();
        let mut refs = Vec::new();
        for (f, v) in usage {
            debug_assert!(inner.refcount[f.0][v.0] > 0, "live session holds a ref");
            inner.refcount[f.0][v.0] -= 1;
            if inner.refcount[f.0][v.0] == 0 {
                inner.instances[f.0] -= 1;
                inner.residual[v.0] += inner.demand[f.0];
                inner.node_version[v.0] = seq;
                freed_demand += inner.demand[f.0];
                deploys.push((f, v));
            } else {
                refs.push((f, v));
            }
        }
        deploys.sort_unstable();
        refs.sort_unstable();
        let mut freed_bandwidth = 0.0;
        for &(e, b) in &edges {
            debug_assert!(inner.edge_sessions[e.0] > 0, "live session holds an edge");
            inner.edge_sessions[e.0] -= 1;
            if inner.edge_sessions[e.0] == 0 {
                inner.edge_used[e.0] = 0.0;
            } else {
                inner.edge_used[e.0] -= b;
            }
            inner.edge_version[e.0] = seq;
            freed_bandwidth += b;
        }
        inner.pending_release.remove(&session);
        inner.pending_release_bw.remove(&session);
        inner.log.push(CommitRecord {
            seq,
            id: Some(session),
            op: LedgerOp::Release,
            deploys,
            refs,
            edges,
        });
        Ok((seq, freed_demand, freed_bandwidth))
    }

    /// Records the admission credit of a release request entering the job
    /// queue: the per-node demand its session charged at commit time,
    /// which a worker is about to give back. Returns whether a live
    /// session was found (no session, no credit — the queued job will
    /// fail with the structured error either way). Idempotent per
    /// session: a second queued release of the same id adds nothing.
    pub fn note_queued_release(&self, session: u64) -> bool {
        let mut inner = self.lock();
        let Some(stack) = inner.sessions.get(&session) else {
            return false;
        };
        let Some(slot) = stack.iter().rev().find(|s| s.live) else {
            return false;
        };
        let credit: Vec<(usize, f64)> = slot
            .deploys
            .iter()
            .map(|&(f, v)| (v.0, inner.demand[f.0]))
            .collect();
        let bw_credit: Vec<(usize, f64)> = slot.edges.iter().map(|&(e, b)| (e.0, b)).collect();
        inner.pending_release.entry(session).or_insert(credit);
        inner.pending_release_bw.entry(session).or_insert(bw_credit);
        true
    }

    /// Withdraws the queued-release credit for `session`, if any — called
    /// when the queued release job leaves the queue without confirming
    /// (shed, expired, or failed), so the admission bound stops counting
    /// capacity that is no longer coming back. A confirmed release clears
    /// its own credit.
    pub fn clear_queued_release(&self, session: u64) {
        let mut inner = self.lock();
        inner.pending_release.remove(&session);
        inner.pending_release_bw.remove(&session);
    }

    /// Live (committed, not yet released) session ids, ascending — the
    /// defragmentation pass and drain diagnostics iterate these.
    pub fn live_sessions(&self) -> Vec<u64> {
        let inner = self.lock();
        inner
            .sessions
            .iter()
            .filter(|(_, stack)| stack.iter().any(|s| s.live))
            .map(|(&id, _)| id)
            .collect()
    }

    /// `(id, task)` of the most recent live session per id whose commit
    /// recorded its task — the defragmentation work list. Ascending by
    /// id, so a pass over a frozen service is deterministic.
    pub fn live_session_tasks(&self) -> Vec<(u64, MulticastTask)> {
        let inner = self.lock();
        inner
            .sessions
            .iter()
            .filter_map(|(&id, stack)| {
                stack
                    .iter()
                    .rev()
                    .find(|s| s.live)
                    .and_then(|s| s.task.clone())
                    .map(|t| (id, t))
            })
            .collect()
    }

    /// The confirmed transactions in committed order — replaying their
    /// deltas serially reproduces the network state bit-for-bit.
    pub fn commit_log(&self) -> Vec<CommitRecord> {
        self.lock().log.clone()
    }

    /// Network-wide residual capacity according to the mirror.
    pub fn total_residual_capacity(&self) -> f64 {
        let inner = self.lock();
        inner
            .residual
            .iter()
            .zip(&inner.is_server)
            .filter(|&(_, &s)| s)
            .map(|(&r, _)| r)
            .sum()
    }

    /// The admission pre-check of [`crate::admission::check_capacity`],
    /// answered from the ledger mirror so connection readers never need
    /// any lock on the service itself.
    ///
    /// The residual side of both bounds includes the credit of release
    /// jobs already queued ahead of this request
    /// ([`CapacityLedger::note_queued_release`]): those workers will give
    /// the capacity back before the task's own commit runs, so without
    /// the credit a request arriving right behind a teardown would be
    /// rejected against a mirror that is about to be refilled. The credit
    /// can only widen the bound, which keeps the check sound (it still
    /// never rejects a feasible task; an over-admitted one fails later
    /// with the same structured error).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InsufficientCapacity`] with the violated
    /// demand/supply pair.
    pub fn check_capacity(&self, task: &MulticastTask) -> Result<(), ServiceError> {
        let inner = self.lock();
        // Distinct chain types with no live instance anywhere must be
        // placed fresh — identical bounds to `Network::min_new_demand` /
        // `Network::max_new_instance_demand`.
        let stages = task.sfc().stages();
        let new_types = (0..inner.demand.len())
            .map(VnfId)
            .filter(|f| stages.contains(f) && inner.instances[f.0] == 0);
        let (mut demand, mut unit) = (0.0f64, 0.0f64);
        for f in new_types {
            demand += inner.demand[f.0];
            unit = unit.max(inner.demand[f.0]);
        }
        let mut credit = vec![0.0f64; inner.residual.len()];
        for credits in inner.pending_release.values() {
            for &(v, c) in credits {
                credit[v] += c;
            }
        }
        let server_residuals = || {
            inner
                .residual
                .iter()
                .zip(&credit)
                .zip(&inner.is_server)
                .filter(|&(_, &s)| s)
                .map(|((&r, &c), _)| r + c)
        };
        let remaining: f64 = server_residuals().sum();
        if numeric::exceeds(demand, remaining) {
            return Err(ServiceError::InsufficientCapacity { demand, remaining });
        }
        let best = server_residuals().fold(0.0, f64::max);
        if numeric::exceeds(unit, best) {
            return Err(ServiceError::InsufficientCapacity {
                demand: unit,
                remaining: best,
            });
        }
        // Bandwidth lower bound: any feasible delivery tree crosses at
        // least one edge, so a demand wider than the widest residual edge
        // (plus bandwidth queued releases are about to give back) cannot
        // route. Uncapacitated edges are infinitely wide, so networks
        // without link capacities never reject here.
        let b = task.bandwidth();
        if b > 0.0 {
            let mut bw_credit = vec![0.0f64; inner.edge_capacity.len()];
            for credits in inner.pending_release_bw.values() {
                for &(e, c) in credits {
                    bw_credit[e] += c;
                }
            }
            let widest = inner
                .edge_capacity
                .iter()
                .zip(&inner.edge_used)
                .zip(&bw_credit)
                .map(|((&cap, &used), &c)| cap - used + c)
                .fold(0.0, f64::max);
            if numeric::exceeds(b, widest) {
                return Err(ServiceError::InsufficientBandwidth {
                    demand: b,
                    remaining: widest,
                });
            }
        }
        Ok(())
    }

    /// `(capacity, committed bandwidth)` per capacitated edge according
    /// to the mirror — the stats renderer's link-utilization source.
    /// Empty when the network has no link capacities.
    pub fn edge_loads(&self) -> Vec<(f64, f64)> {
        let inner = self.lock();
        inner
            .edge_capacity
            .iter()
            .zip(&inner.edge_used)
            .filter(|&(&cap, _)| cap.is_finite())
            .map(|(&cap, &used)| (cap, used))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_core::{MulticastTask, Sfc, VnfCatalog};
    use sft_graph::Graph;

    fn ring_network(n: usize, capacity: f64) -> Network {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0).unwrap();
        }
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn capacitated_ring(n: usize, capacity: f64, bw: f64) -> Network {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge_with_capacity(NodeId(i), NodeId((i + 1) % n), 1.0, Some(bw))
                .unwrap();
        }
        Network::builder(g, VnfCatalog::uniform(3))
            .all_servers(capacity)
            .unwrap()
            .uniform_setup_cost(2.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn task(source: usize, dests: &[usize], sfc: &[usize]) -> MulticastTask {
        MulticastTask::new(
            NodeId(source),
            dests.iter().map(|&d| NodeId(d)).collect::<Vec<_>>(),
            Sfc::new(sfc.iter().map(|&f| VnfId(f)).collect::<Vec<_>>()).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn disjoint_commits_validate_against_old_snapshots() {
        let ledger = CapacityLedger::new(&ring_network(6, 2.0));
        let snap = ledger.snapshot();
        let a = CommitDelta::new(vec![(VnfId(0), NodeId(1))]);
        let b = CommitDelta::new(vec![(VnfId(1), NodeId(4))]);
        ledger.validate(&snap, &a, false).unwrap();
        ledger.confirm(Some(1), &a);
        // b touches a different node: the stale snapshot is still valid.
        ledger.validate(&snap, &b, false).unwrap();
        ledger.confirm(Some(2), &b);
        assert_eq!(ledger.commit_count(), 2);
    }

    #[test]
    fn touched_node_conflicts_are_detected() {
        let ledger = CapacityLedger::new(&ring_network(6, 2.0));
        let snap = ledger.snapshot();
        let winner = CommitDelta::new(vec![(VnfId(0), NodeId(1))]);
        ledger.confirm(Some(1), &winner);
        // Same node, even a different VNF type: the quoted setup cost may
        // be stale, so the loser must re-solve.
        let loser = CommitDelta::new(vec![(VnfId(1), NodeId(1))]);
        assert_eq!(
            ledger.validate(&snap, &loser, false),
            Err(CommitRejection::Conflict { node: NodeId(1) })
        );
        // A fresh snapshot sees the winner's transaction and validates.
        ledger.validate(&ledger.snapshot(), &loser, false).unwrap();
    }

    #[test]
    fn expired_deadlines_reject_before_anything_else() {
        let ledger = CapacityLedger::new(&ring_network(6, 2.0));
        let snap = ledger.snapshot();
        let delta = CommitDelta::new(vec![(VnfId(0), NodeId(1))]);
        assert_eq!(
            ledger.validate(&snap, &delta, true),
            Err(CommitRejection::Expired)
        );
        assert_eq!(ledger.commit_count(), 0);
        assert!(ledger.commit_log().is_empty());
    }

    #[test]
    fn confirm_tracks_residuals_and_logs_effective_deltas() {
        let network = ring_network(6, 2.0);
        let ledger = CapacityLedger::new(&network);
        let before = ledger.total_residual_capacity();
        assert_eq!(before, network.total_residual_capacity());

        let delta = CommitDelta::new(vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(2))]);
        ledger.confirm(Some(7), &delta);
        assert_eq!(ledger.total_residual_capacity(), before - 2.0);

        // Re-confirming the same pairs is pure reuse: no residual change,
        // and the logged delta is empty.
        ledger.confirm(Some(8), &delta);
        assert_eq!(ledger.total_residual_capacity(), before - 2.0);
        let log = ledger.commit_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].seq, 1);
        assert_eq!(log[0].id, Some(7));
        assert_eq!(log[0].deploys, delta.deploys().to_vec());
        assert!(log[1].deploys.is_empty());
    }

    #[test]
    fn ledger_admission_matches_the_network_bounds() {
        for capacity in [0.0, 0.5, 3.0] {
            let network = ring_network(6, capacity);
            let ledger = CapacityLedger::new(&network);
            let t = task(0, &[2, 4], &[0, 1]);
            let from_network = crate::admission::check_capacity(&network, &t);
            let from_ledger = ledger.check_capacity(&t);
            assert_eq!(
                from_network.is_ok(),
                from_ledger.is_ok(),
                "capacity={capacity}"
            );
        }
    }

    /// The headline refcount scenario at the mirror level: an instance
    /// two sessions share survives the first release and frees (capacity
    /// and version bump) only with the last.
    #[test]
    fn shared_instances_free_only_on_the_last_release() {
        let ledger = CapacityLedger::new(&ring_network(6, 2.0));
        let seed = ledger.total_residual_capacity();
        ledger.confirm(Some(1), &CommitDelta::new(vec![(VnfId(0), NodeId(1))]));
        // Session 2 reuses (0,1) and adds its own instance.
        ledger.confirm(
            Some(2),
            &CommitDelta::new(vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(2))]),
        );
        assert_eq!(ledger.total_residual_capacity(), seed - 2.0);

        // Session 1's release drops a shared reference: nothing frees.
        let usage = ledger.release_usage(1).unwrap();
        assert_eq!(usage.deploys(), &[(VnfId(0), NodeId(1))]);
        let (seq, freed, _) = ledger.confirm_release(1).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(freed, 0.0, "session 2 still holds the instance");
        assert_eq!(ledger.total_residual_capacity(), seed - 2.0);
        let log = ledger.commit_log();
        assert_eq!(log[2].op, LedgerOp::Release);
        assert!(log[2].deploys.is_empty(), "no capacity moved");
        assert_eq!(log[2].refs, vec![(VnfId(0), NodeId(1))]);

        // Session 2's release is the last reference everywhere: all frees.
        let (_, freed, _) = ledger.confirm_release(2).unwrap();
        assert_eq!(freed, 2.0);
        assert_eq!(ledger.total_residual_capacity(), seed);
        assert_eq!(ledger.live_sessions(), Vec::<u64>::new());

        // The session taxonomy: releasing again or an unknown id errors
        // without mutating anything.
        assert!(matches!(
            ledger.confirm_release(1),
            Err(ServiceError::AlreadyReleased { session: 1 })
        ));
        assert!(matches!(
            ledger.release_usage(999),
            Err(ServiceError::UnknownSession { session: 999 })
        ));
        assert_eq!(ledger.commit_log().len(), 4);
    }

    /// Wire ids may repeat; each id keys a stack of sessions and releases
    /// retire the most recent live one first.
    #[test]
    fn repeated_session_ids_release_most_recent_first() {
        let ledger = CapacityLedger::new(&ring_network(6, 2.0));
        ledger.confirm(Some(5), &CommitDelta::new(vec![(VnfId(0), NodeId(1))]));
        ledger.confirm(Some(5), &CommitDelta::new(vec![(VnfId(1), NodeId(2))]));
        let usage = ledger.release_usage(5).unwrap();
        assert_eq!(usage.deploys(), &[(VnfId(1), NodeId(2))]);
        ledger.confirm_release(5).unwrap();
        let usage = ledger.release_usage(5).unwrap();
        assert_eq!(usage.deploys(), &[(VnfId(0), NodeId(1))]);
        ledger.confirm_release(5).unwrap();
        assert!(matches!(
            ledger.release_usage(5),
            Err(ServiceError::AlreadyReleased { session: 5 })
        ));
    }

    /// Satellite regression: a full network with a queued-but-unconfirmed
    /// release must admit the task that release makes room for — the old
    /// monotone admission bound drained such workloads to
    /// `insufficient_capacity`.
    #[test]
    fn queued_releases_credit_the_admission_bound() {
        let ledger = CapacityLedger::new(&ring_network(6, 1.0));
        // One session fills every node with the type the task does not use.
        let fill = CommitDelta::new((0..6).map(|v| (VnfId(2), NodeId(v))).collect());
        ledger.confirm(Some(42), &fill);
        let t = task(0, &[3], &[0, 1]);
        assert!(matches!(
            ledger.check_capacity(&t),
            Err(ServiceError::InsufficientCapacity { .. })
        ));

        // A queued release of the filling session credits its capacity.
        assert!(ledger.note_queued_release(42));
        ledger.check_capacity(&t).unwrap();
        // Idempotent: noting it again must not double-credit.
        assert!(ledger.note_queued_release(42));
        // A shed release job withdraws the credit...
        ledger.clear_queued_release(42);
        assert!(matches!(
            ledger.check_capacity(&t),
            Err(ServiceError::InsufficientCapacity { .. })
        ));
        // ...and the confirmed release makes the capacity real.
        assert!(ledger.note_queued_release(42));
        ledger.confirm_release(42).unwrap();
        ledger.check_capacity(&t).unwrap();
        // No session, no credit.
        assert!(!ledger.note_queued_release(7));
        assert!(!ledger.note_queued_release(42), "already released");
    }

    /// Edge bandwidth rides the same MVCC cycle as node capacity: charges
    /// version-bump their edge (staling snapshots that routed over it),
    /// sessions remember their charges, and the last release on an edge
    /// snaps its mirrored usage to exactly zero.
    #[test]
    fn edge_charges_version_bump_and_release_refcount_style() {
        let ledger = CapacityLedger::new(&capacitated_ring(4, 2.0, 1.0));
        let snap = ledger.snapshot();
        let d1 =
            CommitDelta::with_usage(vec![(VnfId(0), NodeId(1))], vec![], vec![(EdgeId(0), 0.1)]);
        ledger.validate(&snap, &d1, false).unwrap();
        ledger.confirm(Some(1), &d1);
        // A later delta over the same edge conflicts against the stale
        // snapshot; a disjoint edge validates fine.
        let d2 = CommitDelta::with_usage(vec![], vec![], vec![(EdgeId(0), 0.2)]);
        assert_eq!(
            ledger.validate(&snap, &d2, false),
            Err(CommitRejection::ConflictEdge { edge: EdgeId(0) })
        );
        let disjoint = CommitDelta::with_usage(vec![], vec![], vec![(EdgeId(2), 0.2)]);
        ledger.validate(&snap, &disjoint, false).unwrap();
        ledger.validate(&ledger.snapshot(), &d2, false).unwrap();
        ledger.confirm(Some(2), &d2);
        assert_eq!(ledger.edge_loads()[0], (1.0, 0.1 + 0.2));

        // Releases give bandwidth back refcount-style.
        let (_, _, bw) = ledger.confirm_release(1).unwrap();
        assert_eq!(bw, 0.1);
        assert_eq!(ledger.edge_loads()[0], (1.0, 0.1 + 0.2 - 0.1));
        let (_, _, bw) = ledger.confirm_release(2).unwrap();
        assert_eq!(bw, 0.2);
        assert_eq!(
            ledger.edge_loads()[0],
            (1.0, 0.0),
            "last release snaps to zero"
        );

        // The log carries the edge charges on both commit and release
        // records, so serial replay reproduces edge state too.
        let log = ledger.commit_log();
        assert_eq!(log[0].edges, vec![(EdgeId(0), 0.1)]);
        assert_eq!(log[2].op, LedgerOp::Release);
        assert_eq!(log[2].edges, vec![(EdgeId(0), 0.1)]);
    }

    /// The admission bandwidth bound: a demand wider than the widest
    /// residual edge rejects, queued-release credit widens the bound, and
    /// zero-bandwidth tasks never consult it.
    #[test]
    fn bandwidth_admission_bound_counts_queued_release_credit() {
        let ledger = CapacityLedger::new(&capacitated_ring(4, 4.0, 1.0));
        // One session saturates every edge.
        let fill =
            CommitDelta::with_usage(vec![], vec![], (0..4).map(|e| (EdgeId(e), 1.0)).collect());
        ledger.confirm(Some(9), &fill);
        let t = task(0, &[2], &[0, 1]);
        ledger.check_capacity(&t).unwrap();
        let tb = t.clone().with_bandwidth(0.5).unwrap();
        assert!(matches!(
            ledger.check_capacity(&tb),
            Err(ServiceError::InsufficientBandwidth { .. })
        ));
        // A queued release of the saturating session credits its edges.
        assert!(ledger.note_queued_release(9));
        ledger.check_capacity(&tb).unwrap();
        ledger.clear_queued_release(9);
        assert!(matches!(
            ledger.check_capacity(&tb),
            Err(ServiceError::InsufficientBandwidth { .. })
        ));
        // The confirmed release makes the bandwidth real again.
        let (_, _, bw) = ledger.confirm_release(9).unwrap();
        assert_eq!(bw, 4.0);
        ledger.check_capacity(&tb).unwrap();
    }

    #[test]
    fn deployed_instances_make_their_type_reusable_for_admission() {
        let mut network = ring_network(6, 1.0);
        let t = task(0, &[3], &[0, 1]);
        // Two fresh unit demands against total residual 6.0 admits...
        CapacityLedger::new(&network).check_capacity(&t).unwrap();
        // ...and once both types are live, even a full network admits the
        // reuse-only chain — mirroring `Network::min_new_demand` = 0.
        let delta = CommitDelta::new(vec![(VnfId(0), NodeId(1)), (VnfId(1), NodeId(2))]);
        network.apply_delta(&delta).unwrap();
        let ledger = CapacityLedger::new(&network);
        ledger.check_capacity(&t).unwrap();
        assert_eq!(
            ledger.total_residual_capacity(),
            network.total_residual_capacity()
        );
    }
}
